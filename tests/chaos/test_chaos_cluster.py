"""Chaos: worker-crash storms through the ShardRouter (real processes).

SIGKILLing shard workers while clients hammer the router must only ever
produce typed outcomes — served responses, typed 503s while a shard is
down, or a transient client-side connection error — and the pool's health
loop must resurrect every shard.  The router's catch-all
(``router.server_errors``) stays silent throughout.
"""

import json
import time
import urllib.request

import pytest

from repro.service.chaos import (
    OUTCOME_CONNECTION,
    OUTCOME_OK,
    OUTCOME_UNAVAILABLE,
    ChaosLoad,
    WorkerCrashStorm,
    classify_call,
)
from repro.service.cluster import ShardRouter, WorkerPool
from repro.service.transport import METRICS_PATH, ServiceClient

pytestmark = pytest.mark.chaos


def wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def test_worker_crash_storm_stays_typed_and_heals(chaos_fleet, probes):
    registry_root = str(chaos_fleet.frontend.gateway.registry.root)
    with WorkerPool(2, registry_root=registry_root, no_queue=True) as pool:
        with ShardRouter(pool) as router:
            storm = WorkerCrashStorm(pool, seed=3)

            def make_call(index):
                client = ServiceClient(
                    port=router.port, api_key=pool.api_key, timeout_s=10.0
                )
                request = probes[index % len(probes)]
                return lambda: client.submit(request)

            load = ChaosLoad(make_call, n_threads=3, duration_s=3.0)
            outcomes = load.run(lambda: storm.storm(2, interval_s=0.8))

            # Typed outcomes only: a shard outage is a 503, never a 500.
            assert storm.kills, "the storm never found a live worker"
            assert set(outcomes) <= {
                OUTCOME_OK,
                OUTCOME_UNAVAILABLE,
                OUTCOME_CONNECTION,
            }
            assert outcomes[OUTCOME_OK] > 0

            # The health loop resurrects every murdered shard ...
            assert wait_for(
                lambda: all(
                    entry["alive"] for entry in pool.health().values()
                ),
                timeout_s=30.0,
            )
            assert any(
                entry["restarts"] >= 1 for entry in pool.health().values()
            )
            # ... after which the full fleet serves again.
            survivor = ServiceClient(port=router.port, api_key=pool.api_key)
            assert wait_for(
                lambda: classify_call(lambda: survivor.submit(probes[0]))
                == OUTCOME_OK
            )

            # The chaos invariant, fleet-wide: the router's own catch-all
            # never fired, and the merged worker view reports none either.
            assert router.telemetry.counter_value("router.server_errors") == 0
            with urllib.request.urlopen(
                f"http://127.0.0.1:{router.port}{METRICS_PATH}"
            ) as response:
                merged = json.loads(response.read())
            assert merged["counters"].get("transport.server_errors", 0) == 0
