"""Chaos: the self-healing layer — retries, drain/reshard, exactly-once quota.

The resilience contract pinned here:

* a worker SIGKILLed mid-dispatch heals **invisibly** when the restart
  lands inside the router's retry deadline — the client sees a normal
  200, never a 503 (``router.server_errors`` stays 0 and the retry
  counters prove the path was exercised);
* draining a shard under load drops nothing: in-flight requests
  complete, rerouted users land on the remaining shards, and undraining
  restores the original mapping bit-for-bit;
* a frame split across K shards charges the fleet quota exactly its
  request count — once, at the router — refunds it on total failure, and
  hedged duplicates never charge twice.
"""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.service.chaos import (
    OUTCOME_OK,
    OUTCOME_THROTTLED,
    ChaosLoad,
    DrainCycler,
    WorkerCrashStorm,
    classify_call,
)
from repro.service.cluster import (
    HedgePolicy,
    RetryPolicy,
    ShardRouter,
    WorkerPool,
)
from repro.service.envelope import Envelope, dumps_envelope, loads_sealed
from repro.service.protocol import (
    AuthenticationResponse,
    DrainShardRequest,
    DrainShardResponse,
)
from repro.service.transport import V2_ADMIN_PATH, ServiceClient

pytestmark = pytest.mark.chaos

#: A retry budget sized to cover a worker respawn (interpreter start +
#: registry load take a second or two): frequent short backoffs under a
#: generous deadline, so a crash that heals answers 200, not 503.
HEALING_RETRIES = RetryPolicy(
    max_attempts=120,
    initial_backoff_s=0.05,
    max_backoff_s=0.25,
    deadline_s=60.0,
)


def _registry_root(fleet):
    return str(fleet.frontend.gateway.registry.root)


def _quota_tokens(path):
    with open(path, encoding="utf-8") as handle:
        return json.loads(handle.read())["tokens"]


def _split_across_shards(ring, probes):
    """Two probes per shard of a 2-shard ring, in submit order."""
    by_shard = {0: [], 1: []}
    for probe in probes:
        by_shard[ring.shard_for(probe.user_id)].append(probe)
    batch = by_shard[0][:2] + by_shard[1][:2]
    assert len(batch) == 4, "need two users per shard"
    return batch


def _post_admin(port, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{V2_ADMIN_PATH}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _drain(router, api_key, shard, undrain=False):
    envelope = Envelope(
        request=DrainShardRequest(shard=shard, undrain=undrain), api_key=api_key
    )
    status, body = _post_admin(router.port, dumps_envelope(envelope).encode())
    return status, loads_sealed(body.decode("utf-8"))


def test_crash_storm_heals_invisibly_inside_the_retry_deadline(
    chaos_fleet, probes
):
    """SIGKILL mid-load + restart within budget ⇒ zero client-visible 503s."""
    registry_root = _registry_root(chaos_fleet)
    with WorkerPool(2, registry_root=registry_root, no_queue=True) as pool:
        with ShardRouter(pool, retry_policy=HEALING_RETRIES) as router:
            storm = WorkerCrashStorm(pool, seed=11)

            def make_call(index):
                # Each thread cycles through EVERY probe so both shards
                # see continuous traffic — whichever worker the storm
                # kills, requests meet the dead window and must retry.
                client = ServiceClient(
                    port=router.port, api_key=pool.api_key, timeout_s=90.0
                )
                position = [index]

                def call():
                    position[0] += 1
                    return client.submit(probes[position[0] % len(probes)])

                return call

            load = ChaosLoad(make_call, n_threads=3, duration_s=3.0)
            outcomes = load.run(lambda: storm.storm(2, interval_s=0.8))

            assert storm.kills, "the storm never found a live worker"
            # The point of the retry layer: every outcome is a served
            # 200 — the 503s the pre-retry chaos test tolerated are gone.
            assert set(outcomes) == {OUTCOME_OK}, dict(outcomes)
            assert router.telemetry.counter_value("router.retries") > 0
            assert router.telemetry.counter_value("router.retry_successes") > 0
            assert router.telemetry.counter_value("router.server_errors") == 0


def test_sigkill_mid_dispatch_retries_to_the_respawned_worker(
    chaos_fleet, probes
):
    """Deterministic single-shard kill: the next request rides the backoff
    loop, meets the respawned worker, and answers 200."""
    registry_root = _registry_root(chaos_fleet)
    with WorkerPool(1, registry_root=registry_root, no_queue=True) as pool:
        with ShardRouter(pool, retry_policy=HEALING_RETRIES) as router:
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, timeout_s=90.0
            )
            assert isinstance(client.submit(probes[0]), AuthenticationResponse)

            os.kill(pool.pids()[0], signal.SIGKILL)
            # No waiting for health here: the router discovers the death
            # mid-exchange and retries against the respawn on its own.
            assert classify_call(lambda: client.submit(probes[1])) == OUTCOME_OK
            assert router.telemetry.counter_value("router.retries") > 0
            assert router.telemetry.counter_value("router.retry_successes") > 0
            assert router.telemetry.counter_value("router.server_errors") == 0
            health = pool.health()["0"]
            assert health["restarts"] >= 1
            assert health["last_crash_ts"] is not None


def test_drain_under_load_drops_nothing_and_restores_bit_for_bit(
    chaos_fleet, probes
):
    registry_root = _registry_root(chaos_fleet)
    user_ids = [probe.user_id for probe in probes]
    with WorkerPool(2, registry_root=registry_root, no_queue=True) as pool:
        with ShardRouter(pool, retry_policy=HEALING_RETRIES) as router:
            before = [router.ring.shard_for(user) for user in user_ids]
            cycler = DrainCycler(router, seed=7)

            def make_call(index):
                client = ServiceClient(
                    port=router.port, api_key=pool.api_key, timeout_s=90.0
                )
                position = [index]

                def call():
                    position[0] += 1
                    return client.submit(probes[position[0] % len(probes)])

                return call

            load = ChaosLoad(make_call, n_threads=3, duration_s=2.0)
            outcomes = load.run(lambda: cycler.storm(3, dwell_s=0.3))

            # A drain is a routing decision, not a fault: nothing drops.
            assert cycler.cycles, "the cycler never drained a shard"
            assert set(outcomes) == {OUTCOME_OK}, dict(outcomes)
            assert router.telemetry.counter_value("router.server_errors") == 0
            assert router.telemetry.counter_value("router.drains") >= 1
            assert router.telemetry.counter_value("router.undrains") >= 1

            # The storm ended with every shard active: the mapping is
            # bit-for-bit the pre-storm one.
            assert router.draining() == frozenset()
            after = [router.ring.shard_for(user) for user in user_ids]
            assert after == before


def test_drain_admin_op_reroutes_users_and_denies_bad_credentials(
    chaos_fleet, probes
):
    registry_root = _registry_root(chaos_fleet)
    with WorkerPool(2, registry_root=registry_root, no_queue=True) as pool:
        with ShardRouter(pool, retry_policy=HEALING_RETRIES) as router:
            client = ServiceClient(port=router.port, api_key=pool.api_key)

            # Drain shard 1 over the wire with the operator credential.
            status, sealed = _drain(router, pool.api_key, 1)
            assert status == 200
            assert isinstance(sealed.response, DrainShardResponse)
            assert sealed.response.draining is True
            assert sealed.response.active_shards == (0,)

            # Every user — including shard 1's — now serves from shard 0,
            # and the drained worker receives no new sub-frames.
            exclude = router.draining()
            assert exclude == frozenset({1})
            for probe in probes:
                assert router.ring.shard_for(probe.user_id, exclude) == 0
                assert isinstance(client.submit(probe), AuthenticationResponse)

            # Draining the last active shard is refused, typed.
            status, sealed = _drain(router, pool.api_key, 0)
            assert status == 400
            assert "last active shard" in sealed.response.message

            # A non-operator credential is denied, typed.
            status, sealed = _drain(router, "not-the-operator-key", 0)
            assert status == 401
            assert sealed.denied
            assert router.telemetry.counter_value("router.drain_denied") == 1

            # Undrain restores the original mapping bit-for-bit.
            status, sealed = _drain(router, pool.api_key, 1, undrain=True)
            assert status == 200
            assert sealed.response.draining is False
            assert sealed.response.active_shards == (0, 1)
            assert router.draining() == frozenset()


def test_split_frame_charges_fleet_quota_exactly_once(
    chaos_fleet, probes, tmp_path
):
    """A frame split across both shards costs n_requests — not per-shard."""
    registry_root = _registry_root(chaos_fleet)
    quota_path = tmp_path / "resilience-quota.json"
    with WorkerPool(
        2,
        registry_root=registry_root,
        caller_rate=0.0001,  # negligible refill within the test
        caller_burst=8.0,
        quota_path=quota_path,
        no_queue=True,
    ) as pool:
        with ShardRouter(pool, retry_policy=HEALING_RETRIES) as router:
            batch = _split_across_shards(router.ring, probes)
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="binary"
            )
            responses = client.submit_many(batch)
            assert all(
                isinstance(r, AuthenticationResponse) for r in responses
            )
            # The split frame hit both shards but charged once, pre-split:
            # 8-token burst minus one 4-request frame, not minus 2 x 4.
            assert _quota_tokens(quota_path) == pytest.approx(4.0, abs=0.01)
            assert router.telemetry.counter_value("router.quota_charges") == 1

            responses = client.submit_many(batch)
            assert all(
                isinstance(r, AuthenticationResponse) for r in responses
            )
            assert _quota_tokens(quota_path) == pytest.approx(0.0, abs=0.01)

            # The drained budget now throttles the next frame at the
            # router — typed, with the charge never taken.
            assert (
                classify_call(lambda: client.submit_many(batch))
                == OUTCOME_THROTTLED
            )
            assert router.telemetry.counter_value("router.quota_throttled") >= 1
            assert router.telemetry.counter_value("router.server_errors") == 0


def test_total_frame_failure_refunds_the_prepaid_charge(
    chaos_fleet, probes, tmp_path
):
    registry_root = _registry_root(chaos_fleet)
    quota_path = tmp_path / "refund-quota.json"
    with WorkerPool(
        2,
        registry_root=registry_root,
        caller_rate=0.0001,
        caller_burst=8.0,
        quota_path=quota_path,
        no_queue=True,
        restart=False,  # the shard stays dead: the frame must fail
    ) as pool:
        with ShardRouter(pool, retry_policy=None) as router:
            batch = _split_across_shards(router.ring, probes)

            os.kill(pool.pids()[1], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while pool.endpoint(1) is not None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.endpoint(1) is None

            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="binary"
            )
            with pytest.raises(ValueError, match="shard-unavailable"):
                client.submit_many(batch)
            # The 4-token charge came back: a retry of the whole frame
            # will not pay twice for work that never ran.
            assert _quota_tokens(quota_path) == pytest.approx(8.0, abs=0.01)
            assert router.telemetry.counter_value("router.quota_refunds") == 1


def test_hedged_dispatch_wins_races_without_double_charging(
    chaos_fleet, probes, tmp_path
):
    """Aggressive hedging (duplicate past the p1 latency) duplicates nearly
    every exchange — and the quota ledger still moves by exactly one charge
    per request."""
    registry_root = _registry_root(chaos_fleet)
    quota_path = tmp_path / "hedge-quota.json"
    with WorkerPool(
        2,
        registry_root=registry_root,
        caller_rate=0.0001,
        caller_burst=100.0,
        quota_path=quota_path,
        no_queue=True,
    ) as pool:
        # Microsecond delay bounds: once armed, the hedge timer always
        # expires before a real localhost exchange, so every armed
        # sub-frame dispatches a duplicate.
        hedge = HedgePolicy(
            quantile=1.0, min_samples=2, min_delay_s=1e-6, max_delay_s=1e-5
        )
        with ShardRouter(
            pool, retry_policy=HEALING_RETRIES, hedge_policy=hedge
        ) as router:
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="binary"
            )
            submitted = 0
            for _ in range(8):
                batch = probes[:2]
                responses = client.submit_many(batch)
                assert all(
                    isinstance(r, AuthenticationResponse) for r in responses
                )
                submitted += len(batch)
            assert router.telemetry.counter_value("router.hedges") > 0
            # Exactly-once, hedges included: the ledger moved by the
            # request count, regardless of how many duplicates raced.
            assert _quota_tokens(quota_path) == pytest.approx(
                100.0 - submitted, abs=0.01
            )
            assert router.telemetry.counter_value("router.server_errors") == 0
