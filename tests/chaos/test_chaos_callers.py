"""Chaos: caller key rotation and revocation under concurrent load.

The contract under credential churn: an in-flight request holding a stale
or revoked key degrades to a *typed* 401 (and a scope violation to a typed
403) — the server's catch-all (``transport.server_errors``) never fires.
"""

import pytest

from repro.service.chaos import (
    OUTCOME_OK,
    OUTCOME_UNAUTHORIZED,
    CallerKeyChaos,
    ChaosLoad,
    classify_call,
)
from repro.service.envelope import SCOPE_DATA_WRITE
from repro.service.protocol import SnapshotRequest
from repro.service.transport import ServiceClient

pytestmark = pytest.mark.chaos


def _server_errors(server):
    return server.telemetry.counter_value("transport.server_errors")


class TestKeyChurnTyped:
    def test_stale_key_after_rotation_answers_typed_401(
        self, chaos_fleet, http_server, probes
    ):
        old_key = chaos_fleet.callers.register("rotate-me", (SCOPE_DATA_WRITE,))
        stale = ServiceClient(port=http_server.port, api_key=old_key)
        assert classify_call(lambda: stale.submit(probes[0])) == OUTCOME_OK
        new_key = chaos_fleet.callers.rotate_key("rotate-me")
        before = _server_errors(http_server)
        with pytest.raises(PermissionError, match="unknown-api-key"):
            stale.submit(probes[0])
        fresh = ServiceClient(port=http_server.port, api_key=new_key)
        assert classify_call(lambda: fresh.submit(probes[0])) == OUTCOME_OK
        assert _server_errors(http_server) == before

    def test_revoked_caller_answers_typed_401(
        self, chaos_fleet, http_server, probes
    ):
        key = chaos_fleet.callers.register("revoke-me", (SCOPE_DATA_WRITE,))
        client = ServiceClient(port=http_server.port, api_key=key)
        assert classify_call(lambda: client.submit(probes[0])) == OUTCOME_OK
        assert chaos_fleet.callers.revoke("revoke-me")
        before = _server_errors(http_server)
        assert (
            classify_call(lambda: client.submit(probes[0]))
            == OUTCOME_UNAUTHORIZED
        )
        assert _server_errors(http_server) == before

    def test_wrong_scope_answers_typed_403(self, chaos_fleet, http_server):
        key = chaos_fleet.callers.register("data-only", (SCOPE_DATA_WRITE,))
        client = ServiceClient(port=http_server.port, api_key=key)
        before = _server_errors(http_server)
        # The sealed view keeps the typed denial inspectable.
        sealed = client.submit_sealed(SnapshotRequest())
        assert sealed.denied
        assert sealed.response.code == "insufficient-scope"
        assert sealed.response.http_status == 403
        assert _server_errors(http_server) == before


class TestKeyChurnStorm:
    def test_rotation_revocation_storm_under_concurrent_load(
        self, chaos_fleet, http_server, probes
    ):
        chaos = CallerKeyChaos(
            chaos_fleet.callers, "storm-caller", (SCOPE_DATA_WRITE,), seed=17
        )
        chaos.disrupt_once()  # initial registration

        def make_call(index):
            client = ServiceClient(
                port=http_server.port, api_key=chaos.current_key, timeout_s=5.0
            )
            request = probes[index % len(probes)]
            state = {"key": chaos.current_key}

            def call():
                # Refresh opportunistically; a revocation window leaves the
                # worker holding the last (now dead) credential.
                current = chaos.current_key
                if current is not None:
                    state["key"] = current
                client.api_key = state["key"]
                return client.submit(request)

            return call

        before = _server_errors(http_server)
        load = ChaosLoad(make_call, n_threads=4, duration_s=1.5)
        outcomes = load.run(lambda: chaos.storm(steps=10, interval_s=0.05))
        # Every outcome under churn is typed: served, or a typed 401.
        assert set(outcomes) <= {OUTCOME_OK, OUTCOME_UNAUTHORIZED}
        assert outcomes[OUTCOME_OK] > 0
        assert len(chaos.log) >= 10
        assert {action for action, _ in chaos.log} >= {"rotate"}
        # The storm always ends with a servable credential.
        final = ServiceClient(port=http_server.port, api_key=chaos.current_key)
        assert classify_call(lambda: final.submit(probes[0])) == OUTCOME_OK
        assert _server_errors(http_server) == before
