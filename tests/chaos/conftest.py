"""Shared fixtures for the chaos suite (fault injection on the serving path).

One small enrolled fleet — persisting its models to a registry root so the
cluster scenarios can spawn workers over it — plus an HTTP server over the
fleet's frontend and caller registry, shared across the suite.  Select the
suite alone with ``-m chaos``.
"""

import time

import numpy as np
import pytest

from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest
from repro.service.transport import ServiceHTTPServer

N_USERS = 12


@pytest.fixture(scope="session")
def chaos_fleet(tmp_path_factory):
    """A small enrolled fleet persisting its models to a registry root."""
    root = tmp_path_factory.mktemp("chaos-registry")
    simulator = FleetSimulator(
        FleetConfig(n_users=N_USERS, seed=9, server_side_contexts=False),
        registry_root=root,
    )
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator


@pytest.fixture(scope="session")
def probes(chaos_fleet):
    """One genuine two-window probe per fleet user."""
    rng = np.random.default_rng(31)
    requests = []
    for user in chaos_fleet.users:
        probe = user.sample_windows(
            2, chaos_fleet.config.window_noise, rng, chaos_fleet.feature_names
        )
        requests.append(
            AuthenticateRequest(
                user_id=user.user_id,
                features=probe.values,
                contexts=tuple(CoarseContext(label) for label in probe.contexts),
            )
        )
    return requests


@pytest.fixture(scope="session")
def http_server(chaos_fleet):
    """The fleet's frontend behind HTTP, sharing the fleet's callers."""
    server = ServiceHTTPServer(
        chaos_fleet.frontend, port=0, callers=chaos_fleet.callers
    )
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()


def wait_for(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()
