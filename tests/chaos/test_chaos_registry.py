"""Chaos: registry rollback racing eviction, and typed rollback failures.

The contract: however rollback and eviction interleave, the registry keeps
a servable bundle for every user, its ``state.json`` stays parseable and a
fresh registry rehydrated from the same root agrees on what is served —
and a rollback that cannot proceed surfaces through the transport as a
typed error, never a 500.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.service.protocol import ErrorResponse, RollbackRequest
from repro.service.registry import ModelRegistry
from repro.service.transport import ServiceClient

pytestmark = pytest.mark.chaos

N_VERSIONS = 8


@pytest.fixture()
def versioned_registry(chaos_fleet, tmp_path):
    """A persisted registry with one user at N_VERSIONS active versions."""
    user_id = chaos_fleet.users[0].user_id
    bundle = chaos_fleet.frontend.gateway.registry.bundle_for(user_id)
    registry = ModelRegistry(root=tmp_path / "registry")
    for version in range(1, N_VERSIONS + 1):
        registry.publish(dataclasses.replace(bundle, version=version))
    return registry, user_id


class TestRollbackRacingEviction:
    def test_race_leaves_servable_bundle_and_consistent_state(
        self, versioned_registry
    ):
        registry, user_id = versioned_registry
        errors = []

        def rollback_loop():
            for _ in range(5):
                try:
                    registry.rollback(user_id)
                except ValueError:
                    # Typed refusal: fewer than two active versions remain.
                    pass
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                time.sleep(0.002)

        def evict_loop():
            for _ in range(5):
                try:
                    registry.evict(
                        policy="max_versions", max_versions=2, user_id=user_id
                    )
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                time.sleep(0.003)

        def reader_loop():
            for _ in range(40):
                try:
                    served = registry.bundle_for(user_id)
                    assert served.user_id == user_id
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)

        threads = [
            threading.Thread(target=target)
            for target in (rollback_loop, evict_loop, reader_loop)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        # A servable bundle survived the race ...
        latest = registry.latest_version(user_id)
        assert registry.bundle_for(user_id).version == latest
        # ... state.json stayed parseable ...
        state_path = registry._user_dir(user_id) / "state.json"
        state = json.loads(state_path.read_text())
        assert isinstance(state, dict)
        assert all(int(v) != latest for v in state.get("retired_versions", []))
        # ... and a cold rehydration agrees with the live registry.
        rehydrated = ModelRegistry(root=registry.root)
        rehydrated.load()
        assert rehydrated.latest_version(user_id) == latest
        assert rehydrated.bundle_for(user_id).version == latest

    def test_eviction_during_race_never_removes_serving_file(
        self, versioned_registry
    ):
        registry, user_id = versioned_registry
        registry.evict(policy="max_versions", max_versions=1, user_id=user_id)
        served = registry.record_for(user_id)
        assert served.path is not None and served.path.exists()


class TestTypedRollbackFailure:
    def test_rollback_without_history_is_typed_through_transport(
        self, chaos_fleet, http_server
    ):
        # Every fleet user has exactly one enrolled version: rollback has
        # nothing to fall back to and must refuse, typed, end to end.
        before = http_server.telemetry.counter_value("transport.server_errors")
        client = ServiceClient(port=http_server.port, api_key=chaos_fleet.api_key)
        response = client.submit(
            RollbackRequest(user_id=chaos_fleet.users[0].user_id)
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "ValueError"
        assert (
            http_server.telemetry.counter_value("transport.server_errors")
            == before
        )
