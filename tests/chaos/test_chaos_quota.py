"""Chaos: SharedTokenBucket quota-file corruption under concurrent writers.

The bucket's contract is *fail open*: a truncated, zeroed, garbage, or
deleted state file refills the budget instead of crashing a writer, and
the file self-heals on the next grant.  Sustained corruption under
concurrent writers must therefore only ever produce grants and typed
429s — pinned here both on the bucket directly and end to end through a
shard router.
"""

import json
import threading

import pytest

from repro.service.chaos import (
    OUTCOME_OK,
    OUTCOME_THROTTLED,
    QuotaFileCorruptor,
    classify_call,
)
from repro.service.cluster import ShardRouter, StaticEndpoints
from repro.service.envelope import (
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    SharedTokenBucket,
)
from repro.service.frontend import ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import ThrottledResponse
from repro.service.registry import ModelRegistry
from repro.service.transport import ServiceClient, ServiceHTTPServer

pytestmark = pytest.mark.chaos

QUOTA_KEY = "quota-chaos-key"


class TestBucketCorruptionUnderWriters:
    def test_concurrent_writers_survive_every_corruption_mode(self, tmp_path):
        path = tmp_path / "quota.json"
        buckets = [
            SharedTokenBucket(path, rate_per_s=200.0, burst=50.0)
            for _ in range(2)
        ]
        corruptor = QuotaFileCorruptor(path)
        errors = []
        grants = []

        def writer(bucket):
            for _ in range(150):
                try:
                    grants.append(bucket.acquire(1))
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(bucket,))
            for bucket in buckets
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        corruptor.storm(cycles=3, interval_s=0.005)
        for thread in threads:
            thread.join()

        # Every corruption mode ran, no writer ever raised, and grants
        # kept flowing (fail-open refills on unreadable state).
        assert corruptor.corruptions >= 3 * len(QuotaFileCorruptor.MODES)
        assert errors == []
        assert any(wait == 0.0 for wait in grants)

    def test_bucket_self_heals_after_each_corruption(self, tmp_path):
        path = tmp_path / "quota.json"
        bucket = SharedTokenBucket(path, rate_per_s=1.0, burst=2.0)
        corruptor = QuotaFileCorruptor(path)
        for _ in QuotaFileCorruptor.MODES:
            mode = corruptor.corrupt_once()
            # Unreadable state resets to a full bucket — typed, no raise.
            assert bucket.acquire(1) == 0.0, mode
            state = json.loads(path.read_text())
            assert "tokens" in state and "stamp" in state


@pytest.fixture()
def quota_cluster(chaos_fleet, tmp_path):
    """Two in-process shard workers sharing one quota file, behind a router."""
    quota_path = tmp_path / "fleet-quota.json"
    servers = []
    for _ in range(2):
        registry = ModelRegistry(root=chaos_fleet.frontend.gateway.registry.root)
        registry.load()
        server = ServiceHTTPServer(
            ServiceFrontend(AuthenticationGateway(registry=registry)), port=0
        )
        server.callers.register(
            "quota-caller", (SCOPE_DATA_WRITE, SCOPE_ADMIN), api_key=QUOTA_KEY
        )
        # Both workers attach the *same* state file: one fleet-wide budget.
        server.callers.attach_rate_limit(
            "quota-caller",
            SharedTokenBucket(quota_path, rate_per_s=0.001, burst=4.0),
        )
        server.serve_background()
        servers.append(server)
    pool = StaticEndpoints([("127.0.0.1", server.port) for server in servers])
    router = ShardRouter(pool).serve_background()
    yield router, servers, quota_path
    router.shutdown()
    router.server_close()
    for server in servers:
        server.shutdown()
        server.server_close()


class TestPinned429ThroughRouter:
    def test_exhausted_and_corrupted_quota_stays_typed_429(
        self, quota_cluster, probes
    ):
        router, servers, quota_path = quota_cluster
        client = ServiceClient(port=router.port, api_key=QUOTA_KEY)

        # Drain the shared budget through the router: 4 grants, then 429.
        outcomes = [
            classify_call(lambda probe=probe: client.submit(probe))
            for probe in probes[:6]
        ]
        assert outcomes[:4] == [OUTCOME_OK] * 4
        assert outcomes[4:] == [OUTCOME_THROTTLED] * 2
        throttled = client.submit(probes[5])
        assert isinstance(throttled, ThrottledResponse)
        assert throttled.reason == "rate-limited"
        assert throttled.retry_after_s > 0.0

        # Corrupt the quota file mid-flight: fail-open refills the budget,
        # and every outcome stays in the typed vocabulary.
        corruptor = QuotaFileCorruptor(quota_path)
        for _ in QuotaFileCorruptor.MODES:
            corruptor.corrupt_once()
            outcome = classify_call(lambda: client.submit(probes[0]))
            assert outcome in {OUTCOME_OK, OUTCOME_THROTTLED}

        # The chaos invariant: no catch-all fired anywhere on the path.
        assert router.telemetry.counter_value("router.server_errors") == 0
        for server in servers:
            assert (
                server.telemetry.counter_value("transport.server_errors") == 0
            )
