"""Unit tests for the baseline classifiers (SVM, linear, NB, trees, k-NN)."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel, resolve_kernel
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearRegressionClassifier, LogisticRegressionClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.svm import LinearSVMClassifier
from repro.ml.tree import DecisionTreeClassifier


def binary_problem(n=150, separation=2.5, n_features=5, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(0, 1, (n // 2, n_features)), rng.normal(separation, 1, (n // 2, n_features))]
    )
    y = np.array(["neg"] * (n // 2) + ["pos"] * (n // 2))
    return X, y


ALL_BINARY_CLASSIFIERS = [
    LinearSVMClassifier(n_iterations=300),
    LinearRegressionClassifier(),
    LogisticRegressionClassifier(n_iterations=300),
    GaussianNaiveBayes(),
    DecisionTreeClassifier(max_depth=6),
    RandomForestClassifier(n_estimators=15, random_state=0),
    KNeighborsClassifier(n_neighbors=3),
]


class TestAllClassifiers:
    @pytest.mark.parametrize("estimator", ALL_BINARY_CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_learns_separable_problem(self, estimator):
        X, y = binary_problem()
        model = clone(estimator).fit(X, y)
        assert model.score(X, y) > 0.9

    @pytest.mark.parametrize("estimator", ALL_BINARY_CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_predict_before_fit_raises(self, estimator):
        with pytest.raises(NotFittedError):
            clone(estimator).predict(np.ones((2, 5)))

    @pytest.mark.parametrize("estimator", ALL_BINARY_CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_predictions_use_training_labels(self, estimator):
        X, y = binary_problem()
        predictions = clone(estimator).fit(X, y).predict(X)
        assert set(predictions) <= {"neg", "pos"}


class TestSvm:
    def test_loss_decreases(self):
        X, y = binary_problem()
        model = LinearSVMClassifier(n_iterations=400).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_parameter_validation(self):
        X, y = binary_problem()
        with pytest.raises(ValueError):
            LinearSVMClassifier(C=-1.0).fit(X, y)
        with pytest.raises(ValueError):
            LinearSVMClassifier(n_iterations=0).fit(X, y)


class TestNaiveBayes:
    def test_probabilities_sum_to_one(self):
        X, y = binary_problem()
        probabilities = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_handles_three_classes(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(i * 3, 1, (30, 4)) for i in range(3)])
        y = np.array(["a"] * 30 + ["b"] * 30 + ["c"] * 30)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_priors_reflect_class_balance(self):
        X, y = binary_problem()
        model = GaussianNaiveBayes().fit(X, y)
        np.testing.assert_allclose(model.class_prior_, [0.5, 0.5])


class TestTreesAndForest:
    def test_tree_handles_single_class_bootstrap(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.array(["only"] * 20)
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) == {"only"}

    def test_max_depth_limits_node_count(self):
        X, y = binary_problem(n=200)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert shallow.n_nodes_ <= 3 < deep.n_nodes_

    def test_forest_beats_single_stump_on_noisy_data(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 8))
        y = np.where(X[:, 0] + X[:, 1] + 0.5 * rng.normal(size=300) > 0, "pos", "neg")
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y).score(X, y)
        forest = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y).score(X, y)
        assert forest > stump

    def test_forest_probabilities_valid(self):
        X, y = binary_problem()
        probabilities = RandomForestClassifier(n_estimators=10, random_state=1).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_forest_is_reproducible_with_seed(self):
        X, y = binary_problem()
        a = RandomForestClassifier(n_estimators=8, random_state=5).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=8, random_state=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_forest_parameter_validation(self):
        X, y = binary_problem()
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(X, y)


class TestKnn:
    def test_distance_weighting(self):
        X, y = binary_problem()
        model = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        assert model.score(X, y) > 0.9

    def test_neighbor_count_validated(self):
        X, y = binary_problem(n=10)
        with pytest.raises(ValueError, match="exceeds"):
            KNeighborsClassifier(n_neighbors=50).fit(X, y)
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="nope").fit(X, y)


class TestKernels:
    def test_linear_kernel_is_gram_matrix(self, rng):
        X = rng.normal(size=(5, 3))
        np.testing.assert_allclose(linear_kernel(X, X), X @ X.T)

    def test_rbf_kernel_diagonal_is_one(self, rng):
        X = rng.normal(size=(6, 3))
        np.testing.assert_allclose(np.diag(rbf_kernel(X, X, gamma=0.5)), 1.0)

    def test_polynomial_kernel_degree_one(self, rng):
        X = rng.normal(size=(4, 2))
        np.testing.assert_allclose(polynomial_kernel(X, X, degree=1, coef0=0.0), X @ X.T)

    def test_resolve_kernel_by_name_and_callable(self, rng):
        X = rng.normal(size=(4, 2))
        np.testing.assert_allclose(resolve_kernel("identity")(X, X), linear_kernel(X, X))
        np.testing.assert_allclose(
            resolve_kernel("rbf", gamma=2.0)(X, X), rbf_kernel(X, X, gamma=2.0)
        )
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("mystery")
