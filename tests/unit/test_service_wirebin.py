"""Unit tests for the binary columnar wire codec (repro.service.wirebin)."""

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service import wirebin
from repro.service.envelope import DeniedResponse
from repro.service.protocol import (
    AuthenticateRequest,
    ColumnarAuthResult,
    DriftReport,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    RollbackRequest,
    SnapshotRequest,
    ThrottledResponse,
    dumps_request,
)


def _auth(user="alice", rows=3, width=4, contexts=True, version=None, seed=0):
    rng = np.random.default_rng(seed)
    return AuthenticateRequest(
        user_id=user,
        features=rng.normal(size=(rows, width)),
        contexts=(
            tuple(
                CoarseContext.STATIONARY if i % 2 == 0 else CoarseContext.MOVING
                for i in range(rows)
            )
            if contexts
            else None
        ),
        version=version,
    )


def _matrix(user="alice", rows=4, width=3, seed=1):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(size=(rows, width)),
        feature_names=[f"f{i:02d}" for i in range(width)],
        user_ids=[user] * rows,
        contexts=["stationary", "moving"] * (rows // 2) + ["stationary"] * (rows % 2),
    )


class TestBatchOp:
    def test_homogeneous_ops_are_encodable(self):
        assert wirebin.batch_op([_auth(), _auth("bob", seed=2)]) == "authenticate"
        assert (
            wirebin.batch_op([EnrollRequest(user_id="a", matrix=_matrix("a"))])
            == "enroll"
        )
        assert (
            wirebin.batch_op([DriftReport(user_id="a", matrix=_matrix("a"))])
            == "drift-report"
        )

    def test_empty_and_control_plane_batches_are_not(self):
        assert wirebin.batch_op([]) is None
        assert wirebin.batch_op([RollbackRequest(user_id="a")]) is None
        assert wirebin.batch_op([SnapshotRequest()]) is None

    def test_mixed_ops_fall_back(self):
        assert (
            wirebin.batch_op([_auth(), EnrollRequest(user_id="a", matrix=_matrix("a"))])
            is None
        )

    def test_mixed_feature_widths_fall_back(self):
        assert wirebin.batch_op([_auth(width=4), _auth(width=5)]) is None

    def test_mixed_context_presence_falls_back(self):
        assert wirebin.batch_op([_auth(contexts=True), _auth(contexts=False)]) is None

    def test_enroll_with_foreign_row_user_ids_falls_back(self):
        matrix = _matrix("bob")
        assert wirebin.batch_op([EnrollRequest(user_id="alice", matrix=matrix)]) is None

    def test_enroll_without_row_contexts_falls_back(self):
        matrix = FeatureMatrix(
            values=np.zeros((2, 2)),
            feature_names=["a", "b"],
            user_ids=["u", "u"],
            contexts=[],
        )
        assert wirebin.batch_op([EnrollRequest(user_id="u", matrix=matrix)]) is None

    def test_request_windows(self):
        assert wirebin.request_windows(_auth(rows=7)) == 7
        assert (
            wirebin.request_windows(EnrollRequest(user_id="a", matrix=_matrix("a")))
            == 4
        )
        assert wirebin.request_windows(RollbackRequest(user_id="a")) == 0


class TestRoundTrip:
    def test_authenticate_round_trip_matches_json_wire_form(self):
        requests = [
            _auth("alice", rows=3, seed=1, version=2),
            _auth("bob", rows=5, seed=2),
            _auth("carol", rows=1, seed=3),
        ]
        frame = wirebin.decode_request_frame(
            wirebin.encode_request_frame(requests, api_key="k", frame_id="f-1")
        )
        assert frame.op == "authenticate"
        assert frame.api_key == "k"
        assert frame.frame_id == "f-1"
        assert frame.n_requests == 3 and frame.n_windows == 9
        # The binary form re-materializes into requests whose JSON wire
        # form is byte-for-byte what the originals would have sent.
        for original, decoded in zip(requests, frame.to_requests()):
            assert dumps_request(decoded) == dumps_request(original)

    def test_server_detected_contexts_round_trip(self):
        requests = [_auth(contexts=False, seed=4), _auth("bob", contexts=False, seed=5)]
        frame = wirebin.decode_request_frame(wirebin.encode_request_frame(requests))
        assert frame.context_codes is None
        columns = frame.to_columns()
        assert columns.context_codes is None
        for original, decoded in zip(requests, frame.to_requests()):
            assert dumps_request(decoded) == dumps_request(original)

    def test_enroll_and_drift_round_trip(self):
        requests = [
            EnrollRequest(user_id="a", matrix=_matrix("a", seed=6), train=True),
            EnrollRequest(user_id="b", matrix=_matrix("b", seed=7), train=None),
            EnrollRequest(user_id="c", matrix=_matrix("c", seed=8), train=False),
        ]
        frame = wirebin.decode_request_frame(wirebin.encode_request_frame(requests))
        assert frame.op == "enroll"
        for original, decoded in zip(requests, frame.to_requests()):
            assert dumps_request(decoded) == dumps_request(original)
        drift = [DriftReport(user_id="a", matrix=_matrix("a", seed=9))]
        frame = wirebin.decode_request_frame(wirebin.encode_request_frame(drift))
        assert frame.op == "drift-report"
        assert dumps_request(frame.to_requests()[0]) == dumps_request(drift[0])

    def test_non_finite_and_negative_zero_floats_survive_bit_for_bit(self):
        values = np.array(
            [[np.nan, np.inf, -np.inf, -0.0, 5e-324, 1.0000000000000002]]
        )
        request = AuthenticateRequest(
            user_id="alice", features=values, contexts=(CoarseContext.STATIONARY,)
        )
        frame = wirebin.decode_request_frame(wirebin.encode_request_frame([request]))
        decoded = frame.features
        # Bit-for-bit: compare the raw IEEE-754 representation, which is
        # stricter than array_equal (sign of zero, NaN payload).
        assert decoded.tobytes() == np.ascontiguousarray(values).tobytes()
        assert np.signbit(decoded[0, 3])
        assert np.isnan(decoded[0, 0])

    def test_decoded_views_are_zero_copy_and_read_only(self):
        data = wirebin.encode_request_frame([_auth(rows=4)])
        frame = wirebin.decode_request_frame(data)
        assert not frame.features.flags.writeable
        assert frame.features.base is not None  # a view, not a copy
        columns = frame.to_columns()
        assert columns.features is frame.features

    def test_streamed_frames_decode_incrementally(self):
        frames_bytes = wirebin.encode_request_frame(
            [_auth()], frame_id="a"
        ) + wirebin.encode_request_frame(
            [EnrollRequest(user_id="u", matrix=_matrix("u"))], frame_id="b"
        )
        ops = [
            frame.op
            for frame in wirebin.iter_request_frames(
                wirebin._buffer_reader(frames_bytes)
            )
        ]
        assert ops == ["authenticate", "enroll"]

    def test_unencodable_batch_raises(self):
        with pytest.raises(ValueError, match="not frame-encodable"):
            wirebin.encode_request_frame([SnapshotRequest()])


class TestCorruptFrames:
    def _frame(self):
        return wirebin.encode_request_frame([_auth()], frame_id="f")

    def test_truncation_anywhere_raises_value_error_not_a_crash(self):
        data = self._frame()
        for cut in (2, 10, 20, len(data) // 2, len(data) - 1):
            with pytest.raises(ValueError, match="truncated|short"):
                wirebin.decode_request_frame(data[:cut])

    def test_bad_magic(self):
        data = self._frame()
        with pytest.raises(ValueError, match="bad magic"):
            wirebin.decode_request_frame(b"NOPE" + data[4:])

    def test_malformed_header_json(self):
        data = bytearray(self._frame())
        data[16] = ord("X")  # first header byte: breaks the JSON object
        with pytest.raises(ValueError, match="malformed binary frame header"):
            wirebin.decode_request_frame(bytes(data))

    def test_header_payload_disagreement(self):
        # Tamper n_windows upward: the sections no longer fit the payload.
        original = self._frame()
        tampered = original.replace(b'"n_windows":3', b'"n_windows":9')
        with pytest.raises(ValueError, match="corrupt|truncated|short"):
            wirebin.decode_request_frame(tampered)

    def test_lengths_sum_mismatch(self):
        original = self._frame()
        # Flip the single length entry (int32 LE at the payload start).
        data = bytearray(original)
        payload_start = len(data) - (8 + 3 * 4 * 8 + 8)
        data[payload_start : payload_start + 4] = (99).to_bytes(4, "little")
        with pytest.raises(ValueError, match="lengths sum|corrupt"):
            wirebin.decode_request_frame(bytes(data))

    def test_out_of_range_context_code_rejected(self):
        original = wirebin.encode_request_frame(
            [EnrollRequest(user_id="u", matrix=_matrix("u"))]
        )
        data = bytearray(original)
        data[-8] = 201  # the codes section is the last one; 201 is no code
        with pytest.raises(ValueError, match="context code out of range"):
            wirebin.decode_request_frame(bytes(data))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="bad magic|truncated|short"):
            wirebin.decode_request_frame(self._frame() + b"garbage!")


class TestResponseFrames:
    def _columns_result(self):
        return ColumnarAuthResult(
            user_ids=("alice", "ghost", "bob"),
            scores=np.array([1.5, -0.25, 0.75]),
            accepted=np.array([True, False, True]),
            model_context_codes=np.array([0, 1, 0], dtype=np.int8),
            lengths=np.array([2, 0, 1]),
            model_versions=np.array([3, 0, 1]),
            errors={
                1: ErrorResponse(
                    request_kind="authenticate",
                    error="KeyError",
                    message="no model",
                    user_id="ghost",
                )
            },
        )

    def test_columnar_response_round_trip(self):
        data = wirebin.encode_columnar_response(
            self._columns_result(), frame_id="f-9", caller_id="op"
        )
        (frame,) = wirebin.decode_response_frames(data)
        assert frame.frame_id == "f-9" and frame.caller_id == "op"
        responses = frame.to_responses()
        assert responses[0].user_id == "alice"
        np.testing.assert_array_equal(responses[0].scores, [1.5, -0.25])
        assert isinstance(responses[1], ErrorResponse)
        assert responses[1].user_id == "ghost"
        np.testing.assert_array_equal(responses[2].scores, [0.75])
        assert responses[2].model_version == 1

    def test_payload_response_round_trip(self):
        responses = [
            EnrollResponse(user_id="a", status="trained", windows_stored=24,
                           model_version=1),
            ErrorResponse(request_kind="enroll", error="ValueError", message="bad"),
        ]
        data = wirebin.encode_response_frame(
            "enroll", responses, frame_id="f-1", caller_id="op"
        )
        (frame,) = wirebin.decode_response_frames(data)
        decoded = frame.to_responses()
        assert decoded[0] == responses[0]
        assert decoded[1] == responses[1]

    def test_denied_frame_raises_permission_error(self):
        data = wirebin.encode_rejection_frame(
            "authenticate",
            DeniedResponse(
                request_kind="authenticate",
                code="unknown-api-key",
                message="no such caller",
            ),
            frame_id="f-2",
            n_requests=4,
        )
        (frame,) = wirebin.decode_response_frames(data)
        assert frame.denied is not None
        with pytest.raises(PermissionError, match="unknown-api-key"):
            frame.to_responses()

    def test_throttled_frame_fans_out_per_request(self):
        throttled = ThrottledResponse(
            request_kind="authenticate",
            reason="rate-limited",
            queue_depth=0,
            max_depth=100,
            retry_after_s=1.5,
        )
        data = wirebin.encode_rejection_frame(
            "authenticate", throttled, frame_id="f-3", n_requests=3
        )
        (frame,) = wirebin.decode_response_frames(data)
        responses = frame.to_responses()
        assert len(responses) == 3
        assert all(response == throttled for response in responses)
