"""Unit tests for sensor value types (streams, recordings, contexts)."""

import numpy as np
import pytest

from repro.sensors.types import (
    CoarseContext,
    Context,
    DeviceType,
    MultiSensorRecording,
    SensorReading,
    SensorStream,
    SensorType,
)


def make_stream(n=100, sensor=SensorType.ACCELEROMETER, rate=50.0):
    timestamps = np.arange(n) / rate
    samples = np.tile(np.array([1.0, 2.0, 2.0]), (n, 1))
    return SensorStream(sensor=sensor, device=DeviceType.SMARTPHONE, timestamps=timestamps, samples=samples, sampling_rate=rate)


class TestSensorType:
    def test_light_is_scalar(self):
        assert not SensorType.LIGHT.is_triaxial
        assert SensorType.LIGHT.axes == ("lux",)

    def test_motion_sensors_are_triaxial(self):
        assert SensorType.ACCELEROMETER.axes == ("x", "y", "z")


class TestContextMapping:
    def test_only_moving_maps_to_moving(self):
        assert Context.MOVING.coarse is CoarseContext.MOVING
        for context in (Context.HANDHELD_STATIC, Context.ON_TABLE, Context.VEHICLE):
            assert context.coarse is CoarseContext.STATIONARY


class TestSensorReading:
    def test_magnitude(self):
        assert SensorReading(0.0, (3.0, 4.0, 0.0)).magnitude() == pytest.approx(5.0)


class TestSensorStream:
    def test_magnitude_matches_expected(self):
        stream = make_stream()
        np.testing.assert_allclose(stream.magnitude(), 3.0)

    def test_duration(self):
        stream = make_stream(n=100, rate=50.0)
        assert stream.duration == pytest.approx(2.0)

    def test_axis_lookup(self):
        stream = make_stream()
        np.testing.assert_allclose(stream.axis("y"), 2.0)
        with pytest.raises(KeyError):
            stream.axis("w")

    def test_slice_time(self):
        stream = make_stream(n=100, rate=50.0)
        sliced = stream.slice_time(0.5, 1.0)
        assert len(sliced) == 25
        with pytest.raises(ValueError):
            stream.slice_time(1.0, 0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            SensorStream(
                sensor=SensorType.ACCELEROMETER,
                device=DeviceType.SMARTPHONE,
                timestamps=np.arange(3),
                samples=np.zeros((4, 3)),
            )

    def test_channel_count_enforced(self):
        with pytest.raises(ValueError, match="channels"):
            SensorStream(
                sensor=SensorType.ACCELEROMETER,
                device=DeviceType.SMARTPHONE,
                timestamps=np.arange(3),
                samples=np.zeros((3, 1)),
            )

    def test_concatenate_shifts_timestamps(self):
        first, second = make_stream(n=10), make_stream(n=10)
        combined = first.concatenate(second)
        assert len(combined) == 20
        assert np.all(np.diff(combined.timestamps) > 0)

    def test_concatenate_rejects_other_sensor(self):
        other = make_stream(sensor=SensorType.GYROSCOPE)
        with pytest.raises(ValueError, match="same sensor"):
            make_stream().concatenate(other)

    def test_iter_readings(self):
        readings = list(make_stream(n=5).iter_readings())
        assert len(readings) == 5 and readings[0].values == (1.0, 2.0, 2.0)


class TestMultiSensorRecording:
    def test_sensor_registration_validated(self):
        with pytest.raises(ValueError, match="was produced by"):
            MultiSensorRecording(
                device=DeviceType.SMARTPHONE,
                user_id="u",
                context=Context.MOVING,
                streams={SensorType.GYROSCOPE: make_stream()},
            )

    def test_restricted_to_subset(self, moving_recording):
        restricted = moving_recording.restricted_to((SensorType.ACCELEROMETER,))
        assert restricted.sensors() == (SensorType.ACCELEROMETER,)
        with pytest.raises(KeyError):
            moving_recording.restricted_to((SensorType.ACCELEROMETER,)).restricted_to(
                (SensorType.GYROSCOPE,)
            )

    def test_duration_and_membership(self, moving_recording):
        assert moving_recording.duration == pytest.approx(30.0, abs=0.1)
        assert SensorType.ACCELEROMETER in moving_recording
        assert moving_recording.coarse_context is CoarseContext.MOVING
