"""Unit tests for JSON serialization helpers."""

import numpy as np
import pytest

from repro.utils.serialization import dumps, from_json_file, loads, to_json_file


class TestRoundTrip:
    def test_plain_payload(self, tmp_path):
        payload = {"name": "model", "values": [1, 2, 3], "nested": {"ok": True}}
        path = to_json_file(payload, tmp_path / "payload.json")
        assert from_json_file(path) == payload

    def test_ndarray_roundtrip(self, tmp_path):
        payload = {"weights": np.arange(6, dtype=float).reshape(2, 3)}
        path = to_json_file(payload, tmp_path / "weights.json")
        restored = from_json_file(path)
        np.testing.assert_array_equal(restored["weights"], payload["weights"])
        assert restored["weights"].dtype == payload["weights"].dtype

    def test_numpy_scalars_become_python(self, tmp_path):
        path = to_json_file({"x": np.float64(1.5), "n": np.int64(3)}, tmp_path / "s.json")
        restored = from_json_file(path)
        assert restored == {"x": 1.5, "n": 3}

    def test_creates_parent_directories(self, tmp_path):
        path = to_json_file({"a": 1}, tmp_path / "deep" / "dir" / "f.json")
        assert path.exists()

    def test_string_roundtrip(self):
        payload = {"array": np.array([1.0, 2.0]), "label": "x"}
        restored = loads(dumps(payload))
        np.testing.assert_array_equal(restored["array"], payload["array"])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            from_json_file(tmp_path / "does-not-exist.json")
