"""Unit tests for the sharded serving cluster (ring, slicing, quota, router).

The worker pool's subprocess mechanics are covered by the integration
suite; here the router runs over in-process worker servers
(:class:`~repro.service.cluster.StaticEndpoints`) so every routing,
splitting, merging and failure path is exercised without process spawns.
"""

import json
import socket
import urllib.error
import urllib.request
from collections import Counter

import numpy as np
import pytest

from repro.sensors.types import CoarseContext
from repro.service import wirebin
from repro.service.cluster import (
    HashRing,
    HedgePolicy,
    RetryPolicy,
    ShardRouter,
    ShardUnavailable,
    StaticEndpoints,
)
from repro.service.envelope import (
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    CallerRegistry,
    Envelope,
    SharedTokenBucket,
    dumps_envelope,
    loads_sealed,
)
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.frontend import ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DrainShardRequest,
    DrainShardResponse,
    ErrorResponse,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)
from repro.service.registry import ModelRegistry
from repro.service.transport import (
    HEALTH_PATH,
    METRICS_PATH,
    ServiceClient,
    ServiceHTTPServer,
)

API_KEY = "cluster-unit-test-key"
N_USERS = 24


# --------------------------------------------------------------------- #
# hash ring
# --------------------------------------------------------------------- #


class TestHashRing:
    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError, match="n_shards"):
            HashRing(0)
        with pytest.raises(ValueError, match="replicas"):
            HashRing(2, replicas=0)

    def test_deterministic_across_instances(self):
        ids = [f"user-{i:04d}" for i in range(300)]
        first, second = HashRing(4), HashRing(4)
        assert [first.shard_for(u) for u in ids] == [
            second.shard_for(u) for u in ids
        ]

    def test_all_shards_in_range_and_used(self):
        ring = HashRing(4)
        counts = Counter(ring.shard_for(f"user-{i:04d}") for i in range(400))
        assert set(counts) == {0, 1, 2, 3}
        # Virtual nodes keep the split roughly even: no shard may own more
        # than half or fewer than a twentieth of a 400-key population.
        assert all(20 <= n <= 200 for n in counts.values())

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"u{i}") for i in range(50)} == {0}

    def test_split_preserves_order_and_covers_all_positions(self):
        ring = HashRing(3)
        user_ids = [f"user-{i:03d}" for i in range(40)]
        groups = ring.split(user_ids)
        flat = sorted(index for indices in groups.values() for index in indices)
        assert flat == list(range(len(user_ids)))
        for shard, indices in groups.items():
            assert indices == sorted(indices)
            assert all(ring.shard_for(user_ids[i]) == shard for i in indices)


# --------------------------------------------------------------------- #
# frame slicing
# --------------------------------------------------------------------- #


def _auth_requests(n, windows=3, features=4):
    rng = np.random.default_rng(7)
    return [
        AuthenticateRequest(
            user_id=f"user-{i:03d}",
            features=rng.normal(size=(windows + (i % 2), features)),
            contexts=tuple(
                CoarseContext("stationary" if j % 2 else "moving")
                for j in range(windows + (i % 2))
            ),
        )
        for i in range(n)
    ]


class TestEncodeFrameSlice:
    def test_slice_round_trips_to_original_requests(self):
        requests = _auth_requests(6)
        frame = wirebin.decode_request_frame(
            wirebin.encode_request_frame(requests, api_key=API_KEY)
        )
        indices = [4, 1, 5]
        sliced = wirebin.decode_request_frame(
            wirebin.encode_frame_slice(frame, indices)
        )
        assert sliced.api_key == API_KEY
        assert list(sliced.user_ids) == [requests[i].user_id for i in indices]
        for rebuilt, index in zip(sliced.to_requests(), indices):
            np.testing.assert_array_equal(
                rebuilt.features, requests[index].features
            )
            assert rebuilt.contexts == requests[index].contexts

    def test_slice_of_everything_equals_reencoding(self):
        requests = _auth_requests(5)
        frame = wirebin.decode_request_frame(
            wirebin.encode_request_frame(requests, api_key=API_KEY, frame_id="f-1")
        )
        full = wirebin.encode_frame_slice(
            frame, range(len(requests)), frame_id="f-1"
        )
        again = wirebin.decode_request_frame(full)
        assert list(again.user_ids) == list(frame.user_ids)
        np.testing.assert_array_equal(again.features, frame.features)
        np.testing.assert_array_equal(again.lengths, frame.lengths)

    def test_empty_and_out_of_range_slices_are_rejected(self):
        frame = wirebin.decode_request_frame(
            wirebin.encode_request_frame(_auth_requests(3), api_key=API_KEY)
        )
        with pytest.raises(ValueError, match="zero requests"):
            wirebin.encode_frame_slice(frame, [])
        with pytest.raises(ValueError, match="out of range"):
            wirebin.encode_frame_slice(frame, [3])

    def test_prepaid_stamp_is_explicit_and_round_trips(self):
        frame = wirebin.decode_request_frame(
            wirebin.encode_request_frame(_auth_requests(4), api_key=API_KEY)
        )
        assert frame.prepaid is False
        paid = wirebin.decode_request_frame(
            wirebin.encode_frame_slice(frame, [0, 2], prepaid=True)
        )
        assert paid.prepaid is True
        # The router always stamps explicitly; clearing wins over the
        # parent's flag, so a client-smuggled marker never propagates.
        cleared = wirebin.decode_request_frame(
            wirebin.encode_frame_slice(paid, [0], prepaid=False)
        )
        assert cleared.prepaid is False
        # Omitting the argument echoes the parent (wirebin-level default).
        echoed = wirebin.decode_request_frame(
            wirebin.encode_frame_slice(paid, [0])
        )
        assert echoed.prepaid is True


# --------------------------------------------------------------------- #
# shared token bucket
# --------------------------------------------------------------------- #


class TestSharedTokenBucket:
    def test_rejects_non_positive_rate_or_burst(self, tmp_path):
        path = tmp_path / "quota.json"
        with pytest.raises(ValueError):
            SharedTokenBucket(path, 0.0)
        with pytest.raises(ValueError):
            SharedTokenBucket(path, 1.0, burst=0.0)

    def test_two_instances_share_one_budget(self, tmp_path):
        path = tmp_path / "quota.json"
        first = SharedTokenBucket(path, rate_per_s=1.0, burst=4.0)
        second = SharedTokenBucket(path, rate_per_s=1.0, burst=4.0)
        # Four grants drawn alternately from two handles drain one budget.
        assert first.acquire(2) == 0.0
        assert second.acquire(2) == 0.0
        retry = second.acquire(1)
        assert retry > 0.0
        assert first.acquire(1) > 0.0

    def test_retry_after_scales_with_deficit(self, tmp_path):
        bucket = SharedTokenBucket(tmp_path / "q.json", rate_per_s=2.0, burst=2.0)
        assert bucket.acquire(2) == 0.0
        retry = bucket.acquire(4)
        assert retry == pytest.approx(4 / 2.0, rel=0.25)

    def test_corrupt_state_file_fails_open(self, tmp_path):
        path = tmp_path / "quota.json"
        bucket = SharedTokenBucket(path, rate_per_s=1.0, burst=3.0)
        assert bucket.acquire(1) == 0.0
        path.write_text("{not json")
        # A mangled state file resets to a full bucket instead of raising.
        assert bucket.acquire(3) == 0.0

    def test_attaches_behind_caller_registry_rate_interface(self, tmp_path):
        registry = CallerRegistry()
        registry.register("edge", (SCOPE_DATA_WRITE,))
        registry.attach_rate_limit(
            "edge", SharedTokenBucket(tmp_path / "q.json", 1.0, burst=2.0)
        )
        record = registry._by_id["edge"]
        assert registry.acquire_rate(record, 2) is None
        outcome = registry.acquire_rate(record, 1)
        assert outcome is not None
        reason, retry_after = outcome
        assert reason == "rate-limited"
        assert retry_after > 0.0

    def test_refund_returns_tokens_capped_at_burst(self, tmp_path):
        bucket = SharedTokenBucket(
            tmp_path / "q.json", rate_per_s=0.001, burst=4.0
        )
        assert bucket.acquire(4) == 0.0
        assert bucket.acquire(3) > 0.0  # drained
        bucket.refund(3.0)
        assert bucket.acquire(3) == 0.0  # the refund restored the charge
        bucket.refund(100.0)  # refunds never mint beyond the bucket size
        assert bucket.acquire(4) == 0.0
        assert bucket.acquire(1) > 0.0
        bucket.refund(-5.0)  # non-positive refunds are no-ops
        assert bucket.acquire(1) > 0.0

    def test_attach_rejects_non_bucket_objects(self):
        registry = CallerRegistry()
        registry.register("edge", (SCOPE_DATA_WRITE,))
        with pytest.raises(TypeError, match="TokenBucket-shaped"):
            registry.attach_rate_limit("edge", object())
        with pytest.raises(KeyError):
            registry.attach_rate_limit("ghost", SharedTokenBucket("/tmp/x", 1.0))


# --------------------------------------------------------------------- #
# router over in-process workers
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A small enrolled fleet persisting its models to a registry root."""
    root = tmp_path_factory.mktemp("cluster-registry")
    simulator = FleetSimulator(
        FleetConfig(n_users=N_USERS, seed=5, server_side_contexts=False),
        registry_root=root,
    )
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator


@pytest.fixture(scope="module")
def probes(fleet):
    rng = np.random.default_rng(23)
    requests = []
    for user in fleet.users:
        probe = user.sample_windows(
            2, fleet.config.window_noise, rng, fleet.feature_names
        )
        requests.append(
            AuthenticateRequest(
                user_id=user.user_id,
                features=probe.values,
                contexts=tuple(CoarseContext(label) for label in probe.contexts),
            )
        )
    return requests


@pytest.fixture(scope="module")
def reference(fleet, probes):
    return fleet.frontend.submit_many(probes)


@pytest.fixture(scope="module")
def cluster(fleet):
    """Two in-process shard workers behind a router (module lifetime)."""
    servers = []
    for _ in range(2):
        registry = ModelRegistry(root=fleet.frontend.gateway.registry.root)
        registry.load()
        frontend = ServiceFrontend(AuthenticationGateway(registry=registry))
        server = ServiceHTTPServer(frontend, port=0)
        server.callers.register(
            "cluster-operator", (SCOPE_DATA_WRITE, SCOPE_ADMIN), api_key=API_KEY
        )
        server.serve_background()
        servers.append(server)
    pool = StaticEndpoints([("127.0.0.1", server.port) for server in servers])
    router = ShardRouter(pool).serve_background()
    yield router, servers
    router.shutdown()
    router.server_close()
    for server in servers:
        server.shutdown()
        server.server_close()


def _get(port, path, accept=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        headers={"Accept": accept} if accept else {},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read()


class TestShardRouter:
    def test_binary_frame_split_merge_matches_in_process(
        self, cluster, probes, reference
    ):
        router, _ = cluster
        client = ServiceClient(port=router.port, api_key=API_KEY, codec="binary")
        remote = client.submit_many(probes)
        assert len(remote) == len(reference)
        for got, want in zip(remote, reference):
            assert isinstance(got, AuthenticationResponse)
            np.testing.assert_array_equal(got.scores, want.scores)
            np.testing.assert_array_equal(got.accepted, want.accepted)
            assert got.model_version == want.model_version
        # The batch really crossed shards: both workers saw requests.
        assert router.ring.split([p.user_id for p in probes]).keys() == {0, 1}

    def test_json_single_and_batch_route_by_user(self, cluster, probes, reference):
        router, _ = cluster
        client = ServiceClient(port=router.port, api_key=API_KEY, codec="json")
        got = client.submit(probes[0])
        np.testing.assert_array_equal(got.scores, reference[0].scores)
        batch = client.submit_many(probes[:7])
        for got, want in zip(batch, reference[:7]):
            np.testing.assert_array_equal(got.scores, want.scores)

    def test_unknown_user_answers_typed_not_found(self, cluster, fleet):
        router, _ = cluster
        client = ServiceClient(port=router.port, api_key=API_KEY, codec="json")
        response = client.submit(
            AuthenticateRequest(
                user_id="nobody-here",
                features=np.zeros((1, len(fleet.feature_names))),
                contexts=(CoarseContext("stationary"),),
            )
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "KeyError"

    def test_admin_snapshot_broadcasts_to_every_shard(self, cluster):
        router, servers = cluster
        client = ServiceClient(port=router.port, api_key=API_KEY, codec="json")
        before = [
            server.telemetry.counter_value("transport.requests")
            for server in servers
        ]
        response = client.submit(SnapshotRequest())
        assert isinstance(response, SnapshotResponse)
        after = [
            server.telemetry.counter_value("transport.requests")
            for server in servers
        ]
        assert all(b > a for b, a in zip(after, before))

    def test_healthz_reports_per_shard_liveness(self, cluster):
        router, _ = cluster
        status, body = _get(router.port, HEALTH_PATH)
        report = json.loads(body)
        assert status == 200
        assert report["ready"] is True
        assert report["n_shards"] == 2
        assert set(report["shards"]) == {"0", "1"}
        assert all(shard["alive"] for shard in report["shards"].values())

    def test_merged_metrics_equal_union_of_worker_streams(self, cluster):
        router, servers = cluster
        _, body = _get(router.port, METRICS_PATH)
        view = json.loads(body)
        worker_counters = [s.telemetry.snapshot()["counters"] for s in servers]
        for name, value in view["counters"].items():
            if name.startswith("router."):
                continue
            assert value == sum(c.get(name, 0) for c in worker_counters), name
        worker_histograms = [s.telemetry.histograms_snapshot() for s in servers]
        for name, payload in view["histograms"].items():
            assert payload["count"] == sum(
                h.get(name, {}).get("count", 0) for h in worker_histograms
            ), name
            assert payload["counts"] == [
                sum(counts)
                for counts in zip(
                    *(
                        h.get(name, {"counts": [0] * len(payload["counts"])})[
                            "counts"
                        ]
                        for h in worker_histograms
                    )
                )
            ], name

    def test_prometheus_view_renders_merged_families(self, cluster):
        router, _ = cluster
        status, body = _get(router.port, METRICS_PATH, accept="text/plain")
        text = body.decode()
        assert status == 200
        assert "# TYPE repro_transport_request_seconds histogram" in text
        assert "repro_router_requests_total" in text

    def test_unknown_paths_answer_typed_404(self, cluster):
        router, _ = cluster
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(router.port, "/nope")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == "KeyError"

    def test_dead_shard_answers_typed_503(self, fleet):
        # One live worker plus one endpoint nobody listens on.
        registry = ModelRegistry(root=fleet.frontend.gateway.registry.root)
        registry.load()
        server = ServiceHTTPServer(
            ServiceFrontend(AuthenticationGateway(registry=registry)), port=0
        )
        server.callers.register(
            "cluster-operator", (SCOPE_DATA_WRITE, SCOPE_ADMIN), api_key=API_KEY
        )
        server.serve_background()
        with socket.socket() as probe_socket:
            probe_socket.bind(("127.0.0.1", 0))
            dead_port = probe_socket.getsockname()[1]
        pool = StaticEndpoints(
            [("127.0.0.1", server.port), ("127.0.0.1", dead_port)]
        )
        router = ShardRouter(pool).serve_background()
        try:
            ring = router.ring
            # A user owned by the dead shard 1 answers 503, typed.
            victim = next(
                f"user-{i}" for i in range(1000) if ring.shard_for(f"user-{i}") == 1
            )
            body = json.dumps(
                {"type": "authenticate", "user_id": victim, "features": [[0.0]]}
            ).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{router.port}/v1/requests",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["error"] == "ShardUnavailable"
            assert "shard-unavailable" in payload["message"]
        finally:
            router.shutdown()
            router.server_close()
            server.shutdown()
            server.server_close()

    def test_static_endpoints_validates_and_reports(self):
        with pytest.raises(ValueError):
            StaticEndpoints([])
        pool = StaticEndpoints([("127.0.0.1", 1234)])
        assert pool.n_shards == 1
        assert pool.endpoint(0) == ("127.0.0.1", 1234)
        pool.report_failure(0, "ignored")
        assert pool.health()["0"]["alive"] is True

    def test_shard_unavailable_is_a_connection_error(self):
        error = ShardUnavailable(3, "worker process is down")
        assert isinstance(error, ConnectionError)
        assert error.shard == 3
        assert "shard-unavailable" in str(error)
        # The dispatch marker gates retries of non-idempotent operations.
        assert error.dispatched is False
        assert ShardUnavailable(3, "read failed", dispatched=True).dispatched


# --------------------------------------------------------------------- #
# live resharding: the ring's exclusion walk
# --------------------------------------------------------------------- #


class TestHashRingExclude:
    IDS = [f"user-{i:04d}" for i in range(300)]

    def test_empty_exclude_is_bit_for_bit_the_plain_lookup(self):
        ring = HashRing(4)
        assert [ring.shard_for(u, exclude=()) for u in self.IDS] == [
            ring.shard_for(u) for u in self.IDS
        ]

    def test_exclusion_moves_only_the_drained_shards_users(self):
        ring = HashRing(4)
        before = {u: ring.shard_for(u) for u in self.IDS}
        during = {u: ring.shard_for(u, exclude=(2,)) for u in self.IDS}
        assert any(shard == 2 for shard in before.values())
        for user, shard in before.items():
            if shard == 2:
                assert during[user] != 2  # rerouted off the drained shard
            else:
                assert during[user] == shard  # everyone else never moves

    def test_exclusion_decisions_are_deterministic_across_instances(self):
        exclude = (1, 3)
        first = {u: HashRing(4).shard_for(u, exclude) for u in self.IDS}
        second = {u: HashRing(4).shard_for(u, exclude) for u in self.IDS}
        assert first == second
        assert set(first.values()) <= {0, 2}

    def test_excluding_every_shard_raises(self):
        ring = HashRing(2)
        with pytest.raises(ValueError, match="every shard is excluded"):
            ring.shard_for("user-0001", exclude=(0, 1))

    def test_split_with_exclude_covers_all_positions(self):
        ring = HashRing(3)
        groups = ring.split(self.IDS, exclude=(1,))
        assert 1 not in groups
        positions = sorted(i for group in groups.values() for i in group)
        assert positions == list(range(len(self.IDS)))


# --------------------------------------------------------------------- #
# retry + hedge policies
# --------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_validates_every_bound(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(initial_backoff_s=0.0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(max_backoff_s=0.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="deadline_s"):
            RetryPolicy(deadline_s=0.0)

    def test_backoff_is_exponential_and_capped_without_jitter(self):
        policy = RetryPolicy(
            initial_backoff_s=0.1, max_backoff_s=0.4, multiplier=2.0, jitter=0.0
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)
        assert policy.backoff_s(7) == pytest.approx(0.4)  # capped

    def test_jitter_bounds_the_wait_between_base_and_base_plus_jitter(self):
        policy = RetryPolicy(
            initial_backoff_s=0.1, max_backoff_s=0.1, multiplier=2.0, jitter=1.0
        )
        waits = [policy.backoff_s(0) for _ in range(200)]
        assert all(0.1 <= wait <= 0.2 for wait in waits)
        assert max(waits) > min(waits)  # actually jittered


class TestHedgePolicy:
    def test_validates_every_bound(self):
        with pytest.raises(ValueError, match="quantile"):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ValueError, match="quantile"):
            HedgePolicy(quantile=101.0)
        with pytest.raises(ValueError, match="min_samples"):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError, match="delay bounds"):
            HedgePolicy(min_delay_s=0.0)
        with pytest.raises(ValueError, match="delay bounds"):
            HedgePolicy(min_delay_s=0.5, max_delay_s=0.1)


# --------------------------------------------------------------------- #
# graceful drain on the router
# --------------------------------------------------------------------- #


def _post_admin(port, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v2/admin",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _drain_over_wire(router, api_key, shard, undrain=False):
    envelope = Envelope(
        request=DrainShardRequest(shard=shard, undrain=undrain), api_key=api_key
    )
    status, body = _post_admin(router.port, dumps_envelope(envelope).encode())
    return status, loads_sealed(body.decode("utf-8"))


class TestGracefulDrain:
    @pytest.fixture()
    def drain_router(self, cluster):
        _, servers = cluster
        pool = StaticEndpoints(
            [("127.0.0.1", server.port) for server in servers]
        )
        router = ShardRouter(pool, admin_api_key=API_KEY).serve_background()
        yield router
        router.shutdown()
        router.server_close()

    def test_set_draining_validates_and_refuses_the_last_shard(
        self, drain_router
    ):
        with pytest.raises(ValueError, match="shard must be in"):
            drain_router.set_draining(5)
        assert drain_router.set_draining(1) == (0,)
        assert drain_router.draining() == frozenset({1})
        with pytest.raises(ValueError, match="last active shard"):
            drain_router.set_draining(0)
        assert drain_router.set_draining(1, undrain=True) == (0, 1)
        assert drain_router.draining() == frozenset()
        assert drain_router.telemetry.counter_value("router.drains") == 1
        assert drain_router.telemetry.counter_value("router.undrains") == 1

    def test_drain_admin_op_round_trips_and_reroutes(
        self, drain_router, probes, reference
    ):
        status, sealed = _drain_over_wire(drain_router, API_KEY, 0)
        assert status == 200
        assert isinstance(sealed.response, DrainShardResponse)
        assert sealed.response.draining is True
        assert sealed.response.active_shards == (1,)
        # Routed traffic while draining serves every user from shard 1 —
        # and the answers are the in-process reference, bit-for-bit.
        client = ServiceClient(port=drain_router.port, api_key=API_KEY)
        got = client.submit(probes[0])
        np.testing.assert_array_equal(got.scores, reference[0].scores)
        exclude = drain_router.draining()
        for probe in probes:
            assert drain_router.ring.shard_for(probe.user_id, exclude) == 1
        status, sealed = _drain_over_wire(drain_router, API_KEY, 0, undrain=True)
        assert status == 200
        assert sealed.response.draining is False
        assert sealed.response.active_shards == (0, 1)

    def test_drain_with_wrong_credential_answers_typed_401(self, drain_router):
        status, sealed = _drain_over_wire(drain_router, "wrong-key", 0)
        assert status == 401
        assert sealed.denied
        assert drain_router.draining() == frozenset()

    def test_drain_of_last_active_shard_answers_typed_400(self, drain_router):
        assert _drain_over_wire(drain_router, API_KEY, 1)[0] == 200
        status, sealed = _drain_over_wire(drain_router, API_KEY, 0)
        assert status == 400
        assert isinstance(sealed.response, ErrorResponse)
        assert "last active shard" in sealed.response.message
        assert _drain_over_wire(drain_router, API_KEY, 1, undrain=True)[0] == 200

    def test_worker_refuses_a_direct_drain_request(self, cluster):
        # The operation belongs to the router; a worker has no ring.
        _, servers = cluster
        envelope = Envelope(request=DrainShardRequest(shard=0), api_key=API_KEY)
        status, body = _post_admin(
            servers[0].port, dumps_envelope(envelope).encode()
        )
        assert status == 400
        sealed = loads_sealed(body.decode("utf-8"))
        assert isinstance(sealed.response, ErrorResponse)
        assert "shard-router operation" in sealed.response.message
