"""The benchmark-regression gate (tools/check_bench.py) does its job.

The same check runs as a CI step in the docs job; testing it in tier-1
means a PR that breaks the checker itself fails locally first.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench  # noqa: E402


def _write(path: Path, payload: dict) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def test_committed_baselines_exist_and_carry_throughput_metrics():
    """Structure only: the committed-vs-baseline comparison itself runs in
    the docs CI job on a fresh checkout (here the benchmarks may have just
    rewritten BENCH_*.json with this machine's numbers, so comparing values
    would test the hardware, not the code)."""
    baselines = sorted(check_bench.BASELINE_DIR.glob("BENCH_*.json"))
    names = [path.name for path in baselines]
    assert "BENCH_frontend.json" in names
    assert "BENCH_transport.json" in names
    for path in baselines:
        metrics = check_bench.throughput_keys(json.loads(path.read_text()))
        assert metrics, f"{path.name} baseline carries no *_per_s metrics"


def test_within_tolerance_passes(tmp_path):
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json", {"windows_per_s": 1000.0}
    )
    _write(tmp_path / "BENCH_x.json", {"windows_per_s": 900.0})  # -10%
    assert check_bench.check_file(tmp_path / "BENCH_x.json", baseline) == []


def test_large_drop_fails(tmp_path):
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json",
        {"windows_per_s": 1000.0, "speedup": 4.0},
    )
    _write(
        tmp_path / "BENCH_x.json", {"windows_per_s": 700.0, "speedup": 1.0}
    )  # -30% throughput; speedup is not a *_per_s key and is not gated
    problems = check_bench.check_file(tmp_path / "BENCH_x.json", baseline)
    assert len(problems) == 1
    assert "windows_per_s" in problems[0] and "30%" in problems[0]


def test_missing_result_or_metric_fails(tmp_path):
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json", {"windows_per_s": 1000.0}
    )
    assert any(
        "missing" in problem
        for problem in check_bench.check_file(tmp_path / "BENCH_x.json", baseline)
    )
    _write(tmp_path / "BENCH_x.json", {"other_metric": 1.0})
    assert any(
        "disappeared" in problem
        for problem in check_bench.check_file(tmp_path / "BENCH_x.json", baseline)
    )


def test_empty_baseline_dir_is_an_error(tmp_path):
    problems, checked = check_bench.check_all(
        root=tmp_path, baseline_dir=tmp_path / "baselines"
    )
    assert checked == []
    assert any("no baselines" in problem for problem in problems)


def test_tracing_overhead_within_bar_passes(tmp_path):
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json",
        {"binary_traced_windows_per_s": 960.0, "binary_untraced_windows_per_s": 1000.0},
    )
    _write(
        tmp_path / "BENCH_x.json",
        {
            "binary_traced_windows_per_s": 970.0,  # -3% vs its own twin
            "binary_untraced_windows_per_s": 1000.0,
        },
    )
    assert check_bench.check_file(tmp_path / "BENCH_x.json", baseline) == []


def test_tracing_overhead_beyond_bar_fails(tmp_path):
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json",
        {"binary_traced_windows_per_s": 960.0, "binary_untraced_windows_per_s": 1000.0},
    )
    _write(
        tmp_path / "BENCH_x.json",
        {
            "binary_traced_windows_per_s": 900.0,  # -10% vs its own twin
            "binary_untraced_windows_per_s": 1000.0,
        },
    )
    problems = check_bench.check_file(tmp_path / "BENCH_x.json", baseline)
    assert any("tracing costs" in problem for problem in problems)


def test_tracing_gate_compares_within_the_same_run(tmp_path):
    # A uniformly slower machine shifts both twins; the overhead gate
    # must still pass (it measures instrumentation, not hardware).
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json",
        {"binary_traced_windows_per_s": 960.0, "binary_untraced_windows_per_s": 1000.0},
    )
    _write(
        tmp_path / "BENCH_x.json",
        {
            "binary_traced_windows_per_s": 850.0,
            "binary_untraced_windows_per_s": 870.0,
        },
    )
    assert (
        check_bench.check_tracing_overhead(
            "BENCH_x.json",
            {
                "binary_traced_windows_per_s": 850.0,
                "binary_untraced_windows_per_s": 870.0,
            },
        )
        == []
    )


def test_traced_metric_without_untraced_twin_fails(tmp_path):
    problems = check_bench.check_tracing_overhead(
        "BENCH_x.json", {"binary_traced_windows_per_s": 900.0}
    )
    assert any("no untraced twin" in problem for problem in problems)


def test_retry_overhead_within_bar_passes():
    assert (
        check_bench.check_retry_overhead(
            "BENCH_x.json",
            {
                "cluster_2_worker_retry_windows_per_s": 970.0,  # -3% vs twin
                "cluster_2_worker_noretry_windows_per_s": 1000.0,
            },
        )
        == []
    )


def test_retry_overhead_beyond_bar_fails(tmp_path):
    baseline = _write(
        tmp_path / "baselines" / "BENCH_x.json",
        {
            "cluster_2_worker_retry_windows_per_s": 990.0,
            "cluster_2_worker_noretry_windows_per_s": 1000.0,
        },
    )
    _write(
        tmp_path / "BENCH_x.json",
        {
            "cluster_2_worker_retry_windows_per_s": 900.0,  # -10% vs twin
            "cluster_2_worker_noretry_windows_per_s": 1000.0,
        },
    )
    problems = check_bench.check_file(tmp_path / "BENCH_x.json", baseline)
    assert any("retries cost" in problem for problem in problems)


def test_retry_metric_without_disabled_twin_fails():
    problems = check_bench.check_retry_overhead(
        "BENCH_x.json", {"cluster_2_worker_retry_windows_per_s": 900.0}
    )
    assert any("no retry-disabled twin" in problem for problem in problems)


def test_noretry_twin_is_not_itself_treated_as_a_retry_metric():
    # "_noretry_windows_per_s" must not string-match the retry suffix —
    # a lone no-retry key is the twin, not a gated measurement.
    assert (
        check_bench.check_retry_overhead(
            "BENCH_x.json", {"cluster_2_worker_noretry_windows_per_s": 1000.0}
        )
        == []
    )
