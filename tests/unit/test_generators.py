"""Unit tests for the sensor-stream generators."""

import numpy as np
import pytest

from repro.sensors.generators import GRAVITY, SensorStreamGenerator, generate_recording
from repro.sensors.types import Context, DeviceType, SensorType


class TestBasicProperties:
    def test_requested_duration_and_rate(self, profile):
        recording = generate_recording(
            profile, DeviceType.SMARTPHONE, Context.MOVING, duration=10.0, seed=1
        )
        stream = recording[SensorType.ACCELEROMETER]
        assert len(stream) == 500
        assert stream.sampling_rate == 50.0

    def test_all_requested_sensors_present(self, moving_recording):
        assert set(moving_recording.sensors()) == set(SensorType)

    def test_sensor_subset_respected(self, profile):
        recording = generate_recording(
            profile,
            DeviceType.SMARTPHONE,
            Context.MOVING,
            duration=5.0,
            sensors=(SensorType.GYROSCOPE,),
            seed=2,
        )
        assert recording.sensors() == (SensorType.GYROSCOPE,)

    def test_invalid_duration_rejected(self, profile):
        with pytest.raises(ValueError):
            generate_recording(profile, DeviceType.SMARTPHONE, Context.MOVING, duration=0.0)

    def test_finite_values_everywhere(self, moving_recording):
        for sensor in moving_recording.sensors():
            assert np.all(np.isfinite(moving_recording[sensor].samples))


class TestPhysicalPlausibility:
    def test_accelerometer_magnitude_near_gravity_when_static(self, stationary_recording):
        magnitude = stationary_recording[SensorType.ACCELEROMETER].magnitude()
        assert abs(float(np.mean(magnitude)) - GRAVITY) < 2.0

    def test_moving_has_more_energy_than_stationary(self, profile):
        generator = SensorStreamGenerator(profile, seed=3)
        moving = generator.generate(DeviceType.SMARTPHONE, Context.MOVING, 20.0)
        static = generator.generate(DeviceType.SMARTPHONE, Context.HANDHELD_STATIC, 20.0)
        moving_var = float(np.var(moving[SensorType.ACCELEROMETER].magnitude()))
        static_var = float(np.var(static[SensorType.ACCELEROMETER].magnitude()))
        assert moving_var > 5.0 * static_var

    def test_on_table_is_nearly_still(self, profile):
        generator = SensorStreamGenerator(profile, seed=4)
        table = generator.generate(DeviceType.SMARTPHONE, Context.ON_TABLE, 20.0)
        assert float(np.std(table[SensorType.GYROSCOPE].magnitude())) < 0.2

    def test_gait_frequency_appears_in_spectrum(self, profile):
        generator = SensorStreamGenerator(profile, seed=5)
        recording = generator.generate(DeviceType.SMARTPHONE, Context.MOVING, 40.0)
        magnitude = recording[SensorType.ACCELEROMETER].magnitude()
        centered = magnitude - magnitude.mean()
        spectrum = np.abs(np.fft.rfft(centered))
        frequencies = np.fft.rfftfreq(len(centered), d=1.0 / 50.0)
        dominant = frequencies[np.argmax(spectrum)]
        assert abs(dominant - profile.gait.frequency_hz) < 0.5

    def test_light_is_non_negative(self, moving_recording):
        assert np.all(moving_recording[SensorType.LIGHT].samples >= 0.0)


class TestUserAndDeviceDifferences:
    def test_different_users_produce_different_signals(self, profile, second_profile):
        a = generate_recording(profile, DeviceType.SMARTPHONE, Context.MOVING, 20.0, seed=6)
        b = generate_recording(second_profile, DeviceType.SMARTPHONE, Context.MOVING, 20.0, seed=6)
        var_a = float(np.var(a[SensorType.ACCELEROMETER].magnitude()))
        var_b = float(np.var(b[SensorType.ACCELEROMETER].magnitude()))
        assert not np.isclose(var_a, var_b, rtol=0.05)

    def test_watch_and_phone_views_differ(self, profile):
        generator = SensorStreamGenerator(profile, seed=7)
        phone = generator.generate(DeviceType.SMARTPHONE, Context.MOVING, 20.0)
        watch = generator.generate(DeviceType.SMARTWATCH, Context.MOVING, 20.0)
        assert not np.allclose(
            phone[SensorType.ACCELEROMETER].samples[:100],
            watch[SensorType.ACCELEROMETER].samples[:100],
        )

    def test_sessions_are_not_identical(self, profile):
        generator = SensorStreamGenerator(profile, seed=8)
        first = generator.generate(DeviceType.SMARTPHONE, Context.MOVING, 10.0)
        second = generator.generate(DeviceType.SMARTPHONE, Context.MOVING, 10.0)
        assert not np.allclose(
            first[SensorType.ACCELEROMETER].samples, second[SensorType.ACCELEROMETER].samples
        )

    def test_same_seed_reproduces_recording(self, profile):
        a = generate_recording(profile, DeviceType.SMARTPHONE, Context.MOVING, 10.0, seed=9)
        b = generate_recording(profile, DeviceType.SMARTPHONE, Context.MOVING, 10.0, seed=9)
        np.testing.assert_array_equal(
            a[SensorType.ACCELEROMETER].samples, b[SensorType.ACCELEROMETER].samples
        )
