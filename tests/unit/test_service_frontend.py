"""Unit tests for the micro-batching service frontend."""

import threading
import time

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DriftReport,
    DriftResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    RollbackRequest,
    RollbackResponse,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)


def matrix(uid, mean, n=15, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def frontend():
    frontend = ServiceFrontend(AuthenticationGateway(min_windows_to_train=20))
    for uid, mean, seed in (("bg1", 4.0, 1), ("bg2", 6.0, 2)):
        for context in ("stationary", "moving"):
            frontend.submit(
                EnrollRequest(
                    user_id=uid, matrix=matrix(uid, mean, context=context, seed=seed),
                    train=False,
                )
            )
    return frontend


_PROBE_COUNTER = iter(range(10**6))


def probe():
    """A cheap data-plane request for queue plumbing tests (buffers 1 window).

    The micro-batch queue admits only data-plane operations, so queue tests
    probe it with tiny enrollments (``train=False`` → always ``buffered``).
    """
    seed = next(_PROBE_COUNTER)
    return EnrollRequest(
        user_id="queue-probe",
        matrix=matrix("queue-probe", 1.0, n=1, seed=seed),
        train=False,
    )


def train_alice(frontend):
    for context in ("stationary", "moving"):
        frontend.submit(
            EnrollRequest(
                user_id="alice",
                matrix=matrix("alice", 0.0, context=context, seed=3),
                train=False,
            )
        )
    frontend.gateway.train("alice")


class TestDispatch:
    def test_every_request_kind_routes_to_its_response(self, frontend):
        enroll = frontend.submit(
            EnrollRequest(user_id="alice", matrix=matrix("alice", 0.0, seed=3), train=False)
        )
        assert isinstance(enroll, EnrollResponse)
        assert enroll.status == "buffered"
        train_alice(frontend)
        own = matrix("alice", 0.0, n=4, seed=4)
        auth = frontend.submit(
            AuthenticateRequest(
                user_id="alice",
                features=own.values,
                contexts=(CoarseContext.STATIONARY,) * 4,
            )
        )
        assert isinstance(auth, AuthenticationResponse)
        assert len(auth.result) == 4
        drift = frontend.submit(
            DriftReport(user_id="alice", matrix=matrix("alice", 0.4, n=30, seed=5))
        )
        assert isinstance(drift, DriftResponse)
        rollback = frontend.submit(RollbackRequest(user_id="alice"))
        assert isinstance(rollback, RollbackResponse)
        assert rollback.serving_version == drift.previous_version
        snapshot = frontend.submit(SnapshotRequest())
        assert isinstance(snapshot, SnapshotResponse)
        assert snapshot.snapshot["counters"]["frontend.requests"] >= 5

    def test_empty_batch_yields_empty_result(self, frontend):
        train_alice(frontend)
        response = frontend.submit(
            AuthenticateRequest(user_id="alice", features=np.array([]), contexts=())
        )
        assert isinstance(response, AuthenticationResponse)
        assert len(response.result) == 0
        assert response.accept_rate == 0.0

    def test_user_lock_table_stays_bounded(self, frontend):
        import gc

        for index in range(200):
            response = frontend.submit(
                AuthenticateRequest(
                    user_id=f"ghost-{index}",
                    features=np.zeros((1, 5)),
                    contexts=(CoarseContext.STATIONARY,),
                )
            )
            assert isinstance(response, ErrorResponse)
        gc.collect()
        # Locks for finished requests have been reclaimed; only (at most)
        # stragglers whose weakrefs have not been cleared yet remain.
        assert len(frontend._locks) < 200

    def test_non_protocol_input_raises(self, frontend):
        with pytest.raises(TypeError, match="not a protocol request"):
            frontend.submit("authenticate alice")  # type: ignore[arg-type]

    def test_responses_keep_submission_order(self, frontend):
        train_alice(frontend)
        own = matrix("alice", 0.0, n=2, seed=6)
        responses = frontend.submit_many(
            [
                SnapshotRequest(),
                AuthenticateRequest(
                    user_id="alice",
                    features=own.values,
                    contexts=(CoarseContext.STATIONARY,) * 2,
                ),
                RollbackRequest(user_id="ghost"),
                SnapshotRequest(),
            ]
        )
        assert isinstance(responses[0], SnapshotResponse)
        assert isinstance(responses[1], AuthenticationResponse)
        assert isinstance(responses[2], ErrorResponse)
        assert isinstance(responses[3], SnapshotResponse)


class TestErrorMiddleware:
    def test_unknown_user_maps_to_error_response(self, frontend):
        response = frontend.submit(
            AuthenticateRequest(
                user_id="ghost",
                features=np.zeros((1, 5)),
                contexts=(CoarseContext.STATIONARY,),
            )
        )
        assert isinstance(response, ErrorResponse)
        assert response.request_kind == "authenticate"
        assert response.error == "KeyError"
        assert response.user_id == "ghost"

    def test_bad_request_does_not_poison_the_batch(self, frontend):
        train_alice(frontend)
        own = matrix("alice", 0.0, n=3, seed=7)
        good = AuthenticateRequest(
            user_id="alice",
            features=own.values,
            contexts=(CoarseContext.STATIONARY,) * 3,
        )
        bad = AuthenticateRequest(
            user_id="ghost",
            features=np.zeros((2, 5)),
            contexts=(CoarseContext.STATIONARY,) * 2,
        )
        responses = frontend.submit_many([bad, good, bad])
        assert isinstance(responses[0], ErrorResponse)
        assert isinstance(responses[2], ErrorResponse)
        expected = frontend.gateway.scorer_for("alice").score(
            own.values, [CoarseContext.STATIONARY] * 3
        )
        np.testing.assert_array_equal(responses[1].scores, expected.scores)
        assert frontend.telemetry.counter_value("frontend.errors") == 2

    def test_malformed_width_does_not_poison_coalesced_neighbours(self, frontend):
        """One request with the wrong feature width fails alone."""
        train_alice(frontend)
        own = matrix("alice", 0.0, n=3, seed=23)
        good = AuthenticateRequest(
            user_id="alice",
            features=own.values,
            contexts=(CoarseContext.STATIONARY,) * 3,
        )
        narrow = AuthenticateRequest(
            user_id="alice",
            features=np.zeros((2, 3)),  # model expects 5 columns
            contexts=(CoarseContext.STATIONARY,) * 2,
        )
        responses = frontend.submit_many([good, narrow, good])
        assert isinstance(responses[1], ErrorResponse)
        assert responses[1].error == "ValueError"
        expected = frontend.gateway.scorer_for("alice").score(
            own.values, [CoarseContext.STATIONARY] * 3
        )
        for survivor in (responses[0], responses[2]):
            assert isinstance(survivor, AuthenticationResponse)
            np.testing.assert_array_equal(survivor.scores, expected.scores)

    def test_malformed_width_does_not_poison_detection_neighbours(self, frontend):
        """Width mismatches must not break the shared detection pass either."""
        train_alice(frontend)
        training = matrix("alice", 0.0, n=40, context="stationary", seed=24).concatenate(
            matrix("alice", 5.0, n=40, context="moving", seed=25)
        )
        frontend.gateway.train_context_detector(training)
        own = matrix("alice", 0.0, n=3, seed=26)
        responses = frontend.submit_many(
            [
                AuthenticateRequest(user_id="alice", features=own.values),
                AuthenticateRequest(user_id="alice", features=np.zeros((2, 3))),
            ]
        )
        assert isinstance(responses[0], AuthenticationResponse)
        assert isinstance(responses[1], ErrorResponse)

    def test_broadcastable_width_mismatch_rejected_not_accepted(self, frontend):
        """A width-1 probe must be rejected, never broadcast-scored."""
        train_alice(frontend)
        response = frontend.submit(
            AuthenticateRequest(
                user_id="alice",
                features=np.ones((4, 1)),  # broadcastable against 5-wide models
                contexts=(CoarseContext.STATIONARY,) * 4,
            )
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "ValueError"

    def test_enroll_schema_mismatch_maps_to_error(self, frontend):
        response = frontend.submit(
            EnrollRequest(user_id="alice", matrix=matrix("alice", 0.0, d=3, seed=8))
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "ValueError"
        assert "feature_names mismatch" in response.message


class TestCoalescing:
    def test_coalesced_batch_matches_per_request_gateway_calls(self, frontend):
        train_alice(frontend)
        for uid, mean, seed in (("bg1", 4.0, 9), ("bg2", 6.0, 10)):
            frontend.gateway.train(uid)
        probes = {
            uid: matrix(uid, mean, n=6, seed=seed)
            for uid, mean, seed in (
                ("alice", 0.0, 11),
                ("bg1", 4.0, 12),
                ("bg2", 6.0, 13),
            )
        }
        contexts = (CoarseContext.STATIONARY, CoarseContext.MOVING) * 3
        requests = [
            AuthenticateRequest(user_id=uid, features=probe.values, contexts=contexts)
            for uid, probe in probes.items()
        ]
        # Two extra requests for the same user coalesce with the first.
        requests.append(
            AuthenticateRequest(
                user_id="alice", features=probes["alice"].values[:2], contexts=contexts[:2]
            )
        )
        coalesced = frontend.submit_many(requests)
        assert frontend.telemetry.counter_value("frontend.coalesced_batches") == 1
        for request, response in zip(requests, coalesced):
            expected = frontend.gateway.scorer_for(request.user_id).score(
                request.features, list(request.contexts)
            )
            np.testing.assert_array_equal(response.scores, expected.scores)
            np.testing.assert_array_equal(response.accepted, expected.accepted)
            assert response.result.model_contexts == expected.model_contexts
            assert response.model_version == expected.model_version

    def test_auth_counters_match_per_request_path(self, frontend):
        train_alice(frontend)
        own = matrix("alice", 0.0, n=8, seed=14)
        contexts = (CoarseContext.STATIONARY,) * 8
        frontend.submit_many(
            [
                AuthenticateRequest(user_id="alice", features=own.values[:5], contexts=contexts[:5]),
                AuthenticateRequest(user_id="alice", features=own.values[5:], contexts=contexts[5:]),
            ]
        )
        counters = frontend.gateway.snapshot()["counters"]
        assert counters["auth.windows"] == 8
        assert counters["auth.accepted"] + counters["auth.rejected"] == 8
        assert counters["frontend.coalesced_windows"] == 8


class TestServerSideContextDetection:
    def test_without_detector_maps_to_error(self, frontend):
        train_alice(frontend)
        response = frontend.submit(
            AuthenticateRequest(user_id="alice", features=np.zeros((2, 5)))
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "KeyError"
        assert "context detector" in response.message

    def test_detected_contexts_match_device_reported_truth(self, frontend):
        train_alice(frontend)
        # Distinct, well-separated context clusters so detection is exact.
        labelled = matrix("alice", 0.0, n=40, context="stationary", seed=15)
        moving = matrix("alice", 5.0, n=40, context="moving", seed=16)
        training = labelled.concatenate(moving)
        version = frontend.gateway.train_context_detector(training)
        assert version == 1
        assert frontend.gateway.registry.context_detector_versions() == [1]
        probe = np.vstack([labelled.values[:3], moving.values[:3]])
        truth = (CoarseContext.STATIONARY,) * 3 + (CoarseContext.MOVING,) * 3
        detected = frontend.submit(
            AuthenticateRequest(user_id="alice", features=probe)
        )
        reported = frontend.submit(
            AuthenticateRequest(user_id="alice", features=probe, contexts=truth)
        )
        assert isinstance(detected, AuthenticationResponse)
        np.testing.assert_array_equal(detected.scores, reported.scores)
        np.testing.assert_array_equal(detected.accepted, reported.accepted)
        assert detected.result.model_contexts == truth
        assert frontend.telemetry.counter_value("context.detections") == 6

    def test_detection_shares_one_pass_across_requests(self, frontend):
        train_alice(frontend)
        training = matrix("alice", 0.0, n=40, context="stationary", seed=17).concatenate(
            matrix("alice", 5.0, n=40, context="moving", seed=18)
        )
        frontend.gateway.train_context_detector(training)
        probe = matrix("alice", 0.0, n=4, seed=19)
        responses = frontend.submit_many(
            [
                AuthenticateRequest(user_id="alice", features=probe.values[:2]),
                AuthenticateRequest(user_id="alice", features=probe.values[2:]),
            ]
        )
        assert all(isinstance(r, AuthenticationResponse) for r in responses)
        # Both requests' rows were labelled by one detector call inside the
        # coalesced pass; the detection counter covers all 4 windows.
        assert frontend.telemetry.counter_value("context.detections") == 4


class TestControlDoor:
    def test_submit_control_dispatches_with_error_mapping(self, frontend):
        response = frontend.submit_control(RollbackRequest(user_id="ghost"))
        assert isinstance(response, ErrorResponse)
        assert response.error == "ValueError"  # nothing to roll back to
        snapshot = frontend.submit_control(SnapshotRequest())
        assert isinstance(snapshot, SnapshotResponse)

    def test_submit_control_rejects_data_plane_requests(self, frontend):
        from repro.service.gateway import PlaneMismatchError

        with pytest.raises(PlaneMismatchError, match="unreachable"):
            frontend.submit_control(
                AuthenticateRequest(
                    user_id="alice",
                    features=np.zeros((1, 5)),
                    contexts=(CoarseContext.STATIONARY,),
                )
            )
        with pytest.raises(TypeError, match="not a protocol request"):
            frontend.submit_control("snapshot")  # type: ignore[arg-type]

    def test_queue_admits_only_the_data_plane(self, frontend):
        with MicroBatchQueue(frontend, max_batch=4, max_delay_s=0.01) as queue:
            accepted = queue.submit(probe())
            with pytest.raises(TypeError, match="data-plane"):
                queue.submit(SnapshotRequest())
            with pytest.raises(TypeError, match="data-plane"):
                queue.submit(RollbackRequest(user_id="alice"))
            assert isinstance(accepted.result(timeout=5), EnrollResponse)


class TestMicroBatchQueue:
    def test_concurrent_submissions_coalesce_and_fan_out(self, frontend):
        train_alice(frontend)
        for uid in ("bg1", "bg2"):
            frontend.gateway.train(uid)
        probes = {
            "alice": matrix("alice", 0.0, n=4, seed=20),
            "bg1": matrix("bg1", 4.0, n=4, seed=21),
            "bg2": matrix("bg2", 6.0, n=4, seed=22),
        }
        contexts = (CoarseContext.STATIONARY,) * 4
        with MicroBatchQueue(frontend, max_batch=64, max_delay_s=0.02) as queue:
            barrier = threading.Barrier(len(probes))
            futures = {}

            def submit(uid):
                barrier.wait()
                futures[uid] = queue.submit(
                    AuthenticateRequest(
                        user_id=uid, features=probes[uid].values, contexts=contexts
                    )
                )

            threads = [
                threading.Thread(target=submit, args=(uid,)) for uid in probes
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for uid, future in futures.items():
                response = future.result(timeout=5)
                assert isinstance(response, AuthenticationResponse)
                assert response.user_id == uid
                expected = frontend.gateway.scorer_for(uid).score(
                    probes[uid].values, list(contexts)
                )
                np.testing.assert_array_equal(response.scores, expected.scores)

    def test_submit_requires_running_worker(self, frontend):
        queue = MicroBatchQueue(frontend)
        with pytest.raises(RuntimeError, match="not running"):
            queue.submit(probe())

    def test_submit_after_stop_raises_instead_of_hanging(self, frontend):
        queue = MicroBatchQueue(frontend)
        queue.start()
        queue.stop()
        with pytest.raises(RuntimeError, match="not running"):
            queue.submit(probe())
        # Restart works and serves again.
        with queue:
            assert isinstance(
                queue.submit(probe()).result(timeout=5), EnrollResponse
            )

    def test_cancelled_future_does_not_kill_the_worker(self, frontend):
        with MicroBatchQueue(frontend, max_batch=4, max_delay_s=0.05) as queue:
            first = queue.submit(probe())
            first.cancel()  # may or may not win the race with the worker
            second = queue.submit(probe())
            assert isinstance(second.result(timeout=5), EnrollResponse)
            # The worker survived whichever way the cancellation raced.
            third = queue.submit(probe())
            assert isinstance(third.result(timeout=5), EnrollResponse)
            if not first.cancelled():
                assert isinstance(first.result(timeout=5), EnrollResponse)

    def test_non_protocol_submission_rejected_before_enqueue(self, frontend):
        """Invalid input fails synchronously, never poisoning a batch slice."""
        with MicroBatchQueue(frontend, max_batch=8, max_delay_s=0.05) as queue:
            good = queue.submit(probe())
            with pytest.raises(TypeError, match="not a protocol request"):
                queue.submit("junk")  # type: ignore[arg-type]
            assert isinstance(good.result(timeout=5), EnrollResponse)

    def test_stop_drains_pending_requests(self, frontend):
        queue = MicroBatchQueue(frontend, max_batch=8, max_delay_s=0.2)
        queue.start()
        futures = [queue.submit(probe()) for _ in range(5)]
        queue.stop()
        for future in futures:
            assert isinstance(future.result(timeout=1), EnrollResponse)

    def test_rejects_degenerate_parameters(self, frontend):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatchQueue(frontend, max_batch=0)
        with pytest.raises(ValueError, match="max_delay_s"):
            MicroBatchQueue(frontend, max_delay_s=-1.0)
        with pytest.raises(ValueError, match="max_depth"):
            MicroBatchQueue(frontend, max_depth=0)
        with pytest.raises(ValueError, match="overflow"):
            MicroBatchQueue(frontend, overflow="shed")


def _block_gateway(frontend):
    """Make the gateway block on an event; returns (entered, release)."""
    entered, release = threading.Event(), threading.Event()
    original = frontend.gateway.handle

    def slow_handle(request):
        entered.set()
        assert release.wait(timeout=10), "test never released the gateway"
        return original(request)

    frontend.gateway.handle = slow_handle
    return entered, release


class TestAdmissionControl:
    def test_full_queue_rejects_with_throttled_response(self, frontend):
        entered, release = _block_gateway(frontend)
        queue = MicroBatchQueue(
            frontend, max_batch=1, max_delay_s=0.0, max_depth=1, overflow="reject"
        )
        with queue:
            first = queue.submit(probe())  # claimed by the worker
            assert entered.wait(timeout=5)  # ...which is now stuck in dispatch
            second = queue.submit(probe())  # fills the only slot
            assert queue.depth == 1
            third = queue.submit(
                AuthenticateRequest(
                    user_id="alice",
                    features=np.zeros((1, 5)),
                    contexts=(CoarseContext.STATIONARY,),
                )
            )
            # The reject policy resolves the future immediately and typed.
            response = third.result(timeout=1)
            assert isinstance(response, ThrottledResponse)
            assert response.reason == "queue-full"
            assert response.request_kind == "authenticate"
            assert response.user_id == "alice"
            assert response.queue_depth == 1
            assert response.max_depth == 1
            assert frontend.telemetry.counter_value("frontend.throttled") == 1
            release.set()
            assert isinstance(first.result(timeout=5), EnrollResponse)
            assert isinstance(second.result(timeout=5), EnrollResponse)
        # Accepted requests were never throttled.
        assert frontend.telemetry.counter_value("frontend.throttled") == 1

    def test_block_policy_applies_backpressure_to_the_submitter(self, frontend):
        entered, release = _block_gateway(frontend)
        queue = MicroBatchQueue(
            frontend, max_batch=1, max_delay_s=0.0, max_depth=1, overflow="block"
        )
        with queue:
            first = queue.submit(probe())
            assert entered.wait(timeout=5)
            second = queue.submit(probe())
            resolved = []

            def blocked_submit():
                resolved.append(queue.submit(probe()))

            submitter = threading.Thread(target=blocked_submit)
            submitter.start()
            time.sleep(0.1)
            assert not resolved  # still waiting for a slot, nothing dropped
            release.set()
            submitter.join(timeout=5)
            assert not submitter.is_alive()
            for future in (first, second, *resolved):
                assert isinstance(future.result(timeout=5), EnrollResponse)
        assert frontend.telemetry.counter_value("frontend.throttled") == 0

    def test_stop_fails_a_blocked_submitter_cleanly(self, frontend):
        entered, release = _block_gateway(frontend)
        queue = MicroBatchQueue(
            frontend, max_batch=1, max_delay_s=0.0, max_depth=1, overflow="block"
        )
        queue.start()
        first = queue.submit(probe())
        assert entered.wait(timeout=5)
        second = queue.submit(probe())
        outcome = []

        def blocked_submit():
            try:
                outcome.append(queue.submit(probe()))
            except RuntimeError as error:
                outcome.append(error)

        submitter = threading.Thread(target=blocked_submit)
        submitter.start()
        time.sleep(0.1)
        stopper = threading.Thread(target=queue.stop)
        stopper.start()
        time.sleep(0.1)
        release.set()
        stopper.join(timeout=10)
        submitter.join(timeout=10)
        assert not stopper.is_alive() and not submitter.is_alive()
        # The blocked submission observed the shutdown (RuntimeError) rather
        # than hanging forever or being silently dropped...
        assert len(outcome) == 1 and isinstance(outcome[0], RuntimeError)
        # ...while both accepted requests were drained and answered.
        assert isinstance(first.result(timeout=5), EnrollResponse)
        assert isinstance(second.result(timeout=5), EnrollResponse)

    def test_queue_wait_telemetry_recorded_per_dispatched_request(self, frontend):
        with MicroBatchQueue(frontend, max_batch=4, max_delay_s=0.01) as queue:
            futures = [queue.submit(probe()) for _ in range(3)]
            for future in futures:
                future.result(timeout=5)
        recorder = frontend.telemetry.latency("frontend.queue_wait")
        assert recorder.count == 3
        assert recorder.max_seconds < 5.0

    def test_unbounded_queue_never_throttles(self, frontend):
        with MicroBatchQueue(frontend, max_batch=2, max_delay_s=0.0) as queue:
            futures = [queue.submit(probe()) for _ in range(20)]
            for future in futures:
                assert isinstance(future.result(timeout=5), EnrollResponse)
        assert frontend.telemetry.counter_value("frontend.throttled") == 0


class TestFusedStackCacheIntegration:
    def _requests(self, frontend, seed):
        probes = {
            uid: matrix(uid, mean, n=6, seed=seed + offset)
            for offset, (uid, mean) in enumerate(
                (("alice", 0.0), ("bg1", 4.0), ("bg2", 6.0))
            )
        }
        contexts = (CoarseContext.STATIONARY, CoarseContext.MOVING) * 3
        return [
            AuthenticateRequest(user_id=uid, features=probe.values, contexts=contexts)
            for uid, probe in probes.items()
        ]

    def _trained(self, frontend):
        train_alice(frontend)
        for uid in ("bg1", "bg2"):
            frontend.gateway.train(uid)

    def test_repeated_flushes_hit_the_cache_with_identical_scores(self, frontend):
        self._trained(frontend)
        first = frontend.submit_many(self._requests(frontend, seed=40))
        assert frontend.stack_cache.misses >= 1
        hits_before = frontend.stack_cache.hits
        second = frontend.submit_many(self._requests(frontend, seed=40))
        assert frontend.stack_cache.hits == hits_before + 1
        assert len(frontend.stack_cache) == 1
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.scores, b.scores)
        counters = frontend.gateway.snapshot()["counters"]
        assert counters["frontend.stack_cache.hits"] == frontend.stack_cache.hits
        assert counters["frontend.stack_cache.misses"] == frontend.stack_cache.misses

    def test_cached_flush_matches_per_request_gateway_scores(self, frontend):
        self._trained(frontend)
        requests = self._requests(frontend, seed=50)
        frontend.submit_many(requests)  # warm the cache
        for request, response in zip(requests, frontend.submit_many(requests)):
            expected = frontend.gateway.scorer_for(request.user_id).score(
                request.features, list(request.contexts)
            )
            np.testing.assert_array_equal(response.scores, expected.scores)
            np.testing.assert_array_equal(response.accepted, expected.accepted)

    def test_publish_invalidates_the_cache(self, frontend):
        self._trained(frontend)
        requests = self._requests(frontend, seed=60)
        frontend.submit_many(requests)
        assert len(frontend.stack_cache) == 1
        # A drift retrain publishes a new version -> generation moves.
        frontend.submit(
            DriftReport(user_id="alice", matrix=matrix("alice", 0.3, n=30, seed=61))
        )
        responses = frontend.submit_many(requests)
        assert all(isinstance(r, AuthenticationResponse) for r in responses)
        # The old entry was dropped; the new model set occupies one entry.
        assert len(frontend.stack_cache) == 1
        assert responses[0].model_version == 2  # alice is served the retrain

    def test_rollback_invalidates_the_cache(self, frontend):
        self._trained(frontend)
        frontend.submit(
            DriftReport(user_id="alice", matrix=matrix("alice", 0.3, n=30, seed=62))
        )
        requests = self._requests(frontend, seed=63)
        frontend.submit_many(requests)
        entries_before = len(frontend.stack_cache)
        assert entries_before >= 1
        frontend.submit(RollbackRequest(user_id="alice"))
        responses = frontend.submit_many(requests)
        assert all(isinstance(r, AuthenticationResponse) for r in responses)
        assert responses[0].model_version == 1  # alice serves v1 again


class TestColumnarDoor:
    """submit_columns: the zero-copy twin of a coalesced submit_many."""

    def _columns(self, requests):
        from repro.service.protocol import AuthenticateColumns

        return AuthenticateColumns(
            user_ids=tuple(r.user_id for r in requests),
            features=np.vstack([r.features for r in requests]),
            lengths=np.array([len(r.features) for r in requests]),
            context_codes=(
                None
                if requests[0].contexts is None
                else np.concatenate([r.context_codes for r in requests])
            ),
            versions=tuple(r.version for r in requests),
        )

    def _requests(self, frontend, contexts=True, users=("alice", "alice")):
        train_alice(frontend)
        rng = np.random.default_rng(21)
        return [
            AuthenticateRequest(
                user_id=user,
                features=rng.normal(0.0, 1.0, size=(3, 5)),
                contexts=(
                    (CoarseContext.STATIONARY, CoarseContext.MOVING,
                     CoarseContext.STATIONARY)
                    if contexts
                    else None
                ),
            )
            for user in users
        ]

    def test_columnar_results_match_submit_many_bit_for_bit(self, frontend):
        requests = self._requests(frontend)
        reference = frontend.submit_many(requests)
        result = frontend.submit_columns(self._columns(requests))
        assert not result.errors
        responses = result.responses()
        for expected, actual in zip(reference, responses):
            assert isinstance(actual, AuthenticationResponse)
            np.testing.assert_array_equal(actual.scores, expected.scores)
            np.testing.assert_array_equal(actual.accepted, expected.accepted)
            assert actual.result.model_contexts == expected.result.model_contexts
            assert actual.model_version == expected.model_version

    def test_unknown_user_errors_in_place_without_costing_neighbours(self, frontend):
        requests = self._requests(frontend, users=("alice", "ghost", "alice"))
        result = frontend.submit_columns(self._columns(requests))
        assert set(result.errors) == {1}
        assert result.errors[1].error == "KeyError"
        assert result.lengths.tolist() == [3, 0, 3]
        responses = result.responses()
        assert isinstance(responses[0], AuthenticationResponse)
        assert isinstance(responses[1], ErrorResponse)
        assert isinstance(responses[2], AuthenticationResponse)
        reference = frontend.submit_many(requests)
        np.testing.assert_array_equal(responses[0].scores, reference[0].scores)
        np.testing.assert_array_equal(responses[2].scores, reference[2].scores)

    def test_server_side_detection_runs_once_over_the_block(self, frontend):
        train_alice(frontend)
        pool = matrix("alice", 0.0, context="stationary", seed=5).concatenate(
            matrix("alice", 0.0, context="moving", seed=6)
        )
        frontend.gateway.train_context_detector(pool)
        requests = self._requests(frontend, contexts=False)
        reference = frontend.submit_many(requests)
        before = frontend.telemetry.counter_value("context.detections")
        result = frontend.submit_columns(self._columns(requests))
        assert frontend.telemetry.counter_value("context.detections") - before == 6
        for expected, actual in zip(reference, result.responses()):
            np.testing.assert_array_equal(actual.scores, expected.scores)
            assert actual.result.model_contexts == expected.result.model_contexts

    def test_telemetry_counters_match_the_object_path(self, frontend):
        requests = self._requests(frontend)
        result_counters = {}
        for label, submit in (
            ("objects", lambda: frontend.submit_many(requests)),
            ("columns", lambda: frontend.submit_columns(self._columns(requests))),
        ):
            before = {
                name: frontend.telemetry.counter_value(name)
                for name in (
                    "frontend.requests",
                    "frontend.coalesced_batches",
                    "frontend.coalesced_windows",
                    "auth.windows",
                    "auth.accepted",
                    "auth.rejected",
                )
            }
            submit()
            result_counters[label] = {
                name: frontend.telemetry.counter_value(name) - value
                for name, value in before.items()
            }
        assert result_counters["objects"] == result_counters["columns"]

    def test_type_error_on_non_columnar_input(self, frontend):
        with pytest.raises(TypeError, match="AuthenticateColumns"):
            frontend.submit_columns(AuthenticateRequest(
                user_id="alice", features=np.zeros((1, 5)),
                contexts=(CoarseContext.STATIONARY,),
            ))

    def test_columns_validation(self):
        from repro.service.protocol import AuthenticateColumns

        with pytest.raises(ValueError, match="lengths sum"):
            AuthenticateColumns(
                user_ids=("a",),
                features=np.zeros((3, 2)),
                lengths=np.array([2]),
            )
        with pytest.raises(ValueError, match="context codes"):
            AuthenticateColumns(
                user_ids=("a",),
                features=np.zeros((2, 2)),
                lengths=np.array([2]),
                context_codes=np.array([0], dtype=np.int8),
            )
