"""Unit tests for the deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import choice_without_replacement, derive_rng, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).integers(0, 100) == ensure_rng(7).integers(0, 100)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")


class TestDeriveRng:
    def test_same_tokens_same_stream(self):
        a = derive_rng(42, "sensor", "alice").random(5)
        b = derive_rng(42, "sensor", "alice").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_tokens_different_stream(self):
        a = derive_rng(42, "sensor", "alice").random(5)
        b = derive_rng(42, "sensor", "bob").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_stream(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.allclose(a, b)


class TestSpawnRngs:
    def test_spawns_requested_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        assert children[0].random() != children[1].random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestChoiceWithoutReplacement:
    def test_returns_distinct_items(self):
        items = list("abcdef")
        chosen = choice_without_replacement(np.random.default_rng(0), items, 4)
        assert len(chosen) == len(set(chosen)) == 4

    def test_oversampling_rejected(self):
        with pytest.raises(ValueError, match="cannot sample"):
            choice_without_replacement(np.random.default_rng(0), ["a"], 2)
