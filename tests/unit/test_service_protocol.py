"""Unit tests for the typed request/response protocol and its wire codec."""

import numpy as np
import pytest

from repro.core.scoring import BatchScoreResult
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service import protocol
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DriftReport,
    DriftResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    RollbackRequest,
    RollbackResponse,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)


def matrix(uid="alice", n=6, d=4, seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(0.0, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=["stationary", "moving"] * (n // 2),
    )


def roundtrip_request(request):
    return protocol.loads_request(protocol.dumps_request(request))


def roundtrip_response(response):
    return protocol.loads_response(protocol.dumps_response(response))


class TestRequestRoundTrips:
    def test_enroll_request_lossless(self):
        original = EnrollRequest(user_id="alice", matrix=matrix(), train=True)
        restored = roundtrip_request(original)
        assert isinstance(restored, EnrollRequest)
        assert restored.user_id == "alice"
        assert restored.train is True
        np.testing.assert_array_equal(restored.matrix.values, original.matrix.values)
        assert restored.matrix.values.dtype == original.matrix.values.dtype
        assert restored.matrix.feature_names == original.matrix.feature_names
        assert restored.matrix.user_ids == original.matrix.user_ids
        assert restored.matrix.contexts == original.matrix.contexts

    def test_enroll_request_train_none_preserved(self):
        restored = roundtrip_request(EnrollRequest(user_id="a", matrix=matrix()))
        assert restored.train is None

    def test_authenticate_request_lossless(self):
        rng = np.random.default_rng(3)
        original = AuthenticateRequest(
            user_id="bob",
            features=rng.normal(0, 2, size=(5, 3)),
            contexts=(
                CoarseContext.MOVING,
                CoarseContext.STATIONARY,
                CoarseContext.MOVING,
                CoarseContext.MOVING,
                CoarseContext.STATIONARY,
            ),
            version=4,
        )
        restored = roundtrip_request(original)
        assert isinstance(restored, AuthenticateRequest)
        assert restored.user_id == "bob"
        assert restored.version == 4
        assert restored.contexts == original.contexts
        np.testing.assert_array_equal(restored.features, original.features)
        assert restored.features.dtype == original.features.dtype

    def test_authenticate_request_detected_contexts_preserved_as_none(self):
        original = AuthenticateRequest(user_id="bob", features=np.zeros((2, 3)))
        restored = roundtrip_request(original)
        assert restored.contexts is None
        assert restored.version is None

    def test_drift_report_lossless(self):
        original = DriftReport(user_id="carol", matrix=matrix("carol", seed=5))
        restored = roundtrip_request(original)
        assert isinstance(restored, DriftReport)
        np.testing.assert_array_equal(restored.matrix.values, original.matrix.values)

    def test_rollback_and_snapshot(self):
        assert roundtrip_request(RollbackRequest(user_id="dave")) == RollbackRequest(
            user_id="dave"
        )
        assert isinstance(roundtrip_request(SnapshotRequest()), SnapshotRequest)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="protocol request"):
            protocol.request_from_payload({"kind": "teleport"})

    def test_request_kind_rejects_foreign_objects(self):
        with pytest.raises(TypeError, match="not a protocol request"):
            protocol.request_kind("enroll me")  # type: ignore[arg-type]


class TestRequestValidation:
    def test_empty_user_id_rejected(self):
        with pytest.raises(ValueError, match="user_id"):
            RollbackRequest(user_id="")

    def test_authenticate_promotes_single_window(self):
        request = AuthenticateRequest(user_id="a", features=np.zeros(3))
        assert request.features.shape == (1, 3)

    def test_authenticate_context_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="context labels"):
            AuthenticateRequest(
                user_id="a",
                features=np.zeros((3, 2)),
                contexts=(CoarseContext.MOVING,),
            )

    def test_enroll_requires_feature_matrix(self):
        with pytest.raises(ValueError, match="FeatureMatrix"):
            EnrollRequest(user_id="a", matrix=np.zeros((3, 2)))  # type: ignore[arg-type]


class TestResponseRoundTrips:
    def test_enroll_response(self):
        assert roundtrip_response(
            EnrollResponse(user_id="a", status="trained", windows_stored=24, model_version=2)
        ) == EnrollResponse(user_id="a", status="trained", windows_stored=24, model_version=2)
        assert roundtrip_response(
            EnrollResponse(user_id="a", status="buffered", windows_stored=3)
        ).model_version is None

    def test_authentication_response_lossless(self):
        rng = np.random.default_rng(11)
        result = BatchScoreResult(
            scores=rng.normal(0, 1, 7),
            accepted=rng.normal(0, 1, 7) > 0,
            model_contexts=tuple(
                CoarseContext.MOVING if i % 2 else CoarseContext.STATIONARY
                for i in range(7)
            ),
            model_version=3,
        )
        restored = roundtrip_response(AuthenticationResponse(user_id="a", result=result))
        assert isinstance(restored, AuthenticationResponse)
        np.testing.assert_array_equal(restored.scores, result.scores)
        assert restored.scores.dtype == result.scores.dtype
        np.testing.assert_array_equal(restored.accepted, result.accepted)
        assert restored.accepted.dtype == np.bool_
        assert restored.result.model_contexts == result.model_contexts
        assert restored.model_version == 3
        assert restored.accept_rate == result.accept_rate

    def test_drift_rollback_snapshot_error(self):
        assert roundtrip_response(
            DriftResponse(user_id="a", previous_version=1, new_version=2)
        ) == DriftResponse(user_id="a", previous_version=1, new_version=2)
        assert roundtrip_response(
            RollbackResponse(user_id="a", serving_version=1)
        ) == RollbackResponse(user_id="a", serving_version=1)
        snapshot = SnapshotResponse(snapshot={"counters": {"auth.windows": 5}})
        assert roundtrip_response(snapshot).snapshot == snapshot.snapshot
        error = ErrorResponse(
            request_kind="authenticate",
            error="KeyError",
            message="no active model versions published for 'ghost'",
            user_id="ghost",
        )
        assert roundtrip_response(error) == error

    def test_throttled_response_lossless(self):
        throttled = ThrottledResponse(
            request_kind="authenticate",
            reason="queue-full",
            queue_depth=128,
            max_depth=128,
            retry_after_s=0.005,
            user_id="alice",
        )
        assert roundtrip_response(throttled) == throttled
        anonymous = ThrottledResponse(
            request_kind="snapshot", reason="queue-full", queue_depth=4, max_depth=4
        )
        restored = roundtrip_response(anonymous)
        assert restored.user_id is None
        assert restored.retry_after_s == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="protocol response"):
            protocol.response_from_payload({"kind": "nope"})
        with pytest.raises(TypeError, match="not a protocol response"):
            protocol.response_to_payload({"kind": "dict"})  # type: ignore[arg-type]


class TestWireCodecEdgeCases:
    """The malformed-input behaviour the transport layer relies on."""

    def test_malformed_json_raises_value_error(self):
        with pytest.raises(ValueError):
            protocol.loads_request("{this is not json")
        with pytest.raises(ValueError):
            protocol.loads_response("]")

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            protocol.request_from_payload([1, 2, 3])  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="mapping"):
            protocol.response_from_payload("authenticate")  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="mapping"):
            protocol.loads_request("[1, 2, 3]")

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="kind=None"):
            protocol.request_from_payload({"user_id": "alice"})
        with pytest.raises(ValueError, match="kind=None"):
            protocol.response_from_payload({"user_id": "alice"})

    def test_missing_required_field_raises_value_error(self):
        with pytest.raises(ValueError, match="missing required field 'user_id'"):
            protocol.request_from_payload({"kind": "authenticate"})
        with pytest.raises(ValueError, match="missing required field 'matrix'"):
            protocol.request_from_payload({"kind": "enroll", "user_id": "a"})
        with pytest.raises(ValueError, match="missing required field"):
            protocol.response_from_payload({"kind": "rollback-response", "user_id": "a"})

    def test_extra_fields_are_ignored_by_a_tolerant_reader(self):
        payload = protocol.request_to_payload(RollbackRequest(user_id="alice"))
        payload["shiny_new_field"] = {"nested": [1, 2, 3]}
        restored = protocol.request_from_payload(payload)
        assert restored == RollbackRequest(user_id="alice")

    def test_invalid_field_values_raise_the_dataclass_validation(self):
        with pytest.raises(ValueError, match="user_id"):
            protocol.request_from_payload({"kind": "rollback", "user_id": ""})
        with pytest.raises(ValueError, match="context labels"):
            protocol.request_from_payload(
                {
                    "kind": "authenticate",
                    "user_id": "a",
                    "features": np.zeros((3, 2)),
                    "contexts": ["moving"],
                }
            )

    def test_non_finite_scores_round_trip_losslessly(self):
        scores = np.array([np.nan, np.inf, -np.inf, 1.5e308, 5e-324, -0.0])
        result = BatchScoreResult(
            scores=scores,
            accepted=np.array([False, True, False, True, False, True]),
            model_contexts=(CoarseContext.STATIONARY,) * 6,
            model_version=1,
        )
        restored = roundtrip_response(AuthenticationResponse(user_id="a", result=result))
        np.testing.assert_array_equal(restored.scores, scores)
        assert np.signbit(restored.scores[-1])  # -0.0 keeps its sign

    def test_non_finite_features_round_trip_losslessly(self):
        features = np.array([[np.nan, -np.inf], [np.inf, 2.0 ** -1074]])
        restored = roundtrip_request(
            AuthenticateRequest(user_id="a", features=features)
        )
        np.testing.assert_array_equal(restored.features, features)


class TestWireFormat:
    def test_wire_form_is_json_text(self):
        import json

        text = protocol.dumps_request(
            AuthenticateRequest(user_id="a", features=np.zeros((1, 2)))
        )
        payload = json.loads(text)
        assert payload["kind"] == "authenticate"
        assert payload["features"]["__ndarray__"] == [[0.0, 0.0]]

    def test_every_request_kind_round_trips_through_payloads(self):
        requests = [
            EnrollRequest(user_id="u", matrix=matrix()),
            AuthenticateRequest(user_id="u", features=np.ones((2, 4))),
            DriftReport(user_id="u", matrix=matrix()),
            RollbackRequest(user_id="u"),
            SnapshotRequest(),
        ]
        for request in requests:
            payload = protocol.request_to_payload(request)
            assert payload["kind"] == protocol.request_kind(request)
            assert type(protocol.request_from_payload(payload)) is type(request)
