"""Unit tests for the HTTP transport (server, client, status mapping)."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    RollbackRequest,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)
from repro.service.transport import (
    HEALTH_PATH,
    METRICS_PATH,
    REQUESTS_PATH,
    ServiceClient,
    ServiceHTTPServer,
    status_for_response,
)


def matrix(uid, mean, n=15, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def frontend():
    frontend = ServiceFrontend(AuthenticationGateway(min_windows_to_train=20))
    for uid, mean, seed in (("bg1", 4.0, 1), ("bg2", 6.0, 2), ("alice", 0.0, 3)):
        for context in ("stationary", "moving"):
            frontend.submit(
                EnrollRequest(
                    user_id=uid,
                    matrix=matrix(uid, mean, context=context, seed=seed),
                    train=False,
                )
            )
    frontend.gateway.train("alice")
    return frontend


@pytest.fixture()
def server(frontend):
    with ServiceHTTPServer(frontend) as server:
        yield server


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


def raw_post(server, body, path=REQUESTS_PATH):
    """POST raw bytes, returning (status, parsed JSON body)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestStatusMapping:
    def test_success_is_200(self):
        assert status_for_response(SnapshotResponse(snapshot={})) == 200

    def test_missing_resource_is_404(self):
        error = ErrorResponse(request_kind="authenticate", error="KeyError", message="x")
        assert status_for_response(error) == 404

    def test_validation_failures_are_400(self):
        for name in ("ValueError", "TypeError", "JSONDecodeError"):
            error = ErrorResponse(request_kind="enroll", error=name, message="x")
            assert status_for_response(error) == 400

    def test_unexpected_errors_are_500(self):
        error = ErrorResponse(request_kind="drift-report", error="RuntimeError", message="x")
        assert status_for_response(error) == 500

    def test_throttled_is_429(self):
        throttled = ThrottledResponse(
            request_kind="authenticate", reason="queue-full", queue_depth=1, max_depth=1
        )
        assert status_for_response(throttled) == 429


class TestEndpoints:
    def test_healthz_reports_ok(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0

    def test_metrics_serves_the_telemetry_snapshot(self, client):
        client.submit(SnapshotRequest())
        snapshot = client.metrics()
        assert "counters" in snapshot and "latencies" in snapshot
        assert snapshot["counters"]["transport.requests"] >= 1

    def test_unknown_paths_answer_404(self, server):
        status, payload = raw_post(server, "{}", path="/v2/nothing")
        assert status == 404
        assert payload["kind"] == "error-response"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope")
        assert excinfo.value.code == 404

    def test_malformed_json_answers_400(self, server):
        status, payload = raw_post(server, "{this is not json")
        assert status == 400
        assert payload["kind"] == "error-response"
        assert payload["error"] == "JSONDecodeError"

    def test_non_request_json_answers_400(self, server):
        status, payload = raw_post(server, '"just a string"')
        assert status == 400
        assert payload["error"] == "TypeError"
        status, payload = raw_post(server, '{"kind": "teleport"}')
        assert status == 400
        assert payload["error"] == "ValueError"

    def test_missing_required_field_answers_400(self, server):
        status, payload = raw_post(server, '{"kind": "authenticate"}')
        assert status == 400
        assert payload["error"] == "ValueError"
        assert "missing required field" in payload["message"]
        assert payload["request_kind"] == "authenticate"


class TestSingleRequests:
    def test_authenticate_round_trips_bit_for_bit(self, frontend, client):
        own = matrix("alice", 0.0, n=4, seed=9)
        response = client.submit(
            AuthenticateRequest(
                user_id="alice",
                features=own.values,
                contexts=(CoarseContext.STATIONARY,) * 4,
            )
        )
        assert isinstance(response, AuthenticationResponse)
        expected = frontend.gateway.scorer_for("alice").score(
            own.values, [CoarseContext.STATIONARY] * 4
        )
        np.testing.assert_array_equal(response.scores, expected.scores)
        np.testing.assert_array_equal(response.accepted, expected.accepted)
        assert response.result.model_contexts == expected.model_contexts

    def test_unknown_user_maps_to_404_with_typed_error(self, server, client):
        response = client.submit(
            AuthenticateRequest(
                user_id="ghost",
                features=np.zeros((1, 5)),
                contexts=(CoarseContext.STATIONARY,),
            )
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "KeyError"
        # And the raw HTTP exchange used the mapped status code.
        status, _ = raw_post(
            server,
            json.dumps(
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                }
            ),
        )
        assert status == 404

    def test_enroll_then_authenticate_over_the_wire(self, client):
        response = client.submit(
            EnrollRequest(user_id="dora", matrix=matrix("dora", 2.0, seed=11), train=False)
        )
        assert isinstance(response, EnrollResponse)
        assert response.status == "buffered"


class TestBatchRequests:
    def test_batch_preserves_order_and_isolates_failures(self, client):
        own = matrix("alice", 0.0, n=3, seed=12)
        responses = client.submit_many(
            [
                SnapshotRequest(),
                AuthenticateRequest(
                    user_id="alice",
                    features=own.values,
                    contexts=(CoarseContext.STATIONARY,) * 3,
                ),
                RollbackRequest(user_id="ghost"),
            ]
        )
        assert isinstance(responses[0], SnapshotResponse)
        assert isinstance(responses[1], AuthenticationResponse)
        assert isinstance(responses[2], ErrorResponse)

    def test_batch_with_malformed_item_answers_per_item(self, server):
        body = json.dumps(
            [
                {"kind": "snapshot"},
                {"kind": "teleport"},
                "not even an object",
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                },
            ]
        )
        status, payload = raw_post(server, body)
        assert status == 200  # batch: per-item outcomes, not a single status
        kinds = [item["kind"] for item in payload]
        assert kinds == [
            "snapshot-response",
            "error-response",
            "error-response",
            "error-response",
        ]
        assert payload[1]["error"] == "ValueError"
        assert payload[2]["error"] == "TypeError"
        assert payload[3]["error"] == "KeyError"

    def test_empty_batch_answers_empty_array(self, server, client):
        assert client.submit_many([]) == []
        status, payload = raw_post(server, "[]")
        assert status == 200
        assert payload == []

    def test_oversized_batch_is_throttled_not_dispatched(self, frontend):
        with ServiceHTTPServer(frontend, max_batch_items=3) as server:
            requests_before = frontend.telemetry.counter_value("frontend.requests")
            body = json.dumps([{"kind": "snapshot"}] * 4)
            status, payload = raw_post(server, body)
            assert status == 429
            assert payload["kind"] == "throttled-response"
            assert payload["reason"] == "batch-too-large"
            assert payload["queue_depth"] == 4
            assert payload["max_depth"] == 3
            # Nothing reached the frontend; a within-bound batch still works.
            assert frontend.telemetry.counter_value("frontend.requests") == requests_before
            status, payload = raw_post(server, json.dumps([{"kind": "snapshot"}] * 3))
            assert status == 200
            assert len(payload) == 3

    def test_rejects_degenerate_batch_bound(self, frontend):
        with pytest.raises(ValueError, match="max_batch_items"):
            ServiceHTTPServer(frontend, max_batch_items=0)


class TestThrottlingOverTheWire:
    def test_queue_full_answers_429_with_retry_after(self, frontend):
        entered, release = threading.Event(), threading.Event()
        original = frontend.gateway.handle

        def slow_handle(request):
            entered.set()
            assert release.wait(timeout=10)
            return original(request)

        frontend.gateway.handle = slow_handle
        queue = MicroBatchQueue(
            frontend, max_batch=1, max_delay_s=0.0, max_depth=1, overflow="reject"
        )
        with ServiceHTTPServer(frontend, queue=queue) as server:
            results = {}

            def post(name, seed):
                with ServiceClient(port=server.port) as client:
                    results[name] = client.submit(
                        EnrollRequest(
                            user_id=f"slow-{name}",
                            matrix=matrix(f"slow-{name}", 1.0, n=1, seed=seed),
                            train=False,
                        )
                    )

            first = threading.Thread(target=post, args=("first", 31))
            first.start()
            assert entered.wait(timeout=5)  # worker is stuck dispatching
            second = threading.Thread(target=post, args=("second", 32))
            second.start()
            deadline = threading.Event()
            for _ in range(100):  # wait until the slot is actually occupied
                if queue.depth == 1:
                    break
                deadline.wait(0.01)
            assert queue.depth == 1
            # A third concurrent data-plane request finds the queue full:
            # typed 429.
            body = json.dumps(
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                }
            )
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}{REQUESTS_PATH}",
                data=body.encode("utf-8"),
                method="POST",
            )
            try:
                with urllib.request.urlopen(request) as response:
                    raise AssertionError(f"expected 429, got {response.status}")
            except urllib.error.HTTPError as error:
                assert error.code == 429
                assert error.headers["Retry-After"] is not None
                payload = json.loads(error.read().decode("utf-8"))
            assert payload["kind"] == "throttled-response"
            assert payload["reason"] == "queue-full"
            assert payload["max_depth"] == 1
            release.set()
            first.join(timeout=10)
            second.join(timeout=10)
            assert isinstance(results["first"], EnrollResponse)
            assert isinstance(results["second"], EnrollResponse)


class TestV2Endpoints:
    """The enveloped endpoints: caller auth, plane split, status codes."""

    def _keys(self, server):
        data_key = server.callers.register("device-gw", ("data:write",))
        admin_key = server.callers.register("operator", ("admin",))
        full_key = server.callers.register("fleet", ("data:write", "admin"))
        return data_key, admin_key, full_key

    def _envelope_body(self, request_payload, api_key, request_id="req-1", **extra):
        return json.dumps(
            {
                "kind": "envelope",
                "api_version": 2,
                "request_id": request_id,
                "api_key": api_key,
                "request": request_payload,
                **extra,
            }
        )

    AUTH_PAYLOAD = {
        "kind": "authenticate",
        "user_id": "alice",
        "features": [[0.0] * 5],
        "contexts": ["stationary"],
    }

    def test_missing_api_key_answers_401_and_never_reaches_the_gateway(self, frontend, server):
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        status, payload = raw_post(
            server, self._envelope_body(self.AUTH_PAYLOAD, None), path="/v2/requests"
        )
        assert status == 401
        assert payload["kind"] == "sealed-response"
        assert payload["response"]["kind"] == "denied-response"
        assert payload["response"]["code"] == "missing-api-key"
        assert payload["request_id"] == "req-1"
        assert calls == []

    def test_unknown_api_key_answers_401(self, server):
        status, payload = raw_post(
            server, self._envelope_body(self.AUTH_PAYLOAD, "bogus"), path="/v2/requests"
        )
        assert status == 401
        assert payload["response"]["code"] == "unknown-api-key"

    def test_insufficient_scope_answers_403(self, frontend, server):
        data_key, admin_key, _ = self._keys(server)
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        # A data-scoped caller cannot roll back...
        status, payload = raw_post(
            server,
            self._envelope_body({"kind": "rollback", "user_id": "alice"}, data_key),
            path="/v2/admin",
        )
        assert status == 403
        assert payload["response"]["code"] == "insufficient-scope"
        assert payload["response"]["required_scope"] == "admin"
        # ...and an admin-scoped caller cannot authenticate.
        status, payload = raw_post(
            server,
            self._envelope_body(self.AUTH_PAYLOAD, admin_key),
            path="/v2/requests",
        )
        assert status == 403
        assert payload["response"]["code"] == "insufficient-scope"
        assert calls == []

    def test_control_ops_unreachable_from_the_data_endpoint(self, server):
        """Even full scopes cannot reach rollback through /v2/requests."""
        _, _, full_key = self._keys(server)
        status, payload = raw_post(
            server,
            self._envelope_body({"kind": "rollback", "user_id": "alice"}, full_key),
            path="/v2/requests",
        )
        assert status == 403
        assert payload["response"]["code"] == "wrong-plane"

    def test_data_ops_unreachable_from_the_admin_endpoint(self, server):
        _, _, full_key = self._keys(server)
        status, payload = raw_post(
            server,
            self._envelope_body(self.AUTH_PAYLOAD, full_key),
            path="/v2/admin",
        )
        assert status == 403
        assert payload["response"]["code"] == "wrong-plane"

    def test_unsupported_api_version_answers_400(self, server):
        _, _, full_key = self._keys(server)
        body = json.dumps(
            {
                "kind": "envelope",
                "api_version": 9,
                "request_id": "req-9",
                "api_key": full_key,
                "request": self.AUTH_PAYLOAD,
            }
        )
        status, payload = raw_post(server, body, path="/v2/requests")
        assert status == 400
        assert payload["response"]["code"] == "unsupported-api-version"

    def test_admitted_envelope_echoes_request_id(self, frontend, server):
        data_key, _, _ = self._keys(server)
        status, payload = raw_post(
            server,
            self._envelope_body(self.AUTH_PAYLOAD, data_key, request_id="corr-42"),
            path="/v2/requests",
        )
        assert status == 200
        assert payload["request_id"] == "corr-42"
        assert payload["caller_id"] == "device-gw"
        assert payload["response"]["kind"] == "authenticate-response"

    def test_v2_batch_answers_sealed_array(self, server):
        data_key, _, _ = self._keys(server)
        body = json.dumps(
            [
                json.loads(self._envelope_body(self.AUTH_PAYLOAD, data_key, request_id=f"b-{i}"))
                for i in range(3)
            ]
        )
        status, payload = raw_post(server, body, path="/v2/requests")
        assert status == 200
        assert [item["request_id"] for item in payload] == ["b-0", "b-1", "b-2"]
        assert all(item["kind"] == "sealed-response" for item in payload)

    def test_admin_endpoint_refuses_batches(self, server):
        _, admin_key, _ = self._keys(server)
        body = json.dumps(
            [json.loads(self._envelope_body({"kind": "snapshot"}, admin_key))]
        )
        status, payload = raw_post(server, body, path="/v2/admin")
        assert status == 400
        assert payload["kind"] == "error-response"

    def test_malformed_envelope_answers_400(self, server):
        status, payload = raw_post(server, '{"kind": "envelope"}', path="/v2/requests")
        assert status == 400
        assert payload["kind"] == "error-response"
        assert payload["error"] == "ValueError"


class TestV2Client:
    def test_v2_client_authenticates_and_routes_planes(self, frontend, server):
        api_key = server.callers.register("fleet", ("data:write", "admin"))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            assert client.api_version == 2
            own = matrix("alice", 0.0, n=4, seed=9)
            response = client.submit(
                AuthenticateRequest(
                    user_id="alice",
                    features=own.values,
                    contexts=(CoarseContext.STATIONARY,) * 4,
                )
            )
            assert isinstance(response, AuthenticationResponse)
            expected = frontend.gateway.scorer_for("alice").score(
                own.values, [CoarseContext.STATIONARY] * 4
            )
            np.testing.assert_array_equal(response.scores, expected.scores)
            # Control op: the client routes it to /v2/admin transparently.
            snapshot = client.submit(SnapshotRequest())
            assert isinstance(snapshot, SnapshotResponse)

    def test_v2_client_denied_raises_permission_error(self, server):
        data_key = server.callers.register("device-gw", ("data:write",))
        with ServiceClient(port=server.port, api_key=data_key) as client:
            with pytest.raises(PermissionError, match="insufficient-scope"):
                client.submit(RollbackRequest(user_id="alice"))
        with ServiceClient(port=server.port, api_key="bogus") as client:
            with pytest.raises(PermissionError, match="unknown-api-key"):
                client.submit(SnapshotRequest())

    def test_v2_batch_matches_v1_batch_bit_for_bit(self, frontend, server):
        api_key = server.callers.register("fleet", ("data:write",))
        own = matrix("alice", 0.0, n=6, seed=13)
        requests = [
            AuthenticateRequest(
                user_id="alice",
                features=own.values[index : index + 2],
                contexts=(CoarseContext.STATIONARY,) * 2,
            )
            for index in range(0, 6, 2)
        ]
        with ServiceClient(port=server.port) as v1_client:
            v1_responses = v1_client.submit_many(requests)
        with ServiceClient(port=server.port, api_key=api_key) as v2_client:
            v2_responses = v2_client.submit_many(requests)
        for v1_response, v2_response in zip(v1_responses, v2_responses):
            np.testing.assert_array_equal(v2_response.scores, v1_response.scores)
            np.testing.assert_array_equal(v2_response.accepted, v1_response.accepted)

    def test_v2_batch_refuses_control_ops(self, server):
        api_key = server.callers.register("fleet", ("data:write", "admin"))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            with pytest.raises(ValueError, match="control-plane"):
                client.submit_many([SnapshotRequest()])

    def test_idempotent_retry_replays_over_the_wire(self, frontend, server):
        api_key = server.callers.register("fleet", ("data:write",))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            first = client.submit(
                EnrollRequest(
                    user_id="dora", matrix=matrix("dora", 2.0, n=5, seed=21), train=False
                ),
                idempotency_key="upload-1",
            )
            stored = frontend.gateway.server.stored_window_count("dora")
            second = client.submit(
                EnrollRequest(
                    user_id="dora", matrix=matrix("dora", 2.0, n=5, seed=22), train=False
                ),
                idempotency_key="upload-1",
            )
        assert isinstance(first, EnrollResponse)
        assert isinstance(second, EnrollResponse)
        assert second.windows_stored == first.windows_stored
        assert frontend.gateway.server.stored_window_count("dora") == stored

    def test_v1_client_rejects_idempotency_keys(self, server):
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ValueError, match="v2"):
                client.submit(SnapshotRequest(), idempotency_key="nope")

    def test_metrics_report_per_caller_telemetry(self, server):
        api_key = server.callers.register("device-gw", ("data:write",))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            with pytest.raises(PermissionError):
                client.submit(RollbackRequest(user_id="alice"))
            metrics = client.metrics()
        assert metrics["callers"]["device-gw"]["denied"] == 1
        assert "legacy-v1" in metrics["callers"]


class TestRevokedLegacyCaller:
    def test_v1_answers_typed_403_after_the_legacy_caller_is_revoked(self, server):
        """Switching the unauthenticated surface off is a typed denial, not
        a crashed handler thread."""
        assert server.callers.revoke(server.LEGACY_CALLER_ID) is True
        status, payload = raw_post(server, '{"kind": "snapshot"}')
        assert status == 403
        assert payload["kind"] == "error-response"
        assert payload["error"] == "PermissionError"
        # Batches degrade the same way, per item.
        status, payload = raw_post(server, '[{"kind": "snapshot"}]')
        assert status == 200
        assert payload[0]["kind"] == "error-response"
        assert payload[0]["error"] == "PermissionError"


class TestClientConnection:
    def test_connection_is_reused_across_calls(self, server, client):
        client.health()
        connection = client._connection
        assert connection is not None
        client.submit(SnapshotRequest())
        assert client._connection is connection

    def test_client_reconnects_after_a_drop(self, server, client):
        assert client.health()["status"] == "ok"
        client._connection.close()  # simulate the server dropping keep-alive
        assert client.health()["status"] == "ok"

    def test_unreachable_server_raises_connection_error(self):
        with ServiceClient(port=1, timeout_s=0.2) as client:
            with pytest.raises(ConnectionError):
                client.submit(SnapshotRequest())
