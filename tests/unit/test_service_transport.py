"""Unit tests for the HTTP transport (server, client, status mapping)."""

import json
import socket
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.envelope import TokenBucket
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    RollbackRequest,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)
from repro.service.transport import (
    DEADLINE_HEADER,
    HEALTH_PATH,
    METRICS_PATH,
    REQUESTS_PATH,
    DeadlineExceeded,
    ServiceClient,
    ServiceHTTPServer,
    status_for_response,
)


def matrix(uid, mean, n=15, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def frontend():
    frontend = ServiceFrontend(AuthenticationGateway(min_windows_to_train=20))
    for uid, mean, seed in (("bg1", 4.0, 1), ("bg2", 6.0, 2), ("alice", 0.0, 3)):
        for context in ("stationary", "moving"):
            frontend.submit(
                EnrollRequest(
                    user_id=uid,
                    matrix=matrix(uid, mean, context=context, seed=seed),
                    train=False,
                )
            )
    frontend.gateway.train("alice")
    return frontend


@pytest.fixture()
def server(frontend):
    with ServiceHTTPServer(frontend) as server:
        yield server


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


def raw_post(server, body, path=REQUESTS_PATH):
    """POST raw bytes, returning (status, parsed JSON body)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestStatusMapping:
    def test_success_is_200(self):
        assert status_for_response(SnapshotResponse(snapshot={})) == 200

    def test_missing_resource_is_404(self):
        error = ErrorResponse(request_kind="authenticate", error="KeyError", message="x")
        assert status_for_response(error) == 404

    def test_validation_failures_are_400(self):
        for name in ("ValueError", "TypeError", "JSONDecodeError"):
            error = ErrorResponse(request_kind="enroll", error=name, message="x")
            assert status_for_response(error) == 400

    def test_unexpected_errors_are_500(self):
        error = ErrorResponse(request_kind="drift-report", error="RuntimeError", message="x")
        assert status_for_response(error) == 500

    def test_throttled_is_429(self):
        throttled = ThrottledResponse(
            request_kind="authenticate", reason="queue-full", queue_depth=1, max_depth=1
        )
        assert status_for_response(throttled) == 429


class TestEndpoints:
    def test_healthz_reports_ok(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0

    def test_metrics_serves_the_telemetry_snapshot(self, client):
        client.submit(SnapshotRequest())
        snapshot = client.metrics()
        assert "counters" in snapshot and "latencies" in snapshot
        assert snapshot["counters"]["transport.requests"] >= 1

    def test_unknown_paths_answer_404(self, server):
        status, payload = raw_post(server, "{}", path="/v2/nothing")
        assert status == 404
        assert payload["kind"] == "error-response"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope")
        assert excinfo.value.code == 404

    def test_malformed_json_answers_400(self, server):
        status, payload = raw_post(server, "{this is not json")
        assert status == 400
        assert payload["kind"] == "error-response"
        assert payload["error"] == "JSONDecodeError"

    def test_non_request_json_answers_400(self, server):
        status, payload = raw_post(server, '"just a string"')
        assert status == 400
        assert payload["error"] == "TypeError"
        status, payload = raw_post(server, '{"kind": "teleport"}')
        assert status == 400
        assert payload["error"] == "ValueError"

    def test_missing_required_field_answers_400(self, server):
        status, payload = raw_post(server, '{"kind": "authenticate"}')
        assert status == 400
        assert payload["error"] == "ValueError"
        assert "missing required field" in payload["message"]
        assert payload["request_kind"] == "authenticate"


class TestSingleRequests:
    def test_authenticate_round_trips_bit_for_bit(self, frontend, client):
        own = matrix("alice", 0.0, n=4, seed=9)
        response = client.submit(
            AuthenticateRequest(
                user_id="alice",
                features=own.values,
                contexts=(CoarseContext.STATIONARY,) * 4,
            )
        )
        assert isinstance(response, AuthenticationResponse)
        expected = frontend.gateway.scorer_for("alice").score(
            own.values, [CoarseContext.STATIONARY] * 4
        )
        np.testing.assert_array_equal(response.scores, expected.scores)
        np.testing.assert_array_equal(response.accepted, expected.accepted)
        assert response.result.model_contexts == expected.model_contexts

    def test_unknown_user_maps_to_404_with_typed_error(self, server, client):
        response = client.submit(
            AuthenticateRequest(
                user_id="ghost",
                features=np.zeros((1, 5)),
                contexts=(CoarseContext.STATIONARY,),
            )
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "KeyError"
        # And the raw HTTP exchange used the mapped status code.
        status, _ = raw_post(
            server,
            json.dumps(
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                }
            ),
        )
        assert status == 404

    def test_enroll_then_authenticate_over_the_wire(self, client):
        response = client.submit(
            EnrollRequest(user_id="dora", matrix=matrix("dora", 2.0, seed=11), train=False)
        )
        assert isinstance(response, EnrollResponse)
        assert response.status == "buffered"


class TestBatchRequests:
    def test_batch_preserves_order_and_isolates_failures(self, client):
        own = matrix("alice", 0.0, n=3, seed=12)
        responses = client.submit_many(
            [
                SnapshotRequest(),
                AuthenticateRequest(
                    user_id="alice",
                    features=own.values,
                    contexts=(CoarseContext.STATIONARY,) * 3,
                ),
                RollbackRequest(user_id="ghost"),
            ]
        )
        assert isinstance(responses[0], SnapshotResponse)
        assert isinstance(responses[1], AuthenticationResponse)
        assert isinstance(responses[2], ErrorResponse)

    def test_batch_with_malformed_item_answers_per_item(self, server):
        body = json.dumps(
            [
                {"kind": "snapshot"},
                {"kind": "teleport"},
                "not even an object",
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                },
            ]
        )
        status, payload = raw_post(server, body)
        assert status == 200  # batch: per-item outcomes, not a single status
        kinds = [item["kind"] for item in payload]
        assert kinds == [
            "snapshot-response",
            "error-response",
            "error-response",
            "error-response",
        ]
        assert payload[1]["error"] == "ValueError"
        assert payload[2]["error"] == "TypeError"
        assert payload[3]["error"] == "KeyError"

    def test_empty_batch_answers_empty_array(self, server, client):
        assert client.submit_many([]) == []
        status, payload = raw_post(server, "[]")
        assert status == 200
        assert payload == []

    def test_oversized_batch_is_throttled_not_dispatched(self, frontend):
        with ServiceHTTPServer(frontend, max_batch_items=3) as server:
            requests_before = frontend.telemetry.counter_value("frontend.requests")
            body = json.dumps([{"kind": "snapshot"}] * 4)
            status, payload = raw_post(server, body)
            assert status == 429
            assert payload["kind"] == "throttled-response"
            assert payload["reason"] == "batch-too-large"
            assert payload["queue_depth"] == 4
            assert payload["max_depth"] == 3
            # Nothing reached the frontend; a within-bound batch still works.
            assert frontend.telemetry.counter_value("frontend.requests") == requests_before
            status, payload = raw_post(server, json.dumps([{"kind": "snapshot"}] * 3))
            assert status == 200
            assert len(payload) == 3

    def test_rejects_degenerate_batch_bound(self, frontend):
        with pytest.raises(ValueError, match="max_batch_items"):
            ServiceHTTPServer(frontend, max_batch_items=0)


class TestThrottlingOverTheWire:
    def test_queue_full_answers_429_with_retry_after(self, frontend):
        entered, release = threading.Event(), threading.Event()
        original = frontend.gateway.handle

        def slow_handle(request):
            entered.set()
            assert release.wait(timeout=10)
            return original(request)

        frontend.gateway.handle = slow_handle
        queue = MicroBatchQueue(
            frontend, max_batch=1, max_delay_s=0.0, max_depth=1, overflow="reject"
        )
        with ServiceHTTPServer(frontend, queue=queue) as server:
            results = {}

            def post(name, seed):
                with ServiceClient(port=server.port) as client:
                    results[name] = client.submit(
                        EnrollRequest(
                            user_id=f"slow-{name}",
                            matrix=matrix(f"slow-{name}", 1.0, n=1, seed=seed),
                            train=False,
                        )
                    )

            first = threading.Thread(target=post, args=("first", 31))
            first.start()
            assert entered.wait(timeout=5)  # worker is stuck dispatching
            second = threading.Thread(target=post, args=("second", 32))
            second.start()
            deadline = threading.Event()
            for _ in range(100):  # wait until the slot is actually occupied
                if queue.depth == 1:
                    break
                deadline.wait(0.01)
            assert queue.depth == 1
            # A third concurrent data-plane request finds the queue full:
            # typed 429.
            body = json.dumps(
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                }
            )
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}{REQUESTS_PATH}",
                data=body.encode("utf-8"),
                method="POST",
            )
            try:
                with urllib.request.urlopen(request) as response:
                    raise AssertionError(f"expected 429, got {response.status}")
            except urllib.error.HTTPError as error:
                assert error.code == 429
                assert error.headers["Retry-After"] is not None
                payload = json.loads(error.read().decode("utf-8"))
            assert payload["kind"] == "throttled-response"
            assert payload["reason"] == "queue-full"
            assert payload["max_depth"] == 1
            release.set()
            first.join(timeout=10)
            second.join(timeout=10)
            assert isinstance(results["first"], EnrollResponse)
            assert isinstance(results["second"], EnrollResponse)


class TestV2Endpoints:
    """The enveloped endpoints: caller auth, plane split, status codes."""

    def _keys(self, server):
        data_key = server.callers.register("device-gw", ("data:write",))
        admin_key = server.callers.register("operator", ("admin",))
        full_key = server.callers.register("fleet", ("data:write", "admin"))
        return data_key, admin_key, full_key

    def _envelope_body(self, request_payload, api_key, request_id="req-1", **extra):
        return json.dumps(
            {
                "kind": "envelope",
                "api_version": 2,
                "request_id": request_id,
                "api_key": api_key,
                "request": request_payload,
                **extra,
            }
        )

    AUTH_PAYLOAD = {
        "kind": "authenticate",
        "user_id": "alice",
        "features": [[0.0] * 5],
        "contexts": ["stationary"],
    }

    def test_missing_api_key_answers_401_and_never_reaches_the_gateway(self, frontend, server):
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        status, payload = raw_post(
            server, self._envelope_body(self.AUTH_PAYLOAD, None), path="/v2/requests"
        )
        assert status == 401
        assert payload["kind"] == "sealed-response"
        assert payload["response"]["kind"] == "denied-response"
        assert payload["response"]["code"] == "missing-api-key"
        assert payload["request_id"] == "req-1"
        assert calls == []

    def test_unknown_api_key_answers_401(self, server):
        status, payload = raw_post(
            server, self._envelope_body(self.AUTH_PAYLOAD, "bogus"), path="/v2/requests"
        )
        assert status == 401
        assert payload["response"]["code"] == "unknown-api-key"

    def test_insufficient_scope_answers_403(self, frontend, server):
        data_key, admin_key, _ = self._keys(server)
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        # A data-scoped caller cannot roll back...
        status, payload = raw_post(
            server,
            self._envelope_body({"kind": "rollback", "user_id": "alice"}, data_key),
            path="/v2/admin",
        )
        assert status == 403
        assert payload["response"]["code"] == "insufficient-scope"
        assert payload["response"]["required_scope"] == "admin"
        # ...and an admin-scoped caller cannot authenticate.
        status, payload = raw_post(
            server,
            self._envelope_body(self.AUTH_PAYLOAD, admin_key),
            path="/v2/requests",
        )
        assert status == 403
        assert payload["response"]["code"] == "insufficient-scope"
        assert calls == []

    def test_control_ops_unreachable_from_the_data_endpoint(self, server):
        """Even full scopes cannot reach rollback through /v2/requests."""
        _, _, full_key = self._keys(server)
        status, payload = raw_post(
            server,
            self._envelope_body({"kind": "rollback", "user_id": "alice"}, full_key),
            path="/v2/requests",
        )
        assert status == 403
        assert payload["response"]["code"] == "wrong-plane"

    def test_data_ops_unreachable_from_the_admin_endpoint(self, server):
        _, _, full_key = self._keys(server)
        status, payload = raw_post(
            server,
            self._envelope_body(self.AUTH_PAYLOAD, full_key),
            path="/v2/admin",
        )
        assert status == 403
        assert payload["response"]["code"] == "wrong-plane"

    def test_unsupported_api_version_answers_400(self, server):
        _, _, full_key = self._keys(server)
        body = json.dumps(
            {
                "kind": "envelope",
                "api_version": 9,
                "request_id": "req-9",
                "api_key": full_key,
                "request": self.AUTH_PAYLOAD,
            }
        )
        status, payload = raw_post(server, body, path="/v2/requests")
        assert status == 400
        assert payload["response"]["code"] == "unsupported-api-version"

    def test_admitted_envelope_echoes_request_id(self, frontend, server):
        data_key, _, _ = self._keys(server)
        status, payload = raw_post(
            server,
            self._envelope_body(self.AUTH_PAYLOAD, data_key, request_id="corr-42"),
            path="/v2/requests",
        )
        assert status == 200
        assert payload["request_id"] == "corr-42"
        assert payload["caller_id"] == "device-gw"
        assert payload["response"]["kind"] == "authenticate-response"

    def test_v2_batch_answers_sealed_array(self, server):
        data_key, _, _ = self._keys(server)
        body = json.dumps(
            [
                json.loads(self._envelope_body(self.AUTH_PAYLOAD, data_key, request_id=f"b-{i}"))
                for i in range(3)
            ]
        )
        status, payload = raw_post(server, body, path="/v2/requests")
        assert status == 200
        assert [item["request_id"] for item in payload] == ["b-0", "b-1", "b-2"]
        assert all(item["kind"] == "sealed-response" for item in payload)

    def test_admin_endpoint_refuses_batches(self, server):
        _, admin_key, _ = self._keys(server)
        body = json.dumps(
            [json.loads(self._envelope_body({"kind": "snapshot"}, admin_key))]
        )
        status, payload = raw_post(server, body, path="/v2/admin")
        assert status == 400
        assert payload["kind"] == "error-response"

    def test_malformed_envelope_answers_400(self, server):
        status, payload = raw_post(server, '{"kind": "envelope"}', path="/v2/requests")
        assert status == 400
        assert payload["kind"] == "error-response"
        assert payload["error"] == "ValueError"


class TestV2Client:
    def test_v2_client_authenticates_and_routes_planes(self, frontend, server):
        api_key = server.callers.register("fleet", ("data:write", "admin"))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            assert client.api_version == 2
            own = matrix("alice", 0.0, n=4, seed=9)
            response = client.submit(
                AuthenticateRequest(
                    user_id="alice",
                    features=own.values,
                    contexts=(CoarseContext.STATIONARY,) * 4,
                )
            )
            assert isinstance(response, AuthenticationResponse)
            expected = frontend.gateway.scorer_for("alice").score(
                own.values, [CoarseContext.STATIONARY] * 4
            )
            np.testing.assert_array_equal(response.scores, expected.scores)
            # Control op: the client routes it to /v2/admin transparently.
            snapshot = client.submit(SnapshotRequest())
            assert isinstance(snapshot, SnapshotResponse)

    def test_v2_client_denied_raises_permission_error(self, server):
        data_key = server.callers.register("device-gw", ("data:write",))
        with ServiceClient(port=server.port, api_key=data_key) as client:
            with pytest.raises(PermissionError, match="insufficient-scope"):
                client.submit(RollbackRequest(user_id="alice"))
        with ServiceClient(port=server.port, api_key="bogus") as client:
            with pytest.raises(PermissionError, match="unknown-api-key"):
                client.submit(SnapshotRequest())

    def test_v2_batch_matches_v1_batch_bit_for_bit(self, frontend, server):
        api_key = server.callers.register("fleet", ("data:write",))
        own = matrix("alice", 0.0, n=6, seed=13)
        requests = [
            AuthenticateRequest(
                user_id="alice",
                features=own.values[index : index + 2],
                contexts=(CoarseContext.STATIONARY,) * 2,
            )
            for index in range(0, 6, 2)
        ]
        with ServiceClient(port=server.port) as v1_client:
            v1_responses = v1_client.submit_many(requests)
        with ServiceClient(port=server.port, api_key=api_key) as v2_client:
            v2_responses = v2_client.submit_many(requests)
        for v1_response, v2_response in zip(v1_responses, v2_responses):
            np.testing.assert_array_equal(v2_response.scores, v1_response.scores)
            np.testing.assert_array_equal(v2_response.accepted, v1_response.accepted)

    def test_v2_batch_refuses_control_ops(self, server):
        api_key = server.callers.register("fleet", ("data:write", "admin"))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            with pytest.raises(ValueError, match="control-plane"):
                client.submit_many([SnapshotRequest()])

    def test_idempotent_retry_replays_over_the_wire(self, frontend, server):
        api_key = server.callers.register("fleet", ("data:write",))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            first = client.submit(
                EnrollRequest(
                    user_id="dora", matrix=matrix("dora", 2.0, n=5, seed=21), train=False
                ),
                idempotency_key="upload-1",
            )
            stored = frontend.gateway.server.stored_window_count("dora")
            second = client.submit(
                EnrollRequest(
                    user_id="dora", matrix=matrix("dora", 2.0, n=5, seed=22), train=False
                ),
                idempotency_key="upload-1",
            )
        assert isinstance(first, EnrollResponse)
        assert isinstance(second, EnrollResponse)
        assert second.windows_stored == first.windows_stored
        assert frontend.gateway.server.stored_window_count("dora") == stored

    def test_v1_client_rejects_idempotency_keys(self, server):
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ValueError, match="v2"):
                client.submit(SnapshotRequest(), idempotency_key="nope")

    def test_metrics_report_per_caller_telemetry(self, server):
        api_key = server.callers.register("device-gw", ("data:write",))
        with ServiceClient(port=server.port, api_key=api_key) as client:
            with pytest.raises(PermissionError):
                client.submit(RollbackRequest(user_id="alice"))
            metrics = client.metrics()
        assert metrics["callers"]["device-gw"]["denied"] == 1
        assert "legacy-v1" in metrics["callers"]


class TestRevokedLegacyCaller:
    def test_v1_answers_typed_403_after_the_legacy_caller_is_revoked(self, server):
        """Switching the unauthenticated surface off is a typed denial, not
        a crashed handler thread."""
        assert server.callers.revoke(server.LEGACY_CALLER_ID) is True
        status, payload = raw_post(server, '{"kind": "snapshot"}')
        assert status == 403
        assert payload["kind"] == "error-response"
        assert payload["error"] == "PermissionError"
        # Batches degrade the same way, per item.
        status, payload = raw_post(server, '[{"kind": "snapshot"}]')
        assert status == 200
        assert payload[0]["kind"] == "error-response"
        assert payload[0]["error"] == "PermissionError"


class TestClientConnection:
    def test_connection_is_reused_across_calls(self, server, client):
        client.health()
        connection = client._connection
        assert connection is not None
        client.submit(SnapshotRequest())
        assert client._connection is connection

    def test_client_reconnects_after_a_drop(self, server, client):
        assert client.health()["status"] == "ok"
        client._connection.close()  # simulate the server dropping keep-alive
        assert client.health()["status"] == "ok"

    def test_unreachable_server_raises_connection_error(self):
        with ServiceClient(port=1, timeout_s=0.2) as client:
            with pytest.raises(ConnectionError):
                client.submit(SnapshotRequest())


# --------------------------------------------------------------------- #
# client resilience: typed deadlines and Retry-After honouring
# --------------------------------------------------------------------- #


class TestClientResilience:
    def test_unresponsive_server_raises_typed_deadline(self):
        # A socket that listens but never answers: the read times out and
        # must surface as the typed DeadlineExceeded, not a bare
        # socket.timeout — and still a ConnectionError for old handlers.
        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            port = listener.getsockname()[1]
            with ServiceClient(port=port, timeout_s=0.3) as client:
                with pytest.raises(DeadlineExceeded) as excinfo:
                    client.submit(SnapshotRequest())
        assert isinstance(excinfo.value, ConnectionError)
        assert excinfo.value.timeout_s == pytest.approx(0.3)

    def test_deadline_header_is_advertised_on_the_wire(self):
        # A one-shot raw responder captures the request bytes so the test
        # can pin the X-Deadline-S header the shard router budgets by.
        captured = {}
        from repro.service.protocol import dumps_response

        body = dumps_response(
            ErrorResponse(
                request_kind="snapshot", error="KeyError", message="nope"
            )
        ).encode("utf-8")

        def respond(listener):
            conn, _ = listener.accept()
            with conn:
                captured["request"] = conn.recv(65536)
                conn.sendall(
                    b"HTTP/1.1 404 Not Found\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )

        with socket.socket() as listener:
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            responder = threading.Thread(
                target=respond, args=(listener,), daemon=True
            )
            responder.start()
            client = ServiceClient(
                port=listener.getsockname()[1], timeout_s=5.0, deadline_s=2.5
            )
            with client:
                response = client.submit(SnapshotRequest())
            responder.join(timeout=5.0)
        assert isinstance(response, ErrorResponse)
        assert f"{DEADLINE_HEADER}: 2.5".encode() in captured["request"]

    def test_client_rejects_invalid_resilience_knobs(self):
        with pytest.raises(ValueError, match="max_retry_wait"):
            ServiceClient(max_retry_wait=-1.0)
        with pytest.raises(ValueError, match="deadline_s"):
            ServiceClient(deadline_s=0.0)

    def test_retry_after_honoured_only_within_the_opt_in_budget(
        self, frontend
    ):
        with ServiceHTTPServer(frontend) as server:
            api_key = server.callers.register("limited", ("data:write", "admin"))
            server.callers.attach_rate_limit(
                "limited", TokenBucket(rate_per_s=2.0, burst=1.0)
            )
            # Without the opt-in, the throttle surfaces immediately, typed.
            with ServiceClient(port=server.port, api_key=api_key) as client:
                assert isinstance(client.submit(SnapshotRequest()), SnapshotResponse)
                throttled = client.submit(SnapshotRequest())
                assert isinstance(throttled, ThrottledResponse)
                assert throttled.retry_after_s > 0.0
            # With a wait budget, the client sleeps the advertised
            # Retry-After and the retried exchange succeeds.
            with ServiceClient(
                port=server.port, api_key=api_key, max_retry_wait=10.0
            ) as patient:
                assert isinstance(
                    patient.submit(SnapshotRequest()), SnapshotResponse
                )
                started = time.monotonic()
                second = patient.submit(SnapshotRequest())
                waited = time.monotonic() - started
                assert isinstance(second, SnapshotResponse)
                assert waited >= 0.4  # actually slept toward the refill

    def test_healthz_surfaces_injected_crash_history(self, frontend):
        with ServiceHTTPServer(
            frontend, restarts=3, last_crash_ts=12345.0
        ) as server:
            with ServiceClient(port=server.port) as client:
                health = client.health()
        assert health["restarts"] == 3
        assert health["last_crash_ts"] == 12345.0


# --------------------------------------------------------------------- #
# the binary columnar codec over a live socket
# --------------------------------------------------------------------- #


@pytest.fixture()
def v2(frontend):
    with ServiceHTTPServer(frontend) as server:
        api_key = server.callers.register("binary-op", ("data:write", "admin"))
        yield server, api_key


def _auth_requests(n_rows=4):
    rng = np.random.default_rng(11)
    return [
        AuthenticateRequest(
            user_id="alice",
            features=rng.normal(0.0, 1.0, size=(n_rows, 5)),
            contexts=(CoarseContext.STATIONARY, CoarseContext.MOVING) * (n_rows // 2),
        )
        for _ in range(3)
    ]


class TestBinaryCodec:
    def test_binary_and_json_answers_are_bit_for_bit_identical(self, frontend, v2):
        server, api_key = v2
        requests = _auth_requests()
        local = frontend.submit_many(requests)
        with ServiceClient(
            port=server.port, api_key=api_key, codec="binary"
        ) as binary, ServiceClient(port=server.port, api_key=api_key) as jsonc:
            remote_binary = binary.submit_many(requests)
            remote_json = jsonc.submit_many(requests)
        for reference, b, j in zip(local, remote_binary, remote_json):
            assert isinstance(b, AuthenticationResponse)
            np.testing.assert_array_equal(b.scores, reference.scores)
            np.testing.assert_array_equal(b.accepted, reference.accepted)
            np.testing.assert_array_equal(b.scores, j.scores)
            assert b.result.model_contexts == reference.result.model_contexts
            assert b.model_version == reference.model_version

    def test_binary_enroll_stores_windows_like_json(self, v2):
        server, api_key = v2
        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            (response,) = client.submit_many(
                [
                    EnrollRequest(
                        user_id="newbie",
                        matrix=matrix("newbie", 1.0, n=12, seed=9),
                        train=False,
                    )
                ]
            )
        assert isinstance(response, EnrollResponse)
        assert response.status == "buffered"
        assert response.windows_stored == 12

    def test_response_content_type_is_negotiated(self, v2):
        from repro.service import wirebin

        server, api_key = v2
        body = wirebin.encode_request_frame(
            _auth_requests(), api_key=api_key, frame_id="f-1"
        )
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v2/requests",
            data=body,
            headers={"Content-Type": wirebin.CONTENT_TYPE},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            assert response.headers.get("Content-Type") == wirebin.CONTENT_TYPE
            frames = wirebin.decode_response_frames(response.read())
        assert len(frames) == 1 and frames[0].frame_id == "f-1"

    def test_corrupt_frame_answers_typed_400_never_a_stack_trace(self, v2):
        from repro.service import wirebin

        server, _ = v2
        for body in (b"RBC1" + b"\x00" * 20, b"garbage", b"RBC1\xff\xff\xff\xff" + b"\x00" * 64):
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/v2/requests",
                data=body,
                headers={"Content-Type": wirebin.CONTENT_TYPE},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["kind"] == "error-response"
            assert payload["error"] == "ValueError"

    def test_binary_frames_are_rejected_on_other_endpoints(self, v2):
        from repro.service import wirebin

        server, api_key = v2
        body = wirebin.encode_request_frame(_auth_requests(), api_key=api_key)
        for path in ("/v1/requests", "/v2/admin"):
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}{path}",
                data=body,
                headers={"Content-Type": wirebin.CONTENT_TYPE},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert "only at /v2/requests" in payload["message"]

    def test_unknown_key_raises_permission_error(self, v2):
        server, _ = v2
        with ServiceClient(
            port=server.port, api_key="wrong-key", codec="binary"
        ) as client:
            with pytest.raises(PermissionError, match="unknown-api-key"):
                client.submit_many(_auth_requests())

    def test_rate_limited_frame_answers_typed_throttles(self, v2):
        server, api_key = v2
        server.callers.set_rate_limit("binary-op", 1.0, burst=4.0)
        requests = _auth_requests()  # 3 requests per frame, 4-token burst
        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            first = client.submit_many(requests)   # 3 tokens: granted
            second = client.submit_many(requests)  # 1 token left: throttled
        assert all(isinstance(r, AuthenticationResponse) for r in first)
        assert all(isinstance(r, ThrottledResponse) for r in second)
        assert second[0].reason == "rate-limited"
        assert second[0].retry_after_s > 0.0

    def test_rate_limited_single_frame_answers_http_429(self, v2):
        from repro.service import wirebin

        server, api_key = v2
        server.callers.set_rate_limit("binary-op", 1.0, burst=1.0)
        body = wirebin.encode_request_frame(
            _auth_requests()[:1], api_key=api_key, frame_id="f-429"
        )
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v2/requests",
            data=body,
            headers={"Content-Type": wirebin.CONTENT_TYPE},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200  # the burst token
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 429
        assert excinfo.value.headers.get("Retry-After") is not None
        (frame,) = wirebin.decode_response_frames(excinfo.value.read())
        assert frame.throttled is not None
        assert frame.throttled.reason == "rate-limited"

    def test_frame_larger_than_burst_is_typed_unsatisfiable(self, v2):
        """count > burst can never be granted — the caller must split."""
        server, api_key = v2
        server.callers.set_rate_limit("binary-op", 1.0, burst=2.0)
        requests = _auth_requests()  # 3 requests > 2-token capacity
        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            responses = client.submit_many(requests)
        assert all(isinstance(r, ThrottledResponse) for r in responses)
        assert responses[0].reason == "batch-exceeds-burst"
        # Splitting below the burst succeeds (after the advertised wait).
        assert responses[0].retry_after_s == pytest.approx(2.0)

    def test_binary_codec_requires_api_key_and_known_codec(self):
        with pytest.raises(ValueError, match="api_key"):
            ServiceClient(codec="binary")
        with pytest.raises(ValueError, match="codec"):
            ServiceClient(codec="msgpack")

    def test_mixed_batches_fall_back_to_json_transparently(self, v2):
        server, api_key = v2
        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            responses = client.submit_many(
                [
                    EnrollRequest(
                        user_id="mix", matrix=matrix("mix", 0.5, n=12, seed=5), train=False
                    ),
                    _auth_requests()[0],
                ]
            )
        assert isinstance(responses[0], EnrollResponse)
        assert isinstance(responses[1], AuthenticationResponse)


class TestBinaryStreaming:
    def test_streamed_upload_matches_submit_many(self, frontend, v2):
        server, api_key = v2
        requests = _auth_requests()
        local = frontend.submit_many(requests)
        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            streamed = client.submit_stream(iter(requests), chunk_windows=4)
        assert len(streamed) == len(requests)
        for reference, response in zip(local, streamed):
            np.testing.assert_array_equal(response.scores, reference.scores)
            np.testing.assert_array_equal(response.accepted, reference.accepted)

    def test_stream_cuts_frames_on_operation_change(self, v2):
        server, api_key = v2
        requests = [
            EnrollRequest(
                user_id="s1", matrix=matrix("s1", 0.0, n=12, seed=6), train=False
            ),
            _auth_requests()[0],
        ]
        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            responses = client.submit_stream(iter(requests), chunk_windows=1000)
        assert isinstance(responses[0], EnrollResponse)
        assert isinstance(responses[1], AuthenticationResponse)

    def test_server_dispatches_frames_before_the_upload_completes(self, v2):
        """Bounded server memory: frame 1 dispatches while frame 2 is unsent."""
        server, api_key = v2
        requests = _auth_requests()
        dispatched_early = []

        class Watching:
            def __iter__(self):
                # The frame holding request 0 is encoded and sent once
                # request 1 is pulled (the chunk boundary), so by the time
                # request 1 has been yielded the server holds a complete
                # frame while the upload is still in flight.
                for index, request in enumerate(requests):
                    yield request
                    if index == 1:
                        deadline = 100
                        while deadline:
                            if server.telemetry.counter_value(
                                "transport.binary_frames"
                            ) >= 1:
                                dispatched_early.append(True)
                                break
                            deadline -= 1
                            threading.Event().wait(0.02)

        with ServiceClient(port=server.port, api_key=api_key, codec="binary") as client:
            responses = client.submit_stream(Watching(), chunk_windows=4)
        assert len(responses) == len(requests)
        assert dispatched_early == [True]

    def test_stream_requires_binary_codec(self, v2):
        server, api_key = v2
        with ServiceClient(port=server.port, api_key=api_key) as client:
            with pytest.raises(ValueError, match="binary"):
                client.submit_stream(iter(_auth_requests()))


class TestConnectionPool:
    def test_pooled_client_serves_concurrent_submitters(self, frontend, v2):
        server, api_key = v2
        requests = _auth_requests()
        local = frontend.submit_many(requests)
        results = {}
        with ServiceClient(
            port=server.port, api_key=api_key, codec="binary", pool_size=4
        ) as client:
            def work(slot):
                results[slot] = client.submit_many(requests)

            threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(client._idle) >= 2  # the pool actually fanned out
        for slot in range(8):
            for reference, response in zip(local, results[slot]):
                np.testing.assert_array_equal(response.scores, reference.scores)

    def test_pool_size_validated(self):
        with pytest.raises(ValueError, match="pool_size"):
            ServiceClient(pool_size=0)


class TestChunkedBodyReader:
    def _read_all(self, reader):
        parts = []
        while True:
            chunk = reader.read(65536)
            if not chunk:
                return b"".join(parts)
            parts.append(chunk)

    def test_complete_chunked_body_decodes(self):
        import io

        from repro.service.transport import _ChunkedBodyReader

        body = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
        reader = _ChunkedBodyReader(io.BytesIO(body))
        assert self._read_all(reader) == b"hello world"

    def test_truncation_at_a_chunk_boundary_raises(self):
        """A stream missing its terminal 0-chunk is torn, not complete."""
        import io

        from repro.service.transport import _ChunkedBodyReader

        reader = _ChunkedBodyReader(io.BytesIO(b"5\r\nhello\r\n"))
        assert reader.read(65536) == b"hello"
        with pytest.raises(ValueError, match="terminal chunk"):
            reader.read(65536)

    def test_truncation_inside_a_chunk_raises(self):
        import io

        from repro.service.transport import _ChunkedBodyReader

        reader = _ChunkedBodyReader(io.BytesIO(b"ff\r\nshort"))
        with pytest.raises(ValueError, match="truncated chunk"):
            self._read_all(reader)


class TestStreamAbort:
    def test_tear_after_executed_frames_delivers_their_responses(self, v2):
        """A mid-stream tear must not lose responses of dispatched frames."""
        import http.client

        from repro.service import wirebin

        server, api_key = v2
        frame = wirebin.encode_request_frame(
            _auth_requests()[:1], api_key=api_key, frame_id="f-tear"
        )
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        connection.putrequest("POST", "/v2/requests")
        connection.putheader("Content-Type", wirebin.CONTENT_TYPE)
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        connection.send(f"{len(frame):X}\r\n".encode() + frame + b"\r\n")
        connection.sock.shutdown(1)  # die before the terminal chunk
        response = connection.getresponse()
        assert response.status == 200
        frames = wirebin.decode_response_frames(response.read())
        assert len(frames) == 2
        assert frames[0].frame_id == "f-tear"
        assert all(
            isinstance(r, AuthenticationResponse) for r in frames[0].to_responses()
        )
        assert frames[1].error is not None
        assert "aborted after 1 dispatched frame" in frames[1].error.message
        connection.close()

    def test_tear_before_any_frame_stays_a_typed_400(self, v2):
        import http.client

        from repro.service import wirebin

        server, _ = v2
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        connection.putrequest("POST", "/v2/requests")
        connection.putheader("Content-Type", wirebin.CONTENT_TYPE)
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        connection.send(b"4\r\nRBC1\r\n")  # a torn prelude, then death
        connection.sock.shutdown(1)
        response = connection.getresponse()
        assert response.status == 400
        payload = json.loads(response.read().decode("utf-8"))
        assert payload["kind"] == "error-response"
        connection.close()


class TestPoolDraining:
    def test_close_also_drops_connections_returned_by_inflight_calls(self):
        class FakeConnection:
            closed = False

            def close(self):
                self.closed = True

        client = ServiceClient(pool_size=2)
        inflight = FakeConnection()
        client.close()
        client._push_idle(inflight)  # an exchange returning after close()
        assert inflight.closed
        assert client._connection is None


# --------------------------------------------------------------------- #
# end-to-end request tracing
# --------------------------------------------------------------------- #


@pytest.fixture()
def traced(frontend):
    from repro.service.tracing import Tracer

    tracer = Tracer(sample_rate=1.0, telemetry=frontend.telemetry)
    queue = MicroBatchQueue(frontend, max_batch=32, max_delay_s=0.002)
    with ServiceHTTPServer(frontend, queue=queue, tracer=tracer) as server:
        api_key = server.callers.register("traced-op", ("data:write", "admin"))
        yield server, api_key, tracer


class TestTracing:
    STAGES = ("admission", "queue_wait", "fused_pass", "response_framing")

    def test_binary_batch_produces_per_request_traces(self, traced):
        server, api_key, tracer = traced
        requests = _auth_requests()
        with ServiceClient(
            port=server.port, api_key=api_key, codec="binary"
        ) as client:
            responses = client.submit_many(requests)
        assert all(isinstance(r, AuthenticationResponse) for r in responses)
        events = [e for e in tracer.events() if e["kind"] == "binary-frame"]
        assert len(events) == len(requests)
        assert [e["user_id"] for e in events] == ["alice"] * len(requests)
        assert [e["request_index"] for e in events] == list(range(len(requests)))
        for event in events:
            names = [span["name"] for span in event["spans"]]
            assert names == list(self.STAGES)
            span_sum = sum(span["duration_s"] for span in event["spans"])
            assert 0.0 <= span_sum <= event["total_s"]
            assert event["caller_id"] == "traced-op"
        fused = events[0]["spans"][2]
        assert fused["batch_size"] >= 1
        assert fused["flush_id"] >= 1
        assert "cache_hits" in fused and "cache_misses" in fused

    def test_single_v2_request_is_traced_through_the_queue(self, traced):
        server, api_key, tracer = traced
        with ServiceClient(port=server.port, api_key=api_key) as client:
            response = client.submit(_auth_requests()[0])
        assert isinstance(response, AuthenticationResponse)
        events = [e for e in tracer.events() if e["kind"] == "http"]
        assert len(events) == 1
        names = [span["name"] for span in events[0]["spans"]]
        assert names == list(self.STAGES)
        assert sum(s["duration_s"] for s in events[0]["spans"]) <= events[0]["total_s"]
        assert events[0]["user_id"] == "alice"

    def test_client_supplied_trace_id_is_adopted_and_echoed(self, traced):
        from repro.service.tracing import TRACE_HEADER

        server, api_key, tracer = traced
        body = json.dumps(
            {
                "kind": "envelope",
                "api_version": 2,
                "api_key": api_key,
                "request_id": "r-42",
                "request": {"kind": "snapshot"},
            }
        )
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v2/admin",
            data=body.encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                TRACE_HEADER: "trace-from-client",
            },
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            assert response.headers.get(TRACE_HEADER) == "trace-from-client"
            payload = json.loads(response.read().decode("utf-8"))
        assert payload.get("trace_id") == "trace-from-client"
        assert any(
            e["trace_id"] == "trace-from-client" for e in tracer.events()
        )

    def test_rejected_frame_trace_records_the_error(self, traced):
        from repro.service import wirebin

        server, _, tracer = traced
        body = wirebin.encode_request_frame(
            _auth_requests(), api_key="bogus-key", frame_id="f-denied"
        )
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v2/requests",
            data=body,
            headers={"Content-Type": wirebin.CONTENT_TYPE},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 401
        events = [e for e in tracer.events() if e["kind"] == "binary-frame"]
        assert len(events) == 1  # one event: admission rejected the frame
        assert events[0]["attrs"]["error"] == "unknown-api-key"

    def test_untraced_server_exports_nothing(self, frontend):
        with ServiceHTTPServer(frontend) as server:
            api_key = server.callers.register("plain-op", ("data:write",))
            with ServiceClient(
                port=server.port, api_key=api_key, codec="binary"
            ) as client:
                client.submit_many(_auth_requests())
            assert server.tracer is None
            assert server.telemetry.counter_value("trace.started") == 0

    def test_metrics_content_negotiation(self, traced):
        server, api_key, _ = traced
        with ServiceClient(port=server.port, api_key=api_key) as client:
            client.submit(_auth_requests()[0])
            snapshot = client.metrics()
            text = client.metrics_text()
        # JSON default: same shape as ever, no histogram keys leaked in.
        assert set(snapshot) == {"counters", "latencies", "callers"}
        # Prometheus: valid exposition with HELP/TYPE and trace counters.
        assert "# TYPE repro_transport_requests_total counter" in text
        assert "repro_trace_started_total" in text
        assert "# TYPE repro_frontend_authenticate_seconds histogram" in text

    def test_prometheus_content_type_over_the_wire(self, traced):
        from repro.service.telemetry import PROMETHEUS_CONTENT_TYPE

        server, _, _ = traced
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{METRICS_PATH}",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            assert response.headers.get("Content-Type") == PROMETHEUS_CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert body.endswith("\n")

    def test_json_metrics_stay_default_without_accept(self, traced):
        server, _, _ = traced
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}{METRICS_PATH}"
        ) as response:
            assert "application/json" in response.headers.get("Content-Type", "")
            payload = json.loads(response.read().decode("utf-8"))
        assert set(payload) == {"counters", "latencies", "callers"}
