"""Unit tests for the HTTP transport (server, client, status mapping)."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    RollbackRequest,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)
from repro.service.transport import (
    HEALTH_PATH,
    METRICS_PATH,
    REQUESTS_PATH,
    ServiceClient,
    ServiceHTTPServer,
    status_for_response,
)


def matrix(uid, mean, n=15, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def frontend():
    frontend = ServiceFrontend(AuthenticationGateway(min_windows_to_train=20))
    for uid, mean, seed in (("bg1", 4.0, 1), ("bg2", 6.0, 2), ("alice", 0.0, 3)):
        for context in ("stationary", "moving"):
            frontend.submit(
                EnrollRequest(
                    user_id=uid,
                    matrix=matrix(uid, mean, context=context, seed=seed),
                    train=False,
                )
            )
    frontend.gateway.train("alice")
    return frontend


@pytest.fixture()
def server(frontend):
    with ServiceHTTPServer(frontend) as server:
        yield server


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as client:
        yield client


def raw_post(server, body, path=REQUESTS_PATH):
    """POST raw bytes, returning (status, parsed JSON body)."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestStatusMapping:
    def test_success_is_200(self):
        assert status_for_response(SnapshotResponse(snapshot={})) == 200

    def test_missing_resource_is_404(self):
        error = ErrorResponse(request_kind="authenticate", error="KeyError", message="x")
        assert status_for_response(error) == 404

    def test_validation_failures_are_400(self):
        for name in ("ValueError", "TypeError", "JSONDecodeError"):
            error = ErrorResponse(request_kind="enroll", error=name, message="x")
            assert status_for_response(error) == 400

    def test_unexpected_errors_are_500(self):
        error = ErrorResponse(request_kind="drift-report", error="RuntimeError", message="x")
        assert status_for_response(error) == 500

    def test_throttled_is_429(self):
        throttled = ThrottledResponse(
            request_kind="authenticate", reason="queue-full", queue_depth=1, max_depth=1
        )
        assert status_for_response(throttled) == 429


class TestEndpoints:
    def test_healthz_reports_ok(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0

    def test_metrics_serves_the_telemetry_snapshot(self, client):
        client.submit(SnapshotRequest())
        snapshot = client.metrics()
        assert "counters" in snapshot and "latencies" in snapshot
        assert snapshot["counters"]["transport.requests"] >= 1

    def test_unknown_paths_answer_404(self, server):
        status, payload = raw_post(server, "{}", path="/v2/nothing")
        assert status == 404
        assert payload["kind"] == "error-response"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/nope")
        assert excinfo.value.code == 404

    def test_malformed_json_answers_400(self, server):
        status, payload = raw_post(server, "{this is not json")
        assert status == 400
        assert payload["kind"] == "error-response"
        assert payload["error"] == "JSONDecodeError"

    def test_non_request_json_answers_400(self, server):
        status, payload = raw_post(server, '"just a string"')
        assert status == 400
        assert payload["error"] == "TypeError"
        status, payload = raw_post(server, '{"kind": "teleport"}')
        assert status == 400
        assert payload["error"] == "ValueError"

    def test_missing_required_field_answers_400(self, server):
        status, payload = raw_post(server, '{"kind": "authenticate"}')
        assert status == 400
        assert payload["error"] == "ValueError"
        assert "missing required field" in payload["message"]
        assert payload["request_kind"] == "authenticate"


class TestSingleRequests:
    def test_authenticate_round_trips_bit_for_bit(self, frontend, client):
        own = matrix("alice", 0.0, n=4, seed=9)
        response = client.submit(
            AuthenticateRequest(
                user_id="alice",
                features=own.values,
                contexts=(CoarseContext.STATIONARY,) * 4,
            )
        )
        assert isinstance(response, AuthenticationResponse)
        expected = frontend.gateway.scorer_for("alice").score(
            own.values, [CoarseContext.STATIONARY] * 4
        )
        np.testing.assert_array_equal(response.scores, expected.scores)
        np.testing.assert_array_equal(response.accepted, expected.accepted)
        assert response.result.model_contexts == expected.model_contexts

    def test_unknown_user_maps_to_404_with_typed_error(self, server, client):
        response = client.submit(
            AuthenticateRequest(
                user_id="ghost",
                features=np.zeros((1, 5)),
                contexts=(CoarseContext.STATIONARY,),
            )
        )
        assert isinstance(response, ErrorResponse)
        assert response.error == "KeyError"
        # And the raw HTTP exchange used the mapped status code.
        status, _ = raw_post(
            server,
            json.dumps(
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                }
            ),
        )
        assert status == 404

    def test_enroll_then_authenticate_over_the_wire(self, client):
        response = client.submit(
            EnrollRequest(user_id="dora", matrix=matrix("dora", 2.0, seed=11), train=False)
        )
        assert isinstance(response, EnrollResponse)
        assert response.status == "buffered"


class TestBatchRequests:
    def test_batch_preserves_order_and_isolates_failures(self, client):
        own = matrix("alice", 0.0, n=3, seed=12)
        responses = client.submit_many(
            [
                SnapshotRequest(),
                AuthenticateRequest(
                    user_id="alice",
                    features=own.values,
                    contexts=(CoarseContext.STATIONARY,) * 3,
                ),
                RollbackRequest(user_id="ghost"),
            ]
        )
        assert isinstance(responses[0], SnapshotResponse)
        assert isinstance(responses[1], AuthenticationResponse)
        assert isinstance(responses[2], ErrorResponse)

    def test_batch_with_malformed_item_answers_per_item(self, server):
        body = json.dumps(
            [
                {"kind": "snapshot"},
                {"kind": "teleport"},
                "not even an object",
                {
                    "kind": "authenticate",
                    "user_id": "ghost",
                    "features": [[0.0] * 5],
                    "contexts": ["stationary"],
                },
            ]
        )
        status, payload = raw_post(server, body)
        assert status == 200  # batch: per-item outcomes, not a single status
        kinds = [item["kind"] for item in payload]
        assert kinds == [
            "snapshot-response",
            "error-response",
            "error-response",
            "error-response",
        ]
        assert payload[1]["error"] == "ValueError"
        assert payload[2]["error"] == "TypeError"
        assert payload[3]["error"] == "KeyError"

    def test_empty_batch_answers_empty_array(self, server, client):
        assert client.submit_many([]) == []
        status, payload = raw_post(server, "[]")
        assert status == 200
        assert payload == []

    def test_oversized_batch_is_throttled_not_dispatched(self, frontend):
        with ServiceHTTPServer(frontend, max_batch_items=3) as server:
            requests_before = frontend.telemetry.counter_value("frontend.requests")
            body = json.dumps([{"kind": "snapshot"}] * 4)
            status, payload = raw_post(server, body)
            assert status == 429
            assert payload["kind"] == "throttled-response"
            assert payload["reason"] == "batch-too-large"
            assert payload["queue_depth"] == 4
            assert payload["max_depth"] == 3
            # Nothing reached the frontend; a within-bound batch still works.
            assert frontend.telemetry.counter_value("frontend.requests") == requests_before
            status, payload = raw_post(server, json.dumps([{"kind": "snapshot"}] * 3))
            assert status == 200
            assert len(payload) == 3

    def test_rejects_degenerate_batch_bound(self, frontend):
        with pytest.raises(ValueError, match="max_batch_items"):
            ServiceHTTPServer(frontend, max_batch_items=0)


class TestThrottlingOverTheWire:
    def test_queue_full_answers_429_with_retry_after(self, frontend):
        entered, release = threading.Event(), threading.Event()
        original = frontend.gateway.handle

        def slow_handle(request):
            entered.set()
            assert release.wait(timeout=10)
            return original(request)

        frontend.gateway.handle = slow_handle
        queue = MicroBatchQueue(
            frontend, max_batch=1, max_delay_s=0.0, max_depth=1, overflow="reject"
        )
        with ServiceHTTPServer(frontend, queue=queue) as server:
            results = {}

            def post(name):
                with ServiceClient(port=server.port) as client:
                    results[name] = client.submit(SnapshotRequest())

            first = threading.Thread(target=post, args=("first",))
            first.start()
            assert entered.wait(timeout=5)  # worker is stuck dispatching
            second = threading.Thread(target=post, args=("second",))
            second.start()
            deadline = threading.Event()
            for _ in range(100):  # wait until the slot is actually occupied
                if queue.depth == 1:
                    break
                deadline.wait(0.01)
            assert queue.depth == 1
            # The third concurrent request finds the queue full: typed 429.
            body = '{"kind": "snapshot"}'
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}{REQUESTS_PATH}",
                data=body.encode("utf-8"),
                method="POST",
            )
            try:
                with urllib.request.urlopen(request) as response:
                    raise AssertionError(f"expected 429, got {response.status}")
            except urllib.error.HTTPError as error:
                assert error.code == 429
                assert error.headers["Retry-After"] is not None
                payload = json.loads(error.read().decode("utf-8"))
            assert payload["kind"] == "throttled-response"
            assert payload["reason"] == "queue-full"
            assert payload["max_depth"] == 1
            release.set()
            first.join(timeout=10)
            second.join(timeout=10)
            assert isinstance(results["first"], SnapshotResponse)
            assert isinstance(results["second"], SnapshotResponse)


class TestClientConnection:
    def test_connection_is_reused_across_calls(self, server, client):
        client.health()
        connection = client._connection
        assert connection is not None
        client.submit(SnapshotRequest())
        assert client._connection is connection

    def test_client_reconnects_after_a_drop(self, server, client):
        assert client.health()["status"] == "ok"
        client._connection.close()  # simulate the server dropping keep-alive
        assert client.health()["status"] == "ok"

    def test_unreachable_server_raises_connection_error(self):
        with ServiceClient(port=1, timeout_s=0.2) as client:
            with pytest.raises(ConnectionError):
                client.submit(SnapshotRequest())
