"""Unit tests for windowing, time/frequency features and vector assembly."""

import numpy as np
import pytest

from repro.features.frequency_domain import frequency_domain_features, power_spectrum
from repro.features.time_domain import time_domain_features
from repro.features.vector import (
    FeatureMatrix,
    FeatureVectorSpec,
    extract_authentication_matrix,
    extract_device_vector,
    feature_names,
    stack_matrices,
)
from repro.features.windowing import segment_recording, segment_stream
from repro.sensors.types import DeviceType, SensorType


class TestWindowing:
    def test_six_second_windows(self, moving_recording):
        windows = segment_stream(moving_recording[SensorType.ACCELEROMETER], 6.0)
        assert len(windows) == 5
        assert all(len(window) == 300 for window in windows)

    def test_overlap_increases_window_count(self, moving_recording):
        stream = moving_recording[SensorType.ACCELEROMETER]
        assert len(segment_stream(stream, 6.0, overlap=0.5)) > len(segment_stream(stream, 6.0))

    def test_invalid_overlap_rejected(self, moving_recording):
        with pytest.raises(ValueError):
            segment_stream(moving_recording[SensorType.ACCELEROMETER], 6.0, overlap=1.0)

    def test_segment_recording_aligns_sensors(self, moving_recording):
        aligned = segment_recording(moving_recording, 6.0, sensors=(SensorType.ACCELEROMETER, SensorType.GYROSCOPE))
        assert len(aligned) == 5
        for entry in aligned:
            assert entry[SensorType.ACCELEROMETER].start_time == entry[SensorType.GYROSCOPE].start_time


class TestTimeDomain:
    def test_known_statistics(self):
        signal = np.array([1.0, 2.0, 3.0, 4.0])
        features = time_domain_features(signal, features=("mean", "var", "max", "min", "range"))
        assert features["mean"] == pytest.approx(2.5)
        assert features["var"] == pytest.approx(1.25)
        assert features["max"] == 4.0 and features["min"] == 1.0 and features["range"] == 3.0

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            time_domain_features(np.ones(10), features=("median",))


class TestFrequencyDomain:
    def test_peak_frequency_of_pure_tone(self):
        rate = 50.0
        t = np.arange(0, 10, 1.0 / rate)
        signal = 5.0 + 2.0 * np.sin(2.0 * np.pi * 2.0 * t)
        features = frequency_domain_features(signal, rate)
        assert features["peak_f"] == pytest.approx(2.0, abs=0.2)
        assert features["peak"] > 0.5

    def test_second_peak_found_outside_exclusion_zone(self):
        rate = 50.0
        t = np.arange(0, 20, 1.0 / rate)
        signal = np.sin(2.0 * np.pi * 2.0 * t) + 0.5 * np.sin(2.0 * np.pi * 5.0 * t)
        features = frequency_domain_features(signal, rate, features=("peak_f", "peak2_f", "peak2"))
        assert features["peak_f"] == pytest.approx(2.0, abs=0.2)
        assert features["peak2_f"] == pytest.approx(5.0, abs=0.3)

    def test_dc_component_ignored(self):
        signal = np.full(300, 9.81)
        features = frequency_domain_features(signal, 50.0)
        assert features["peak"] == pytest.approx(0.0, abs=1e-9)

    def test_power_spectrum_shapes(self):
        frequencies, amplitudes = power_spectrum(np.random.default_rng(0).normal(size=300), 50.0)
        assert len(frequencies) == len(amplitudes) == 151
        assert frequencies[-1] == pytest.approx(25.0)


class TestFeatureVectorSpec:
    def test_paper_dimensions(self):
        assert FeatureVectorSpec().dimension == 28
        assert FeatureVectorSpec().phone_only().dimension == 14

    def test_feature_names_are_qualified(self):
        names = feature_names()
        assert len(names) == 28
        assert names[0] == "smartphone.accelerometer.mean"
        assert names[-1] == "smartwatch.gyroscope.peak2"


class TestExtraction:
    def test_device_vector_shape(self, moving_recording):
        matrix = extract_device_vector(moving_recording, 6.0)
        assert matrix.values.shape == (5, 14)
        assert matrix.user_ids == ["alice"] * 5
        assert set(matrix.contexts) == {"moving"}

    def test_authentication_matrix_combines_devices(self, free_form_dataset):
        session = free_form_dataset.sessions[0]
        matrix = extract_authentication_matrix(session.recordings, 6.0)
        assert matrix.values.shape[1] == 28

    def test_missing_device_rejected(self, moving_recording):
        with pytest.raises(KeyError, match="smartwatch"):
            extract_authentication_matrix({DeviceType.SMARTPHONE: moving_recording}, 6.0)


class TestFeatureMatrix:
    def test_column_lookup(self):
        matrix = FeatureMatrix(values=np.arange(6.0).reshape(2, 3), feature_names=["a", "b", "c"])
        np.testing.assert_array_equal(matrix.column("b"), [1.0, 4.0])
        with pytest.raises(KeyError):
            matrix.column("missing")

    def test_concatenate_checks_columns(self):
        a = FeatureMatrix(values=np.ones((2, 2)), feature_names=["a", "b"])
        b = FeatureMatrix(values=np.zeros((1, 2)), feature_names=["a", "b"])
        assert len(a.concatenate(b)) == 3
        c = FeatureMatrix(values=np.zeros((1, 2)), feature_names=["x", "y"])
        with pytest.raises(ValueError):
            a.concatenate(c)

    def test_rows_for_user(self):
        matrix = FeatureMatrix(
            values=np.arange(4.0).reshape(2, 2),
            feature_names=["a", "b"],
            user_ids=["u1", "u2"],
            contexts=["moving", "moving"],
        )
        np.testing.assert_array_equal(matrix.rows_for_user("u2"), [[2.0, 3.0]])

    def test_stack_matrices_requires_input(self):
        with pytest.raises(ValueError):
            stack_matrices([])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="columns"):
            FeatureMatrix(values=np.ones((2, 3)), feature_names=["a", "b"])
