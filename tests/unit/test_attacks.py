"""Unit tests for attacker models and detection-time evaluation."""

import pytest

from repro.attacks.attackers import MimicryAttacker, ZeroEffortAttacker
from repro.attacks.evaluation import (
    DetectionTimeline,
    escape_probability,
    evaluate_detection_time,
    time_to_detect_all,
)
from repro.sensors.types import Context, DeviceType


class TestAttackers:
    def test_zero_effort_attack_uses_attacker_behaviour(self, second_profile):
        attacker = ZeroEffortAttacker(second_profile, seed=1)
        attack = attacker.attack("victim", Context.MOVING, duration=12.0)
        assert attack.attacker_id == "bob" and attack.victim_id == "victim"
        assert attack.fidelity == 0.0
        assert attack.session.user_id == "bob"

    def test_mimicry_attack_session_carries_attacker_identity(self, profile, second_profile):
        attacker = MimicryAttacker(second_profile, fidelity=0.7, seed=2)
        attack = attacker.attack(profile, Context.HANDHELD_STATIC, duration=12.0)
        assert attack.session.user_id == "bob"
        assert attack.victim_id == "alice"
        assert attack.fidelity == 0.7

    def test_mimicry_effective_profile_moves_toward_victim(self, profile, second_profile):
        attacker = MimicryAttacker(second_profile, fidelity=1.0, seed=3)
        imitated = attacker.effective_profile(profile)
        assert imitated.gait.frequency_hz == pytest.approx(profile.gait.frequency_hz)

    def test_invalid_fidelity_rejected(self, second_profile):
        with pytest.raises(ValueError):
            MimicryAttacker(second_profile, fidelity=2.0)

    def test_attack_records_both_devices_by_default(self, profile, second_profile):
        attack = MimicryAttacker(second_profile, seed=4).attack(profile, Context.MOVING, 12.0)
        assert set(attack.session.recordings) == {DeviceType.SMARTPHONE, DeviceType.SMARTWATCH}


class FakeAuthenticator:
    """Accepts a scripted sequence of decisions per session."""

    def __init__(self, scripts):
        self.scripts = list(scripts)
        self.calls = 0

    def authenticate_session(self, session, window_seconds=None):
        decisions = self.scripts[self.calls]
        self.calls += 1
        return decisions


def make_attack(profile, second_profile, seed):
    return MimicryAttacker(second_profile, seed=seed).attack(profile, Context.MOVING, 30.0)


class TestDetectionEvaluation:
    def test_detection_windows_recorded(self, profile, second_profile):
        attacks = [make_attack(profile, second_profile, seed) for seed in (1, 2, 3)]
        authenticator = FakeAuthenticator(
            [[True, False, False], [False, True, True], [True, True, True]]
        )
        timeline = evaluate_detection_time(authenticator, attacks, window_seconds=6.0)
        assert timeline.detection_windows == [1, 0, None]
        assert timeline.detection_times_s() == [12.0, 6.0, None]

    def test_survival_curve_monotone_decreasing(self, profile, second_profile):
        attacks = [make_attack(profile, second_profile, seed) for seed in (1, 2)]
        authenticator = FakeAuthenticator([[True, False], [False, False]])
        timeline = evaluate_detection_time(authenticator, attacks, window_seconds=6.0)
        _, fractions = timeline.survival_curve(horizon_s=18.0)
        assert fractions[0] == 1.0
        assert all(later <= earlier for earlier, later in zip(fractions, fractions[1:]))

    def test_fraction_detected_within(self):
        timeline = DetectionTimeline(window_seconds=6.0, detection_windows=[0, 2, None], n_windows=[5, 5, 5])
        assert timeline.fraction_detected_within(6.0) == pytest.approx(1 / 3)
        assert timeline.fraction_detected_within(30.0) == pytest.approx(2 / 3)

    def test_time_to_detect_all(self):
        detected = DetectionTimeline(6.0, [0, 1], [3, 3])
        undetected = DetectionTimeline(6.0, [0, None], [3, 3])
        assert time_to_detect_all(detected) == 12.0
        assert time_to_detect_all(undetected) is None

    def test_requires_attacks(self):
        with pytest.raises(ValueError):
            evaluate_detection_time(FakeAuthenticator([]), [], window_seconds=6.0)


class TestEscapeProbability:
    def test_paper_example(self):
        assert escape_probability(0.028, 3) == pytest.approx(2.2e-5, rel=0.05)

    def test_zero_windows_is_certain_escape(self):
        assert escape_probability(0.028, 0) == 1.0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            escape_probability(1.2, 2)
        with pytest.raises(ValueError):
            escape_probability(0.1, -1)
