"""Unit tests for attacker models, detection-time evaluation, and the
fleet-scale adversaries that attack the serving path."""

import numpy as np
import pytest

from repro.attacks.attackers import MimicryAttacker, ZeroEffortAttacker
from repro.attacks.evaluation import (
    DetectionTimeline,
    escape_probability,
    evaluate_detection_time,
    time_to_detect_all,
)
from repro.attacks.fleet import (
    AttackFleet,
    AttackFleetConfig,
    ReplayAttacker,
    StolenDeviceAttacker,
    attack_request,
    mimic_user,
)
from repro.sensors.types import Context, DeviceType
from repro.service.envelope import EnvelopeChannel
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.utils.rng import derive_rng


class TestAttackers:
    def test_zero_effort_attack_uses_attacker_behaviour(self, second_profile):
        attacker = ZeroEffortAttacker(second_profile, seed=1)
        attack = attacker.attack("victim", Context.MOVING, duration=12.0)
        assert attack.attacker_id == "bob" and attack.victim_id == "victim"
        assert attack.fidelity == 0.0
        assert attack.session.user_id == "bob"

    def test_mimicry_attack_session_carries_attacker_identity(self, profile, second_profile):
        attacker = MimicryAttacker(second_profile, fidelity=0.7, seed=2)
        attack = attacker.attack(profile, Context.HANDHELD_STATIC, duration=12.0)
        assert attack.session.user_id == "bob"
        assert attack.victim_id == "alice"
        assert attack.fidelity == 0.7

    def test_mimicry_effective_profile_moves_toward_victim(self, profile, second_profile):
        attacker = MimicryAttacker(second_profile, fidelity=1.0, seed=3)
        imitated = attacker.effective_profile(profile)
        assert imitated.gait.frequency_hz == pytest.approx(profile.gait.frequency_hz)

    def test_invalid_fidelity_rejected(self, second_profile):
        with pytest.raises(ValueError):
            MimicryAttacker(second_profile, fidelity=2.0)

    def test_attack_records_both_devices_by_default(self, profile, second_profile):
        attack = MimicryAttacker(second_profile, seed=4).attack(profile, Context.MOVING, 12.0)
        assert set(attack.session.recordings) == {DeviceType.SMARTPHONE, DeviceType.SMARTWATCH}


class FakeAuthenticator:
    """Accepts a scripted sequence of decisions per session."""

    def __init__(self, scripts):
        self.scripts = list(scripts)
        self.calls = 0

    def authenticate_session(self, session, window_seconds=None):
        decisions = self.scripts[self.calls]
        self.calls += 1
        return decisions


def make_attack(profile, second_profile, seed):
    return MimicryAttacker(second_profile, seed=seed).attack(profile, Context.MOVING, 30.0)


class TestDetectionEvaluation:
    def test_detection_windows_recorded(self, profile, second_profile):
        attacks = [make_attack(profile, second_profile, seed) for seed in (1, 2, 3)]
        authenticator = FakeAuthenticator(
            [[True, False, False], [False, True, True], [True, True, True]]
        )
        timeline = evaluate_detection_time(authenticator, attacks, window_seconds=6.0)
        assert timeline.detection_windows == [1, 0, None]
        assert timeline.detection_times_s() == [12.0, 6.0, None]

    def test_survival_curve_monotone_decreasing(self, profile, second_profile):
        attacks = [make_attack(profile, second_profile, seed) for seed in (1, 2)]
        authenticator = FakeAuthenticator([[True, False], [False, False]])
        timeline = evaluate_detection_time(authenticator, attacks, window_seconds=6.0)
        _, fractions = timeline.survival_curve(horizon_s=18.0)
        assert fractions[0] == 1.0
        assert all(later <= earlier for earlier, later in zip(fractions, fractions[1:]))

    def test_fraction_detected_within(self):
        timeline = DetectionTimeline(window_seconds=6.0, detection_windows=[0, 2, None], n_windows=[5, 5, 5])
        assert timeline.fraction_detected_within(6.0) == pytest.approx(1 / 3)
        assert timeline.fraction_detected_within(30.0) == pytest.approx(2 / 3)

    def test_time_to_detect_all(self):
        detected = DetectionTimeline(6.0, [0, 1], [3, 3])
        undetected = DetectionTimeline(6.0, [0, None], [3, 3])
        assert time_to_detect_all(detected) == 12.0
        assert time_to_detect_all(undetected) is None

    def test_requires_attacks(self):
        with pytest.raises(ValueError):
            evaluate_detection_time(FakeAuthenticator([]), [], window_seconds=6.0)


class TestEscapeProbability:
    def test_paper_example(self):
        assert escape_probability(0.028, 3) == pytest.approx(2.2e-5, rel=0.05)

    def test_zero_windows_is_certain_escape(self):
        assert escape_probability(0.028, 0) == 1.0

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            escape_probability(1.2, 2)
        with pytest.raises(ValueError):
            escape_probability(0.1, -1)


# --------------------------------------------------------------------- #
# fleet-scale adversaries (the serving path)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def small_fleet():
    """A small enrolled fleet shared by every fleet-attack test."""
    fleet = FleetSimulator(FleetConfig(n_users=6, seed=11))
    fleet.build_users()
    fleet.enroll_fleet()
    return fleet


def _channel(fleet):
    return EnvelopeChannel(fleet.processor, fleet.api_key)


def _accept_count(fleet, request):
    response = _channel(fleet).submit(request)
    return int(np.count_nonzero(np.asarray(response.accepted, dtype=bool)))


@pytest.mark.attack
class TestReplayAttacker:
    def test_replay_of_captured_request_is_flagged(self, small_fleet):
        victim = small_fleet.users[0]
        attacker = ReplayAttacker()
        attack = attacker.capture(
            victim, 3, small_fleet.config.window_noise,
            small_fleet.feature_names, derive_rng(7, "replay"),
        )
        channel = _channel(small_fleet)
        first = channel.submit_sealed(attack.request, idempotency_key="cap-1")
        replay = channel.submit_sealed(attack.request, idempotency_key="cap-1")
        # The windows are genuine, so the models accept them — the
        # envelope layer is what flags the resubmission.
        assert not first.replayed
        assert replay.replayed
        assert np.array_equal(replay.response.accepted, first.response.accepted)

    def test_wire_frame_requires_a_capture(self):
        with pytest.raises(RuntimeError):
            ReplayAttacker().wire_frame("some-key")

    def test_wire_frame_round_trips_the_captured_request(self, small_fleet):
        from repro.service import wirebin

        victim = small_fleet.users[1]
        attacker = ReplayAttacker()
        attack = attacker.capture(
            victim, 2, small_fleet.config.window_noise,
            small_fleet.feature_names, derive_rng(7, "wire"),
        )
        frame = attacker.wire_frame("frame-key")
        decoded = wirebin.decode_request_frame(frame)
        assert decoded.api_key == "frame-key"
        assert decoded.user_ids == (attack.victim_id,)
        assert np.allclose(
            decoded.features.reshape(attack.request.features.shape),
            attack.request.features,
        )


@pytest.mark.attack
class TestStolenDeviceAttacker:
    def test_stolen_device_windows_score_below_the_victims(self, small_fleet):
        victim = small_fleet.users[0]
        thief = StolenDeviceAttacker(small_fleet.users[1])
        attack = thief.craft(
            victim.user_id, 4, small_fleet.config.window_noise,
            small_fleet.feature_names, derive_rng(7, "stolen"),
        )
        genuine = attack_request(
            victim, victim.user_id, 4, small_fleet.config.window_noise,
            small_fleet.feature_names, derive_rng(7, "genuine"),
        )
        channel = _channel(small_fleet)
        stolen_scores = np.asarray(channel.submit(attack.request).scores)
        victim_scores = np.asarray(channel.submit(genuine).scores)
        assert attack.attacker_id == small_fleet.users[1].user_id
        assert attack.victim_id == victim.user_id
        assert float(stolen_scores.mean()) < float(victim_scores.mean())
        # Below threshold: the thief's windows are rejected outright.
        assert _accept_count(small_fleet, attack.request) == 0


@pytest.mark.attack
class TestMimicry:
    def test_mimicry_effectiveness_monotone_in_strength(self, small_fleet):
        source, victim = small_fleet.users[2], small_fleet.users[0]
        accepted = []
        for strength in (0.0, 0.5, 1.0):
            mimic = mimic_user(source, victim, strength)
            # Identical rng per strength → identical noise draws, so the
            # crafted windows move linearly toward the victim's cluster.
            request = attack_request(
                mimic, victim.user_id, 4, small_fleet.config.window_noise,
                small_fleet.feature_names, derive_rng(7, "mimic"),
            )
            accepted.append(_accept_count(small_fleet, request))
        assert accepted == sorted(accepted)
        assert accepted[-1] > accepted[0]

    def test_mimic_strength_validated(self, small_fleet):
        with pytest.raises(ValueError):
            mimic_user(small_fleet.users[0], small_fleet.users[1], 1.5)

    def test_mimic_blends_context_means(self, small_fleet):
        source, victim = small_fleet.users[3], small_fleet.users[0]
        halfway = mimic_user(source, victim, 0.5, mimic_id="imp")
        assert halfway.user_id == "imp"
        for context, mean in halfway.context_means.items():
            expected = 0.5 * (
                source.context_means[context] + victim.context_means[context]
            )
            assert np.allclose(mean, expected)


@pytest.mark.attack
class TestAttackFleet:
    def test_campaign_report_covers_every_attacker(self, small_fleet):
        config = AttackFleetConfig(n_attackers=2, seed=101)
        report = AttackFleet(small_fleet, config).run(run_id="unit")
        assert report.campaigns() == AttackFleet.CAMPAIGNS
        assert len(report.attackers) == 2 * len(AttackFleet.CAMPAIGNS)
        for entry in report.for_campaign("replay"):
            assert entry.replays_sent == config.n_replays
            assert entry.replays_flagged == config.n_replays
        # The timeline plugs straight into the paper's detection metrics.
        timeline = report.timeline("stolen-device")
        assert timeline.window_seconds == config.window_seconds
        assert len(timeline.detection_windows) == 2
        assert "stolen-device" in report.to_text()

    def test_hostile_traffic_attributed_per_caller(self, small_fleet):
        fleet_requests = small_fleet.callers.snapshot()["fleet-operator"]["requests"]
        config = AttackFleetConfig(n_attackers=2, seed=303)
        AttackFleet(small_fleet, config).run(run_id="attrib")
        snapshot = small_fleet.callers.snapshot()
        for campaign in AttackFleet.CAMPAIGNS:
            for index in range(config.n_attackers):
                caller = AttackFleet.caller_id(campaign, index)
                assert snapshot[caller]["requests"] > 0
        # None of the hostile traffic leaked onto the operator's counters.
        assert snapshot["fleet-operator"]["requests"] == fleet_requests

    def test_reports_are_deterministic(self, small_fleet):
        config = AttackFleetConfig(n_attackers=2, seed=202)
        harness = AttackFleet(small_fleet, config)
        first = harness.run(run_id="det-a")
        second = harness.run(run_id="det-b")
        assert first == second

    def test_unenrolled_fleet_rejected(self):
        fleet = FleetSimulator(FleetConfig(n_users=2, seed=5))
        with pytest.raises(RuntimeError):
            AttackFleet(fleet).run()

    def test_config_validated(self):
        with pytest.raises(ValueError):
            AttackFleetConfig(n_attackers=0)
        with pytest.raises(ValueError):
            AttackFleetConfig(mimicry_strength=1.5)
        with pytest.raises(ValueError):
            AttackFleetConfig(n_replays=0)
