"""Unit tests for the core components: config, context, response, retraining."""

import numpy as np
import pytest

from repro.core.authenticator import AuthenticationDecision
from repro.core.config import SmarterYouConfig
from repro.core.context import ContextDetector
from repro.core.response import DeviceState, ResponseAction, ResponseModule
from repro.core.retraining import ConfidenceScoreMonitor
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext, DeviceType


class TestConfig:
    def test_paper_defaults(self):
        config = SmarterYouConfig()
        assert config.window_seconds == 6.0
        assert config.target_enrollment_windows == 800
        assert config.confidence_threshold == 0.2
        assert config.feature_spec.dimension == 28
        assert config.phone_feature_spec.dimension == 14

    def test_with_devices_and_without_context(self):
        config = SmarterYouConfig().with_devices((DeviceType.SMARTPHONE,))
        assert config.feature_spec.dimension == 14
        assert SmarterYouConfig().without_context().use_context is False

    def test_validation(self):
        with pytest.raises(ValueError):
            SmarterYouConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            SmarterYouConfig(target_enrollment_windows=5)
        with pytest.raises(ValueError):
            SmarterYouConfig(devices=())


def context_matrix(n_per_context=40, n_features=14, seed=0):
    rng = np.random.default_rng(seed)
    stationary = rng.normal(0.0, 1.0, size=(n_per_context, n_features))
    moving = rng.normal(4.0, 1.5, size=(n_per_context, n_features))
    return FeatureMatrix(
        values=np.vstack([stationary, moving]),
        feature_names=[f"f{i}" for i in range(n_features)],
        user_ids=["u1"] * (n_per_context // 2)
        + ["u2"] * (n_per_context // 2)
        + ["u1"] * (n_per_context // 2)
        + ["u2"] * (n_per_context // 2),
        contexts=["stationary"] * n_per_context + ["moving"] * n_per_context,
    )


class TestContextDetector:
    def test_detects_both_contexts(self):
        matrix = context_matrix()
        detector = ContextDetector().fit(matrix)
        report = detector.evaluate(matrix)
        assert report.accuracy > 0.95
        assert report.as_table()["stationary"]["stationary"] > 90.0

    def test_single_window_detection(self):
        matrix = context_matrix()
        detector = ContextDetector().fit(matrix)
        assert detector.detect_one(matrix.values[0]) in tuple(CoarseContext)

    def test_requires_labels(self):
        unlabeled = FeatureMatrix(values=np.ones((4, 2)), feature_names=["a", "b"])
        with pytest.raises(ValueError, match="context labels"):
            ContextDetector().fit(unlabeled)

    def test_exclude_user_is_user_agnostic(self):
        matrix = context_matrix()
        detector = ContextDetector().fit(matrix, exclude_user="u1")
        predictions = detector.detect(matrix.values)
        assert len(predictions) == len(matrix)

    def test_unfitted_detector_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ContextDetector().detect(np.ones((1, 14)))


def decision(accepted, score=0.5):
    return AuthenticationDecision(
        accepted=accepted, confidence_score=score, context=CoarseContext.STATIONARY
    )


class TestResponseModule:
    def test_accept_keeps_device_unlocked(self):
        response = ResponseModule(lockout_consecutive_rejections=2)
        assert response.handle(decision(True)) is ResponseAction.ALLOW
        assert response.state is DeviceState.UNLOCKED
        assert response.sensitive_data_accessible

    def test_single_rejection_restricts_sensitive_data(self):
        response = ResponseModule(lockout_consecutive_rejections=2)
        assert response.handle(decision(False)) is ResponseAction.RESTRICT_SENSITIVE
        assert response.state is DeviceState.RESTRICTED
        assert not response.sensitive_data_accessible

    def test_consecutive_rejections_lock_device(self):
        response = ResponseModule(lockout_consecutive_rejections=2)
        response.handle(decision(False))
        assert response.handle(decision(False)) is ResponseAction.LOCK_DEVICE
        assert response.state is DeviceState.LOCKED
        # Once locked, further windows require explicit authentication.
        assert response.handle(decision(True)) is ResponseAction.REQUIRE_EXPLICIT_AUTH

    def test_acceptance_resets_rejection_counter(self):
        response = ResponseModule(lockout_consecutive_rejections=2)
        response.handle(decision(False))
        response.handle(decision(True))
        assert response.handle(decision(False)) is ResponseAction.RESTRICT_SENSITIVE

    def test_explicit_reauthentication(self):
        response = ResponseModule(lockout_consecutive_rejections=1)
        response.handle(decision(False))
        assert response.state is DeviceState.LOCKED
        assert response.explicit_reauthentication(False) is DeviceState.LOCKED
        assert response.explicit_reauthentication(True) is DeviceState.UNLOCKED

    def test_audit_log_and_reset(self):
        response = ResponseModule()
        response.handle(decision(True))
        response.handle(decision(False))
        assert len(response.events) == 2
        response.reset()
        assert not response.events and response.state is DeviceState.UNLOCKED


class TestConfidenceScoreMonitor:
    def test_healthy_scores_do_not_trigger(self):
        monitor = ConfidenceScoreMonitor(threshold=0.2, required_days_below=1.0)
        for day in np.linspace(0.0, 5.0, 50):
            result = monitor.observe(day, 0.8)
        assert not result.should_retrain

    def test_sustained_low_scores_trigger(self):
        monitor = ConfidenceScoreMonitor(threshold=0.2, required_days_below=1.0, smoothing_window=5)
        result = None
        for day in np.linspace(0.0, 3.0, 60):
            result = monitor.observe(day, 0.05)
        assert result.should_retrain
        assert result.days_below_threshold >= 1.0

    def test_brief_dip_does_not_trigger(self):
        monitor = ConfidenceScoreMonitor(threshold=0.2, required_days_below=2.0, smoothing_window=3)
        monitor.observe(0.0, 0.05)
        monitor.observe(0.1, 0.05)
        result = monitor.observe(0.5, 0.9)
        assert not result.should_retrain

    def test_mark_retrained_resets_state(self):
        monitor = ConfidenceScoreMonitor(threshold=0.2, required_days_below=0.5, smoothing_window=2)
        for day in np.linspace(0.0, 2.0, 20):
            monitor.observe(day, 0.0)
        assert monitor.decision(2.0).should_retrain
        monitor.mark_retrained(2.0)
        assert not monitor.decision(2.1).should_retrain
        assert monitor.retraining_events_days == [2.0]

    def test_out_of_order_observations_rejected(self):
        monitor = ConfidenceScoreMonitor()
        monitor.observe(1.0, 0.5)
        with pytest.raises(ValueError, match="non-decreasing"):
            monitor.observe(0.5, 0.5)

    def test_history_series(self):
        monitor = ConfidenceScoreMonitor()
        monitor.observe(0.0, 0.5)
        monitor.observe(1.0, 0.6)
        days, scores = monitor.history()
        np.testing.assert_array_equal(days, [0.0, 1.0])
        np.testing.assert_array_equal(scores, [0.5, 0.6])
