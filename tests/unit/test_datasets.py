"""Unit tests for the synthetic population and data-collection routines."""

import pytest

from repro.datasets.collection import (
    SensorDataset,
    collect_free_form_dataset,
    collect_lab_context_dataset,
    collect_session,
    free_form_context_mixture,
)
from repro.datasets.population import (
    AgeBand,
    Gender,
    PAPER_AGE_DISTRIBUTION,
    PAPER_GENDER_DISTRIBUTION,
    build_study_population,
)
from repro.sensors.types import CoarseContext, Context, DeviceType, SensorType


class TestPopulation:
    def test_default_population_matches_paper_demographics(self):
        population = build_study_population(seed=0)
        assert len(population) == 35
        assert population.gender_histogram() == PAPER_GENDER_DISTRIBUTION
        assert population.age_histogram() == PAPER_AGE_DISTRIBUTION

    def test_each_participant_has_unique_profile(self, population):
        frequencies = [p.profile.gait.frequency_hz for p in population]
        assert len(set(frequencies)) == len(population)

    def test_lookup_and_subset(self, population):
        first = population[0]
        assert population.by_id(first.user_id) is first
        assert len(population.subset(3)) == 3
        with pytest.raises(KeyError):
            population.by_id("nobody")
        with pytest.raises(ValueError):
            population.subset(0)

    def test_custom_size_population(self):
        population = build_study_population(n_users=10, seed=1)
        assert len(population) == 10
        assert sum(population.gender_histogram().values()) == 10

    def test_reproducible_given_seed(self):
        a = build_study_population(n_users=6, seed=5)
        b = build_study_population(n_users=6, seed=5)
        assert [p.gender for p in a] == [p.gender for p in b]
        assert a[0].profile == b[0].profile

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            build_study_population(n_users=0)


class TestCollectSession:
    def test_records_both_devices(self, profile):
        session = collect_session(profile, Context.MOVING, 12.0, seed=1)
        assert set(session.recordings) == {DeviceType.SMARTPHONE, DeviceType.SMARTWATCH}
        assert session.coarse_context is CoarseContext.MOVING

    def test_feature_extraction_helpers(self, profile):
        session = collect_session(profile, Context.MOVING, 24.0, seed=2)
        auth = session.authentication_features(6.0)
        phone = session.device_features(DeviceType.SMARTPHONE, 6.0)
        assert auth.values.shape == (4, 28)
        assert phone.values.shape == (4, 14)
        with pytest.raises(KeyError):
            collect_session(
                profile, Context.MOVING, 12.0, devices=(DeviceType.SMARTPHONE,), seed=3
            ).device_features(DeviceType.SMARTWATCH, 6.0)


class TestFreeFormCollection:
    def test_expected_session_count(self, population):
        dataset = collect_free_form_dataset(
            population, session_duration=30.0, sessions_per_context=2, seed=1
        )
        assert len(dataset) == len(population) * 2 * 2

    def test_authentication_matrix_is_labelled(self, free_form_dataset):
        matrix = free_form_dataset.authentication_matrix(6.0)
        assert len(set(matrix.user_ids)) == 5
        assert set(matrix.contexts) == {"stationary", "moving"}

    def test_user_filter(self, free_form_dataset, population):
        target = population[0].user_id
        matrix = free_form_dataset.authentication_matrix(6.0, users=[target])
        assert set(matrix.user_ids) == {target}

    def test_sessions_for_context_filter(self, free_form_dataset, population):
        target = population[0].user_id
        moving = free_form_dataset.sessions_for(target, context=CoarseContext.MOVING)
        assert all(s.coarse_context is CoarseContext.MOVING for s in moving)

    def test_device_matrix(self, free_form_dataset):
        matrix = free_form_dataset.device_matrix(DeviceType.SMARTWATCH, 6.0)
        assert matrix.values.shape[1] == 14

    def test_empty_dataset_errors(self):
        with pytest.raises(ValueError):
            SensorDataset(sessions=[]).authentication_matrix(6.0)


class TestLabCollection:
    def test_covers_all_fine_contexts_phone_only(self, lab_dataset, population):
        contexts = {session.context for session in lab_dataset}
        assert contexts == set(Context)
        assert all(
            set(session.recordings) == {DeviceType.SMARTPHONE} for session in lab_dataset
        )
        assert len(lab_dataset) == len(population) * len(Context)


class TestContextMixture:
    def test_total_duration_covered(self, profile):
        sessions = free_form_context_mixture(profile, total_duration=90.0, segment_duration=30.0, seed=4)
        assert sum(s.recordings[DeviceType.SMARTPHONE].duration for s in sessions) == pytest.approx(
            90.0, abs=1.0
        )

    def test_sensors_limited_to_selection(self, profile):
        sessions = free_form_context_mixture(profile, total_duration=30.0, seed=5)
        for session in sessions:
            assert set(session.recordings[DeviceType.SMARTPHONE].sensors()) == {
                SensorType.ACCELEROMETER,
                SensorType.GYROSCOPE,
            }
