"""Unit tests for the kernel ridge regression classifier (Eq. 5-7)."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.kernel_ridge import KernelRidgeClassifier


def binary_problem(n=120, separation=2.0, n_features=6, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(0, 1, (n // 2, n_features)), rng.normal(separation, 1, (n // 2, n_features))]
    )
    y = np.array(["neg"] * (n // 2) + ["pos"] * (n // 2))
    return X, y


class TestFitPredict:
    def test_separable_problem_learned(self):
        X, y = binary_problem()
        model = KernelRidgeClassifier().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_rbf_kernel_handles_nonlinear_boundary(self):
        rng = np.random.default_rng(1)
        radius = np.concatenate([rng.uniform(0, 1, 100), rng.uniform(2, 3, 100)])
        angle = rng.uniform(0, 2 * np.pi, 200)
        X = np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])
        y = np.array(["inner"] * 100 + ["outer"] * 100)
        linear = KernelRidgeClassifier(kernel="linear").fit(X, y).score(X, y)
        rbf = KernelRidgeClassifier(kernel="rbf", gamma=1.0).fit(X, y).score(X, y)
        assert rbf > 0.95 > linear

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KernelRidgeClassifier().predict(np.ones((1, 3)))

    def test_feature_count_checked_at_predict(self):
        X, y = binary_problem(n_features=4)
        model = KernelRidgeClassifier().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((1, 5)))

    def test_multiclass_rejected(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.array(["a", "b", "c"] * 10)
        with pytest.raises(ValueError, match="binary"):
            KernelRidgeClassifier().fit(X, y)

    def test_invalid_ridge_rejected(self):
        X, y = binary_problem()
        with pytest.raises(ValueError):
            KernelRidgeClassifier(ridge=0.0).fit(X, y)


class TestPrimalDualEquivalence:
    """The Appendix's matrix identity: Eq. 6 and Eq. 7 give the same w*."""

    def test_decision_values_match(self):
        X, y = binary_problem(n=80, n_features=5)
        primal = KernelRidgeClassifier(solver="primal", ridge=0.7).fit(X, y)
        dual = KernelRidgeClassifier(solver="dual", ridge=0.7).fit(X, y)
        np.testing.assert_allclose(
            primal.decision_function(X), dual.decision_function(X), atol=1e-8
        )

    def test_solver_auto_picks_primal_for_small_feature_count(self):
        X, y = binary_problem(n=200, n_features=5)
        model = KernelRidgeClassifier(solver="auto").fit(X, y)
        assert model.solver_used_ == "primal"

    def test_primal_requires_linear_kernel(self):
        X, y = binary_problem()
        with pytest.raises(ValueError, match="linear"):
            KernelRidgeClassifier(kernel="rbf", solver="primal").fit(X, y)

    def test_unknown_solver_rejected(self):
        X, y = binary_problem()
        with pytest.raises(ValueError, match="solver"):
            KernelRidgeClassifier(solver="magic").fit(X, y)


class TestScores:
    def test_decision_sign_matches_prediction(self):
        X, y = binary_problem()
        model = KernelRidgeClassifier().fit(X, y)
        scores = model.decision_function(X)
        predictions = model.predict(X)
        assert np.all((scores >= 0) == (predictions == model.classes_[1]))

    def test_confidence_scores_alias(self):
        X, y = binary_problem()
        model = KernelRidgeClassifier().fit(X, y)
        np.testing.assert_array_equal(model.confidence_scores(X), model.decision_function(X))

    def test_predict_proba_rows_sum_to_one(self):
        X, y = binary_problem()
        probabilities = KernelRidgeClassifier().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))

    def test_intercept_handles_uncentred_data(self):
        X, y = binary_problem()
        X_shifted = X + 100.0
        model = KernelRidgeClassifier(fit_intercept=True).fit(X_shifted, y)
        assert model.score(X_shifted, y) > 0.95
