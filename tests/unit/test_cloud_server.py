"""Unit tests for the cloud authentication server (training module)."""

import numpy as np
import pytest

from repro.devices.cloud import (
    LEGITIMATE_LABEL,
    AuthenticationServer,
    default_classifier_factory,
)
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext


def labelled_matrix(user_id, mean, n=30, n_features=6, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, n_features)),
        feature_names=[f"f{i}" for i in range(n_features)],
        user_ids=[user_id] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def populated_server():
    # The two "other" users sit on the same side of feature space so the
    # owner-versus-rest problem is linearly separable (as it is for real
    # motion features, where impostors do not symmetrically surround the
    # owner in every direction).
    server = AuthenticationServer(seed=1)
    for context in ("stationary", "moving"):
        server.upload_features("owner", labelled_matrix("owner", 0.0, context=context, seed=1))
        server.upload_features("other1", labelled_matrix("other1", 3.0, context=context, seed=2))
        server.upload_features("other2", labelled_matrix("other2", 5.0, context=context, seed=3))
    return server


class TestDataCollection:
    def test_upload_returns_pseudonym(self, populated_server):
        pseudonym = populated_server.upload_features("owner", labelled_matrix("owner", 0.0, seed=4))
        assert pseudonym.startswith("anon-") and "owner" not in pseudonym

    def test_pseudonyms_are_stable_and_distinct(self):
        server = AuthenticationServer()
        first = server._pseudonym("alice")
        assert server._pseudonym("alice") == first
        assert server._pseudonym("bob") != first

    def test_stored_window_count(self, populated_server):
        assert populated_server.stored_window_count("owner") == 60
        assert populated_server.stored_window_count("stranger") == 0

    def test_empty_upload_rejected(self):
        server = AuthenticationServer()
        empty = FeatureMatrix(values=np.empty((0, 2)), feature_names=["a", "b"])
        with pytest.raises(ValueError, match="empty"):
            server.upload_features("u", empty)


class TestTraining:
    def test_trains_model_per_context(self, populated_server):
        bundle = populated_server.train_authentication_models("owner")
        assert set(bundle.models) == {CoarseContext.STATIONARY, CoarseContext.MOVING}
        assert bundle.version == 1

    def test_models_separate_owner_from_others(self, populated_server):
        bundle = populated_server.train_authentication_models("owner")
        model = bundle.model_for(CoarseContext.STATIONARY)
        owner_rows = labelled_matrix("owner", 0.0, seed=10).values
        other_rows = labelled_matrix("other1", 3.0, seed=11).values
        assert model.predict_legitimate(owner_rows).mean() > 0.8
        assert model.predict_legitimate(other_rows).mean() < 0.2

    def test_confidence_sign_convention(self, populated_server):
        bundle = populated_server.train_authentication_models("owner")
        model = bundle.model_for(CoarseContext.STATIONARY)
        owner_scores = model.decision_scores(labelled_matrix("owner", 0.0, seed=12).values)
        other_scores = model.decision_scores(labelled_matrix("other1", 3.0, seed=13).values)
        assert float(np.mean(owner_scores)) > 0.0 > float(np.mean(other_scores))

    def test_retraining_increments_version(self, populated_server):
        populated_server.train_authentication_models("owner")
        bundle = populated_server.retrain("owner", labelled_matrix("owner", 0.3, seed=14))
        assert bundle.version == 2

    def test_training_requires_other_users(self):
        server = AuthenticationServer()
        server.upload_features("owner", labelled_matrix("owner", 0.0))
        with pytest.raises(ValueError, match="no other users"):
            server.train_authentication_models("owner")

    def test_training_requires_uploaded_data(self, populated_server):
        with pytest.raises(ValueError, match="no uploaded"):
            populated_server.train_authentication_models("stranger")

    def test_missing_context_model_raises_keyerror(self, populated_server):
        bundle = populated_server.train_authentication_models(
            "owner", contexts=(CoarseContext.STATIONARY,)
        )
        with pytest.raises(KeyError):
            bundle.model_for(CoarseContext.MOVING)

    def test_default_classifier_is_linear_krr(self):
        classifier = default_classifier_factory()
        assert type(classifier).__name__ == "KernelRidgeClassifier"
        assert classifier.kernel == "linear"


class TestContextDetectorTraining:
    def test_train_and_download(self, populated_server):
        matrix = labelled_matrix("owner", 0.0, context="stationary", seed=20).concatenate(
            labelled_matrix("owner", 5.0, context="moving", seed=21)
        )
        populated_server.train_context_detector(matrix)
        scaler, detector = populated_server.download_context_detector()
        predictions = detector.predict(scaler.transform(matrix.values))
        assert set(predictions) <= {"stationary", "moving"}

    def test_download_before_training_fails(self):
        with pytest.raises(RuntimeError):
            AuthenticationServer().download_context_detector()

    def test_exclude_user_removes_their_rows(self, populated_server):
        matrix = labelled_matrix("solo", 0.0, context="stationary").concatenate(
            labelled_matrix("solo", 5.0, context="moving")
        )
        with pytest.raises(ValueError, match="no training rows"):
            populated_server.train_context_detector(matrix, exclude_user="solo")


class TestUploadSchemaValidation:
    def test_inconsistent_feature_names_rejected(self, populated_server):
        """Uploads must match the schema established by earlier uploads."""
        renamed = labelled_matrix("owner", 0.0, seed=30)
        renamed = FeatureMatrix(
            values=renamed.values,
            feature_names=[f"g{i}" for i in range(renamed.n_features)],
            user_ids=list(renamed.user_ids),
            contexts=list(renamed.contexts),
        )
        with pytest.raises(ValueError, match="feature_names mismatch"):
            populated_server.upload_features("owner", renamed)

    def test_wrong_column_count_rejected(self, populated_server):
        narrow = labelled_matrix("newcomer", 0.0, n_features=4, seed=31)
        with pytest.raises(ValueError, match="feature_names mismatch"):
            populated_server.upload_features("newcomer", narrow)

    def test_matching_schema_still_accepted(self, populated_server):
        before = populated_server.stored_window_count("owner")
        populated_server.upload_features("owner", labelled_matrix("owner", 0.1, seed=32))
        assert populated_server.stored_window_count("owner") == before + 30

    def test_contexts_for_reports_stored_contexts(self, populated_server):
        contexts = populated_server.contexts_for("owner")
        assert set(contexts) == {CoarseContext.STATIONARY, CoarseContext.MOVING}
        assert populated_server.contexts_for("stranger") == ()

    def test_store_stats_exposed(self, populated_server):
        stats = populated_server.store.stats()
        assert stats.n_users == 3
        assert stats.n_windows == 180
