"""Layering contract of the service package.

The storage and scoring engines live in :mod:`repro.devices.store` and
:mod:`repro.core.scoring`; :mod:`repro.service` re-exports them under their
historical names (the PR-2 ``repro.service.store`` / ``repro.service.batch``
submodule shims are gone), while the low-level modules must be importable
without pulling the service layer in — with no PEP 562 lazy ``__getattr__``
or ``TYPE_CHECKING`` import-cycle workarounds anywhere on the old cycle.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.core.authenticator
import repro.core.scoring
import repro.devices.cloud
import repro.devices.store
import repro.service


class TestLegacyImportPaths:
    def test_package_reexports_resolve_to_new_homes(self):
        from repro.service import (
            ANY_CONTEXT,
            BatchScorer,
            BatchScoreResult,
            FeatureStore,
            RingBuffer,
            StoreStats,
            score_fleet,
            score_requests,
        )

        assert FeatureStore is repro.devices.store.FeatureStore
        assert RingBuffer is repro.devices.store.RingBuffer
        assert StoreStats is repro.devices.store.StoreStats
        assert ANY_CONTEXT is repro.devices.store.ANY_CONTEXT
        assert BatchScorer is repro.core.scoring.BatchScorer
        assert BatchScoreResult is repro.core.scoring.BatchScoreResult
        assert score_fleet is repro.core.scoring.score_fleet
        assert score_requests is repro.core.scoring.score_requests

    def test_deprecated_submodule_shims_are_gone(self):
        """Every import goes through the real homes now; the PR-2 shims
        (``repro.service.store`` / ``repro.service.batch``) were removed."""
        with pytest.raises(ModuleNotFoundError):
            import repro.service.store  # noqa: F401
        with pytest.raises(ModuleNotFoundError):
            import repro.service.batch  # noqa: F401

    def test_every_declared_service_export_resolves(self):
        for name in repro.service.__all__:
            assert getattr(repro.service, name) is not None

    def test_service_and_gateway_api_surface(self):
        # The names PR 1 exported must all still be importable.
        from repro.service import (  # noqa: F401
            AuthenticationGateway,
            AuthenticationResponse,
            Counter,
            DriftResponse,
            EnrollResponse,
            FleetConfig,
            FleetReport,
            FleetSimulator,
            LatencyRecorder,
            ModelRecord,
            ModelRegistry,
            TelemetryHub,
        )
        from repro.service.gateway import (  # noqa: F401
            AuthenticationResponse as GatewayAuthenticationResponse,
            DriftResponse as GatewayDriftResponse,
            EnrollResponse as GatewayEnrollResponse,
        )


class TestNoCycleWorkarounds:
    def test_service_package_imports_eagerly(self):
        assert not hasattr(repro.service, "__getattr__")
        # Every export is a real module attribute, not a lazy resolution.
        for name in repro.service.__all__:
            assert name in vars(repro.service)

    def test_no_lazy_or_type_checking_guards_in_sources(self):
        for module in (
            repro.service,
            repro.devices.cloud,
            repro.core.authenticator,
            repro.core.scoring,
        ):
            source = Path(module.__file__).read_text()
            assert "__getattr__" not in source, module.__name__
            assert "TYPE_CHECKING" not in source, module.__name__

    def test_low_layers_import_without_service(self):
        """devices/core must be importable with repro.service never loaded."""
        script = (
            "import sys\n"
            "import repro.devices.cloud, repro.core.scoring, repro.core.authenticator\n"
            "loaded = [m for m in sys.modules if m.startswith('repro.service')]\n"
            "assert not loaded, loaded\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(repro.service.__file__).parents[2]),
            },
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"
