"""Unit tests for behavioural profiles and mimicry blending."""

import pytest

from repro.sensors.behavior import (
    BehaviorProfile,
    DeviceCarryStyle,
    ProfileBlend,
    blend_profiles,
    sample_profile,
)
from repro.sensors.types import DeviceType


class TestSampling:
    def test_deterministic_given_seed(self):
        assert sample_profile("alice", seed=3) == sample_profile("alice", seed=3)

    def test_distinct_users_get_distinct_profiles(self):
        alice, bob = sample_profile("alice", seed=3), sample_profile("bob", seed=3)
        assert alice.gait.frequency_hz != bob.gait.frequency_hz

    def test_parameters_within_documented_ranges(self):
        profile = sample_profile("carol", seed=4)
        assert 1.4 <= profile.gait.frequency_hz <= 2.4
        assert 8.0 <= profile.grip.tremor_frequency_hz <= 12.0
        assert 0.0 < profile.sensor_noise < 0.2
        assert isinstance(profile.carry_style, DeviceCarryStyle)


class TestDeviceGains:
    def test_watch_gain_is_arm_swing_gain(self):
        profile = sample_profile("dave", seed=5)
        assert profile.motion_gain(DeviceType.SMARTWATCH) == profile.arm_swing_gain

    def test_phone_gain_depends_on_carry_style(self):
        profile = sample_profile("erin", seed=6)
        gain = profile.motion_gain(DeviceType.SMARTPHONE)
        assert 0.5 < gain <= 1.0

    def test_phase_lag_only_for_watch(self):
        profile = sample_profile("frank", seed=7)
        assert profile.phase_lag(DeviceType.SMARTPHONE) == 0.0
        assert profile.phase_lag(DeviceType.SMARTWATCH) == profile.watch_phase_lag

    def test_with_user_id(self):
        profile = sample_profile("gina", seed=8)
        renamed = profile.with_user_id("stolen")
        assert renamed.user_id == "stolen" and renamed.gait == profile.gait


class TestBlendProfiles:
    def test_zero_fidelity_keeps_attacker_coarse_parameters(self):
        attacker, victim = sample_profile("att", seed=1), sample_profile("vic", seed=2)
        blended = blend_profiles(ProfileBlend(attacker, victim, fidelity=0.0))
        assert blended.gait.frequency_hz == pytest.approx(attacker.gait.frequency_hz)

    def test_full_fidelity_copies_victim_coarse_parameters(self):
        attacker, victim = sample_profile("att", seed=1), sample_profile("vic", seed=2)
        blended = blend_profiles(ProfileBlend(attacker, victim, fidelity=1.0))
        assert blended.gait.frequency_hz == pytest.approx(victim.gait.frequency_hz)

    def test_fine_grained_parameters_stay_attacker_owned(self):
        attacker, victim = sample_profile("att", seed=1), sample_profile("vic", seed=2)
        blended = blend_profiles(ProfileBlend(attacker, victim, fidelity=1.0))
        assert blended.gait.phase == attacker.gait.phase
        assert blended.grip.tremor_frequency_hz == attacker.grip.tremor_frequency_hz

    def test_imitation_adds_variability(self):
        attacker, victim = sample_profile("att", seed=1), sample_profile("vic", seed=2)
        blended = blend_profiles(ProfileBlend(attacker, victim, fidelity=0.8))
        assert blended.sensor_noise > attacker.sensor_noise

    def test_invalid_fidelity_rejected(self):
        attacker, victim = sample_profile("att", seed=1), sample_profile("vic", seed=2)
        with pytest.raises(ValueError, match="fidelity"):
            blend_profiles(ProfileBlend(attacker, victim, fidelity=1.5))

    def test_blend_identity_encodes_both_parties(self):
        attacker, victim = sample_profile("att", seed=1), sample_profile("vic", seed=2)
        blended = blend_profiles(ProfileBlend(attacker, victim, fidelity=0.5))
        assert "att" in blended.user_id and "vic" in blended.user_id
