"""Unit tests for the device substrate (devices, link, crypto, cost models)."""

import numpy as np
import pytest

from repro.devices.battery import BatteryModel, PowerScenario
from repro.devices.bluetooth import BluetoothLink
from repro.devices.cpu import ComputeCostModel
from repro.devices.device import DeviceSpec
from repro.devices.secure_channel import IntegrityError, SecureChannel, SecureMessage
from repro.devices.smartphone import NEXUS5_SPEC, Smartphone
from repro.devices.smartwatch import MOTO360_SPEC, Smartwatch
from repro.sensors.types import Context, DeviceType, SensorType


class TestDevices:
    def test_smartphone_records_requested_sensors(self, profile):
        phone = Smartphone(profile, seed=1)
        recording = phone.record(Context.MOVING, 10.0, sensors=(SensorType.ACCELEROMETER,))
        assert recording.device is DeviceType.SMARTPHONE
        assert recording.sensors() == (SensorType.ACCELEROMETER,)

    def test_smartwatch_device_type(self, profile):
        watch = Smartwatch(profile, seed=1)
        assert watch.record(Context.MOVING, 5.0).device is DeviceType.SMARTWATCH

    def test_missing_sensor_rejected(self, profile):
        spec = DeviceSpec(model_name="minimal", sensors=(SensorType.ACCELEROMETER,))
        phone = Smartphone(profile, spec=spec, seed=1)
        with pytest.raises(ValueError, match="lacks sensors"):
            phone.record(Context.MOVING, 5.0, sensors=(SensorType.LIGHT,))

    def test_assign_user_switches_behaviour(self, profile, second_profile):
        phone = Smartphone(profile, seed=1)
        assert phone.current_user_id == "alice"
        phone.assign_user(second_profile)
        assert phone.current_user_id == "bob"
        assert phone.record(Context.MOVING, 5.0).user_id == "bob"

    def test_default_specs_mirror_paper_hardware(self):
        assert NEXUS5_SPEC.model_name == "Nexus 5" and NEXUS5_SPEC.sampling_rate == 50.0
        assert MOTO360_SPEC.model_name == "Moto 360"


class TestSecureChannel:
    def test_encrypt_decrypt_roundtrip(self):
        sender, receiver = SecureChannel.pair()
        message = sender.encrypt(b"sensor payload")
        assert receiver.decrypt(message) == b"sensor payload"

    def test_tampering_detected(self):
        sender, receiver = SecureChannel.pair()
        message = sender.encrypt(b"secret")
        tampered = SecureMessage(
            nonce=message.nonce, ciphertext=b"\x00" * len(message.ciphertext), tag=message.tag
        )
        with pytest.raises(IntegrityError):
            receiver.decrypt(tampered)

    def test_wrong_key_fails(self):
        sender, _ = SecureChannel.pair()
        _, other_receiver = SecureChannel.pair()
        with pytest.raises(IntegrityError):
            other_receiver.decrypt(sender.encrypt(b"hello"))

    def test_ciphertext_differs_from_plaintext(self):
        sender, _ = SecureChannel.pair()
        message = sender.encrypt(b"plaintext!")
        assert message.ciphertext != b"plaintext!"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            SecureChannel(b"")


class TestBluetoothLink:
    def test_lossless_link_delivers_payload(self):
        link = BluetoothLink(loss_probability=0.0, seed=1)
        assert link.transmit({"samples": [1, 2, 3]}) == {"samples": [1, 2, 3]}
        assert link.stats.delivery_ratio == 1.0
        assert link.stats.bytes_sent > 0 and link.stats.energy_mah > 0

    def test_lossy_link_drops_packets(self):
        link = BluetoothLink(loss_probability=1.0, seed=1)
        assert link.transmit("payload") is None
        assert link.stats.packets_dropped == 1

    def test_latency_accounted(self):
        link = BluetoothLink(loss_probability=0.0, base_latency_s=0.05, seed=2)
        link.transmit("x")
        assert link.stats.mean_latency_s >= 0.05

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            BluetoothLink(loss_probability=1.5)


class TestBatteryModel:
    def test_smarteryou_adds_roughly_two_percent(self):
        results = BatteryModel().table_viii()
        idle_overhead = (
            results[PowerScenario.LOCKED_SMARTERYOU_ON].consumed_percent
            - results[PowerScenario.LOCKED_SMARTERYOU_OFF].consumed_percent
        )
        active_overhead = (
            results[PowerScenario.ACTIVE_SMARTERYOU_ON].consumed_percent
            - results[PowerScenario.ACTIVE_SMARTERYOU_OFF].consumed_percent
        )
        assert 1.0 < idle_overhead < 4.0
        assert 0.1 < active_overhead < 4.0

    def test_active_use_dominates_idle(self):
        model = BatteryModel()
        active = model.simulate(PowerScenario.ACTIVE_SMARTERYOU_OFF, 1.0)
        idle = model.simulate(PowerScenario.LOCKED_SMARTERYOU_OFF, 1.0)
        assert active.consumed_percent > idle.consumed_percent

    def test_sampling_rate_scales_cost(self):
        slow = BatteryModel(sampling_rate_hz=25.0).smarteryou_current_ma()
        fast = BatteryModel(sampling_rate_hz=100.0).smarteryou_current_ma()
        assert fast > slow

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            BatteryModel().simulate(PowerScenario.LOCKED_SMARTERYOU_OFF, 0.0)


class TestComputeCostModel:
    def test_primal_cheaper_than_dual_at_paper_sizes(self):
        model = ComputeCostModel()
        primal = model.krr_training_flops(720, 28, use_primal=True)
        dual = model.krr_training_flops(720, 28, use_primal=False)
        assert primal < dual

    def test_report_in_paper_ballpark(self):
        report = ComputeCostModel().report()
        assert 0.001 < report.training_time_s < 1.0
        assert report.total_decision_time_ms < 100.0
        assert 0.5 < report.cpu_utilization_percent < 20.0
        assert 1.0 < report.memory_mb < 20.0

    def test_testing_time_grows_with_window(self):
        model = ComputeCostModel()
        assert model.testing_time_ms(window_seconds=12.0) > model.testing_time_ms(window_seconds=3.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ComputeCostModel().krr_training_flops(0, 28)
