"""Unit tests for the statistics substrate (Fisher, KS, correlations)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.correlation import correlation_matrix, cross_correlation_matrix, pearson_correlation
from repro.stats.descriptive import box_plot_summary
from repro.stats.fisher import fisher_score, fisher_scores
from repro.stats.ks import ks_two_sample, pairwise_ks_pvalues


class TestFisherScore:
    def test_separated_classes_score_higher(self, rng):
        labels = ["a"] * 100 + ["b"] * 100
        close = np.concatenate([rng.normal(0, 1, 100), rng.normal(0.2, 1, 100)])
        far = np.concatenate([rng.normal(0, 1, 100), rng.normal(5.0, 1, 100)])
        assert fisher_score(far, labels) > fisher_score(close, labels)

    def test_identical_constant_classes_score_zero(self):
        assert fisher_score(np.ones(10), ["a"] * 5 + ["b"] * 5) == 0.0

    def test_perfect_separation_is_infinite(self):
        values = np.array([0.0, 0.0, 1.0, 1.0])
        assert fisher_score(values, ["a", "a", "b", "b"]) == float("inf")

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            fisher_score(np.arange(4.0), ["a"] * 4)

    def test_matrix_version_matches_columnwise(self, rng):
        matrix = rng.normal(size=(60, 3))
        matrix[:30] += np.array([2.0, 0.0, 1.0])
        labels = ["a"] * 30 + ["b"] * 30
        per_column = fisher_scores(matrix, labels)
        assert per_column[0] == pytest.approx(fisher_score(matrix[:, 0], labels))
        assert per_column.shape == (3,)


class TestKsTest:
    def test_matches_scipy(self, rng):
        a, b = rng.normal(0, 1, 200), rng.normal(0.5, 1.2, 150)
        ours = ks_two_sample(a, b)
        reference = scipy_stats.ks_2samp(a, b)
        assert ours.statistic == pytest.approx(reference.statistic, abs=1e-12)
        assert ours.pvalue == pytest.approx(reference.pvalue, abs=0.02)

    def test_same_distribution_large_pvalue(self, rng):
        a, b = rng.normal(0, 1, 300), rng.normal(0, 1, 300)
        assert ks_two_sample(a, b).pvalue > 0.05

    def test_different_distributions_reject_null(self, rng):
        a, b = rng.normal(0, 1, 300), rng.normal(3, 1, 300)
        result = ks_two_sample(a, b)
        assert result.rejects_null() and result.pvalue < 1e-6

    def test_pairwise_count(self, rng):
        groups = {f"u{i}": rng.normal(i, 1, 50) for i in range(4)}
        assert len(pairwise_ks_pvalues(groups)) == 6

    def test_pairwise_needs_two_groups(self):
        with pytest.raises(ValueError):
            pairwise_ks_pvalues({"only": [1.0, 2.0]})


class TestCorrelation:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2.0 * x + 1.0) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self, rng):
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_correlation_matrix_properties(self, rng):
        matrix = correlation_matrix(rng.normal(size=(50, 4)))
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)
        assert np.all(np.abs(matrix) <= 1.0 + 1e-12)

    def test_cross_correlation_shape_and_rows_check(self, rng):
        a, b = rng.normal(size=(40, 3)), rng.normal(size=(40, 5))
        assert cross_correlation_matrix(a, b).shape == (3, 5)
        with pytest.raises(ValueError, match="same number of rows"):
            cross_correlation_matrix(a, rng.normal(size=(30, 5)))


class TestBoxPlotSummary:
    def test_five_number_summary(self):
        summary = box_plot_summary(np.arange(1.0, 101.0))
        assert summary.minimum == 1.0 and summary.maximum == 100.0
        assert summary.median == pytest.approx(50.5)
        assert summary.lower_quartile < summary.median < summary.upper_quartile

    def test_fraction_below(self):
        summary = box_plot_summary(np.arange(10.0))
        assert summary.fraction_below(np.arange(10.0), 5.0) == 0.5
