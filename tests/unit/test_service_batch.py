"""Unit tests for the vectorized batch scorer."""

import numpy as np
import pytest

from repro.core.authenticator import ContextualAuthenticator
from repro.devices.cloud import AuthenticationServer
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.core.scoring import BatchScorer, score_fleet


def matrix(uid, mean, n=30, d=6, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def bundle():
    server = AuthenticationServer(seed=2)
    for context in ("stationary", "moving"):
        server.upload_features("owner", matrix("owner", 0.0, context=context, seed=1))
        server.upload_features("other1", matrix("other1", 3.0, context=context, seed=2))
        server.upload_features("other2", matrix("other2", 5.0, context=context, seed=3))
    return server.train_authentication_models("owner")


@pytest.fixture()
def probe_windows():
    rng = np.random.default_rng(11)
    features = rng.normal(0.0, 2.0, size=(1000, 6))
    contexts = [
        CoarseContext.MOVING if i % 3 == 0 else CoarseContext.STATIONARY
        for i in range(1000)
    ]
    return features, contexts


class TestBatchScoring:
    def test_thousand_window_batch_matches_per_window_path_exactly(
        self, bundle, probe_windows
    ):
        """Acceptance bar: one vectorized call == 1000 single-window calls."""
        features, contexts = probe_windows
        result = BatchScorer(bundle).score(features, contexts)
        assert len(result) == 1000
        authenticator = ContextualAuthenticator(bundle)
        for index in range(1000):
            decision = authenticator.authenticate(features[index], contexts[index])
            assert decision.confidence_score == result.scores[index]
            assert decision.accepted == bool(result.accepted[index])
            assert decision.context == result.model_contexts[index]

    def test_direct_context_model_calls_match_exactly(self, bundle, probe_windows):
        """Also identical to calling each ContextModel by hand per window."""
        features, contexts = probe_windows
        result = BatchScorer(bundle).score(features, contexts)
        for index in range(0, 1000, 37):
            model = bundle.models[contexts[index]]
            row = features[index : index + 1]
            assert model.decision_scores(row)[0] == result.scores[index]
            assert bool(model.predict_legitimate(row)[0]) == result.accepted[index]

    def test_separates_owner_from_impostor(self, bundle):
        scorer = BatchScorer(bundle)
        owner = matrix("owner", 0.0, seed=21).values
        impostor = matrix("other1", 3.0, seed=22).values
        contexts = [CoarseContext.STATIONARY] * 30
        assert scorer.score(owner, contexts).accept_rate > 0.8
        assert scorer.score(impostor, contexts).accept_rate < 0.2

    def test_result_metadata(self, bundle):
        scorer = BatchScorer(bundle)
        rows = matrix("owner", 0.0, n=4, seed=23).values
        result = scorer.score(rows, [CoarseContext.STATIONARY] * 4)
        assert result.model_version == bundle.version
        assert result.n_accepted == int(result.accepted.sum())
        assert result.model_contexts == (CoarseContext.STATIONARY,) * 4

    def test_empty_batch(self, bundle):
        result = BatchScorer(bundle).score(np.empty((0, 6)), [])
        assert len(result) == 0
        assert result.accept_rate == 0.0

    def test_length_mismatch_rejected(self, bundle):
        with pytest.raises(ValueError, match="context labels"):
            BatchScorer(bundle).score(np.zeros((3, 6)), [CoarseContext.STATIONARY])

    def test_empty_bundle_rejected(self, bundle):
        bundle.models.clear()
        with pytest.raises(ValueError, match="no trained models"):
            BatchScorer(bundle)


class TestAuthenticatorScorerSync:
    def test_bundle_hot_swap_rebuilds_the_scorer(self, bundle):
        server = AuthenticationServer(seed=9)
        for context in ("stationary", "moving"):
            server.upload_features("owner", matrix("owner", 0.0, context=context, seed=1))
            server.upload_features("other1", matrix("other1", 3.0, context=context, seed=2))
        retrained = server.retrain("owner", matrix("owner", 0.5, seed=7))

        authenticator = ContextualAuthenticator(bundle)
        rows = matrix("owner", 0.0, n=5, seed=8).values
        contexts = [CoarseContext.STATIONARY] * 5
        before = authenticator.confidence_scores(rows, contexts)
        authenticator.bundle = retrained
        assert authenticator.version == retrained.version
        after = authenticator.confidence_scores(rows, contexts)
        expected = BatchScorer(retrained).score(rows, contexts).scores
        np.testing.assert_array_equal(after, expected)
        assert not np.array_equal(before, after)


class TestModelSelection:
    def test_missing_context_falls_back_like_authenticator(self, bundle):
        del bundle.models[CoarseContext.MOVING]
        scorer = BatchScorer(bundle)
        authenticator = ContextualAuthenticator(bundle)
        rows = matrix("owner", 0.0, n=5, seed=24).values
        contexts = [CoarseContext.MOVING] * 5
        result = scorer.score(rows, contexts)
        for index in range(5):
            decision = authenticator.authenticate(rows[index], contexts[index])
            assert decision.confidence_score == result.scores[index]
            assert result.model_contexts[index] == CoarseContext.STATIONARY

    def test_use_context_false_uses_single_model(self, bundle):
        scorer = BatchScorer(bundle, use_context=False)
        rows = matrix("owner", 0.0, n=6, seed=25).values
        mixed = [CoarseContext.MOVING, CoarseContext.STATIONARY] * 3
        result = scorer.score(rows, mixed)
        stationary_only = scorer.score(rows, [CoarseContext.STATIONARY] * 6)
        np.testing.assert_array_equal(result.scores, stationary_only.scores)


class TestScoreFleet:
    def test_groups_requests_per_user(self, bundle):
        scorers = {"owner": BatchScorer(bundle)}
        rows = matrix("owner", 0.0, n=8, seed=26).values
        requests = [
            ("owner", rows[:5], [CoarseContext.STATIONARY] * 5),
            ("owner", rows[5:], [CoarseContext.MOVING] * 3),
        ]
        results = score_fleet(scorers, requests)
        assert set(results) == {"owner"}
        assert len(results["owner"]) == 8
        combined = scorers["owner"].score(
            rows, [CoarseContext.STATIONARY] * 5 + [CoarseContext.MOVING] * 3
        )
        np.testing.assert_array_equal(results["owner"].scores, combined.scores)

    def test_unknown_user_rejected(self, bundle):
        with pytest.raises(KeyError, match="no scorer"):
            score_fleet({}, [("ghost", np.zeros((1, 6)), [CoarseContext.STATIONARY])])

    def test_per_request_length_mismatch_rejected(self, bundle):
        """Mismatches must fail even when they cancel out across requests."""
        scorers = {"owner": BatchScorer(bundle)}
        requests = [
            ("owner", np.zeros((2, 6)), [CoarseContext.STATIONARY]),
            ("owner", np.zeros((1, 6)), [CoarseContext.MOVING, CoarseContext.MOVING]),
        ]
        with pytest.raises(ValueError, match="request 0 for user 'owner'"):
            score_fleet(scorers, requests)


class TestPredictFromDecisionHooks:
    def test_decision_thresholded_classifiers_expose_the_hook(self):
        """Every predict == threshold(decision_function) classifier must keep
        its predict_from_decision consistent with predict."""
        from repro.ml.kernel_ridge import KernelRidgeClassifier
        from repro.ml.linear import LinearRegressionClassifier, LogisticRegressionClassifier
        from repro.ml.svm import LinearSVMClassifier

        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (20, 4)), rng.normal(3, 1, (20, 4))])
        y = np.array(["legitimate"] * 20 + ["other"] * 20)
        probe = rng.normal(1.5, 2.0, (30, 4))
        for classifier in (
            KernelRidgeClassifier(),
            LinearSVMClassifier(),
            LinearRegressionClassifier(),
            LogisticRegressionClassifier(),
        ):
            classifier.fit(X, y)
            raw = classifier.decision_function(probe)
            via_hook = classifier.predict_from_decision(raw)
            assert via_hook is not None, type(classifier).__name__
            np.testing.assert_array_equal(via_hook, classifier.predict(probe))

    def test_vote_based_classifiers_fall_back(self):
        from repro.ml.forest import RandomForestClassifier

        assert RandomForestClassifier().predict_from_decision(np.zeros(3)) is None


class TestContextEncoding:
    """Int-encoding of contexts: the hot path's end-to-end code form."""

    def test_round_trip_labels_and_codes(self):
        from repro.core.scoring import (
            CONTEXT_BY_CODE,
            decode_contexts,
            encode_contexts,
        )

        labels = (CoarseContext.MOVING, CoarseContext.STATIONARY)
        codes = encode_contexts(labels)
        assert codes.dtype == np.int8
        assert decode_contexts(codes) == labels
        # String labels (what a detector predicts) encode vectorized too.
        as_strings = np.asarray([context.value for context in CONTEXT_BY_CODE])
        np.testing.assert_array_equal(
            encode_contexts(as_strings), np.arange(len(CONTEXT_BY_CODE), dtype=np.int8)
        )

    def test_out_of_range_codes_rejected_even_when_they_wrap(self):
        from repro.core.scoring import encode_contexts

        with pytest.raises(ValueError, match="context codes"):
            encode_contexts(np.array([-1]))
        with pytest.raises(ValueError, match="context codes"):
            encode_contexts(np.array([7]))
        # 256 wraps to 0 under an int8 cast; it must still be rejected.
        with pytest.raises(ValueError, match="context codes"):
            encode_contexts(np.array([256]))

    def test_unknown_labels_rejected(self):
        from repro.core.scoring import encode_contexts

        with pytest.raises(ValueError, match="not a known coarse context"):
            encode_contexts(np.asarray(["driving"]))
        with pytest.raises(ValueError):
            encode_contexts(["driving"])

    def test_scorer_accepts_codes_and_labels_identically(self, bundle):
        from repro.core.scoring import encode_contexts

        scorer = BatchScorer(bundle)
        rows = np.random.default_rng(9).normal(0.0, 2.0, size=(6, 6))
        labels = [CoarseContext.STATIONARY, CoarseContext.MOVING] * 3
        by_labels = scorer.score(rows, labels)
        by_codes = scorer.score(rows, encode_contexts(labels))
        np.testing.assert_array_equal(by_labels.scores, by_codes.scores)
        np.testing.assert_array_equal(by_labels.accepted, by_codes.accepted)
        assert by_labels.model_contexts == by_codes.model_contexts
