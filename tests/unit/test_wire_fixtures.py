"""Golden wire fixtures: the JSON payloads are pinned byte-for-byte.

Deployed fleets mix client and server builds, so the wire format is a
compatibility contract, not an implementation detail: any change to field
names, tagging, ordering (the codec sorts keys) or float formatting shows
up here as a byte diff against the committed fixture files.  The v1
fixtures pin the legacy surface old device firmware speaks; the envelope
fixtures pin the v2 contract.

Regenerating (only for a *deliberate*, documented wire change)::

    PYTHONPATH=src python tests/unit/test_wire_fixtures.py --regenerate
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.scoring import BatchScoreResult
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.envelope import (
    DeniedResponse,
    Envelope,
    SealedResponse,
    dumps_envelope,
    dumps_sealed,
    loads_envelope,
    loads_sealed,
)
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DetectorTrainRequest,
    DetectorTrainResponse,
    DrainShardRequest,
    DrainShardResponse,
    DriftReport,
    DriftResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    EvictRequest,
    EvictResponse,
    RollbackRequest,
    RollbackResponse,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
    dumps_request,
    dumps_response,
    loads_request,
    loads_response,
)

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "wire"


def _matrix() -> FeatureMatrix:
    return FeatureMatrix(
        values=np.array([[0.5, -1.25], [3.0, 0.0]]),
        feature_names=["f00", "f01"],
        user_ids=["alice", "alice"],
        contexts=["stationary", "moving"],
    )


def _result() -> BatchScoreResult:
    return BatchScoreResult(
        scores=np.array([1.5, -0.25]),
        accepted=np.array([True, False]),
        model_contexts=(CoarseContext.STATIONARY, CoarseContext.MOVING),
        model_version=3,
    )


def v1_request_fixtures() -> dict[str, str]:
    """Canonical v1 request payloads, name → exact wire text."""
    return {
        "request-enroll": dumps_request(
            EnrollRequest(user_id="alice", matrix=_matrix(), train=False)
        ),
        "request-authenticate": dumps_request(
            AuthenticateRequest(
                user_id="alice",
                features=np.array([[0.5, -1.25]]),
                contexts=(CoarseContext.STATIONARY,),
                version=3,
            )
        ),
        "request-authenticate-detected": dumps_request(
            AuthenticateRequest(
                user_id="alice", features=np.array([[0.5, -1.25]])
            )
        ),
        "request-drift-report": dumps_request(
            DriftReport(user_id="alice", matrix=_matrix())
        ),
        "request-rollback": dumps_request(RollbackRequest(user_id="alice")),
        "request-snapshot": dumps_request(SnapshotRequest()),
        "request-evict": dumps_request(
            EvictRequest(policy="lru", max_versions=2, user_id="alice")
        ),
        "request-train-detector": dumps_request(
            DetectorTrainRequest(matrix=_matrix(), exclude_user="mallory")
        ),
        "request-drain-shard": dumps_request(
            DrainShardRequest(shard=1, undrain=False)
        ),
    }


def v1_response_fixtures() -> dict[str, str]:
    """Canonical v1 response payloads, name → exact wire text."""
    return {
        "response-enroll": dumps_response(
            EnrollResponse(
                user_id="alice", status="trained", windows_stored=24, model_version=1
            )
        ),
        "response-authenticate": dumps_response(
            AuthenticationResponse(user_id="alice", result=_result())
        ),
        "response-drift": dumps_response(
            DriftResponse(user_id="alice", previous_version=3, new_version=4)
        ),
        "response-rollback": dumps_response(
            RollbackResponse(user_id="alice", serving_version=2)
        ),
        "response-snapshot": dumps_response(
            SnapshotResponse(snapshot={"counters": {"auth.windows": 8}})
        ),
        "response-evict": dumps_response(
            EvictResponse(policy="lru", evicted={"alice": [1, 2]})
        ),
        "response-train-detector": dumps_response(DetectorTrainResponse(version=2)),
        "response-drain-shard": dumps_response(
            DrainShardResponse(shard=1, draining=True, active_shards=(0, 2, 3))
        ),
        "response-throttled": dumps_response(
            ThrottledResponse(
                request_kind="authenticate",
                reason="queue-full",
                queue_depth=4,
                max_depth=4,
                retry_after_s=0.005,
                user_id="alice",
            )
        ),
        "response-error": dumps_response(
            ErrorResponse(
                request_kind="authenticate",
                error="KeyError",
                message="no active model versions published for 'ghost'",
                user_id="ghost",
            )
        ),
    }


def envelope_fixtures() -> dict[str, str]:
    """Canonical v2 envelope payloads, name → exact wire text."""
    return {
        "envelope-authenticate": dumps_envelope(
            Envelope(
                request=AuthenticateRequest(
                    user_id="alice", features=np.array([[0.5, -1.25]])
                ),
                api_key="fixture-api-key",
                request_id="req-0001",
                idempotency_key="idem-0001",
            )
        ),
        "sealed-authenticate": dumps_sealed(
            SealedResponse(
                response=AuthenticationResponse(user_id="alice", result=_result()),
                request_id="req-0001",
                caller_id="device-gw",
            )
        ),
        "sealed-denied": dumps_sealed(
            SealedResponse(
                response=DeniedResponse(
                    request_kind="rollback",
                    code="insufficient-scope",
                    message="caller 'device-gw' lacks the 'admin' scope "
                    "required by 'rollback'",
                    required_scope="admin",
                ),
                request_id="req-0002",
            )
        ),
    }


def binary_fixtures() -> dict[str, bytes]:
    """Canonical binary columnar frames, name → exact frame bytes.

    The binary codec is a wire contract exactly like the JSON one: field
    order in the header, section order and padding in the payload, and the
    little-endian dtypes are all pinned here byte-for-byte.
    """
    from repro.service import wirebin
    from repro.service.protocol import ColumnarAuthResult

    auth_requests = [
        AuthenticateRequest(
            user_id="alice",
            features=np.array([[0.5, -1.25], [3.0, 0.0]]),
            contexts=(CoarseContext.STATIONARY, CoarseContext.MOVING),
            version=3,
        ),
        AuthenticateRequest(
            user_id="bob",
            features=np.array([[1.0, 2.0]]),
            contexts=(CoarseContext.MOVING,),
        ),
    ]
    enroll_requests = [
        EnrollRequest(user_id="alice", matrix=_matrix(), train=False),
    ]
    columnar = ColumnarAuthResult(
        user_ids=("alice", "bob"),
        scores=np.array([1.5, -0.25, 0.75]),
        accepted=np.array([True, False, True]),
        model_context_codes=np.array([0, 1, 1], dtype=np.int8),
        lengths=np.array([2, 1]),
        model_versions=np.array([3, 1]),
    )
    return {
        "frame-authenticate": wirebin.encode_request_frame(
            auth_requests, api_key="fixture-api-key", frame_id="frame-0001"
        ),
        "frame-enroll": wirebin.encode_request_frame(
            enroll_requests, api_key="fixture-api-key", frame_id="frame-0002"
        ),
        "frame-response-authenticate": wirebin.encode_columnar_response(
            columnar, frame_id="frame-0001", caller_id="device-gw"
        ),
    }


def all_fixtures() -> dict[str, str]:
    return {**v1_request_fixtures(), **v1_response_fixtures(), **envelope_fixtures()}


@pytest.mark.parametrize("name", sorted(all_fixtures()))
def test_wire_payload_matches_golden_fixture_byte_for_byte(name):
    fixture_path = FIXTURE_DIR / f"{name}.json"
    assert fixture_path.is_file(), (
        f"missing golden fixture {fixture_path}; regenerate deliberately with "
        "PYTHONPATH=src python tests/unit/test_wire_fixtures.py --regenerate"
    )
    assert all_fixtures()[name] == fixture_path.read_text(encoding="utf-8"), (
        f"wire payload {name!r} drifted from its golden fixture — this breaks "
        "deployed clients; if the change is deliberate, regenerate the "
        "fixtures and document the wire change"
    )


@pytest.mark.parametrize("name", sorted(v1_request_fixtures()))
def test_golden_requests_still_parse(name):
    request = loads_request((FIXTURE_DIR / f"{name}.json").read_text(encoding="utf-8"))
    assert dumps_request(request) == all_fixtures()[name]


@pytest.mark.parametrize("name", sorted(v1_response_fixtures()))
def test_golden_responses_still_parse(name):
    response = loads_response((FIXTURE_DIR / f"{name}.json").read_text(encoding="utf-8"))
    assert dumps_response(response) == all_fixtures()[name]


def test_golden_envelopes_still_parse():
    fixtures = envelope_fixtures()
    envelope = loads_envelope(
        (FIXTURE_DIR / "envelope-authenticate.json").read_text(encoding="utf-8")
    )
    assert dumps_envelope(envelope) == fixtures["envelope-authenticate"]
    for name in ("sealed-authenticate", "sealed-denied"):
        sealed = loads_sealed((FIXTURE_DIR / f"{name}.json").read_text(encoding="utf-8"))
        assert dumps_sealed(sealed) == fixtures[name]


@pytest.mark.parametrize("name", sorted(binary_fixtures()))
def test_binary_frame_matches_golden_fixture_byte_for_byte(name):
    fixture_path = FIXTURE_DIR / f"{name}.bin"
    assert fixture_path.is_file(), (
        f"missing golden fixture {fixture_path}; regenerate deliberately with "
        "PYTHONPATH=src python tests/unit/test_wire_fixtures.py --regenerate"
    )
    assert binary_fixtures()[name] == fixture_path.read_bytes(), (
        f"binary frame {name!r} drifted from its golden fixture — this breaks "
        "deployed binary-codec clients; if the change is deliberate, "
        "regenerate the fixtures and document the wire change"
    )


def test_golden_binary_request_frames_still_parse():
    from repro.service import wirebin

    frame = wirebin.decode_request_frame(
        (FIXTURE_DIR / "frame-authenticate.bin").read_bytes()
    )
    assert frame.op == "authenticate"
    assert frame.user_ids == ("alice", "bob")
    assert frame.n_windows == 3
    # The decoded requests carry the same JSON wire form as hand-built ones.
    expected = [
        AuthenticateRequest(
            user_id="alice",
            features=np.array([[0.5, -1.25], [3.0, 0.0]]),
            contexts=(CoarseContext.STATIONARY, CoarseContext.MOVING),
            version=3,
        ),
        AuthenticateRequest(
            user_id="bob",
            features=np.array([[1.0, 2.0]]),
            contexts=(CoarseContext.MOVING,),
        ),
    ]
    assert [dumps_request(request) for request in frame.to_requests()] == [
        dumps_request(request) for request in expected
    ]
    enroll = wirebin.decode_request_frame(
        (FIXTURE_DIR / "frame-enroll.bin").read_bytes()
    )
    assert dumps_request(enroll.to_requests()[0]) == all_fixtures()["request-enroll"]
    (response,) = wirebin.decode_response_frames(
        (FIXTURE_DIR / "frame-response-authenticate.bin").read_bytes()
    )
    assert response.frame_id == "frame-0001"
    assert len(response.to_responses()) == 2


def _regenerate() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for name, text in all_fixtures().items():
        (FIXTURE_DIR / f"{name}.json").write_text(text, encoding="utf-8")
        print(f"wrote {FIXTURE_DIR / f'{name}.json'}")
    for name, data in binary_fixtures().items():
        (FIXTURE_DIR / f"{name}.bin").write_bytes(data)
        print(f"wrote {FIXTURE_DIR / f'{name}.bin'}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
