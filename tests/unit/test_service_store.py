"""Unit tests for the sharded ring-buffer feature store."""

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.devices.store import ANY_CONTEXT, FeatureStore, RingBuffer


def matrix(uid, mean, n=10, d=4, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    contexts = [context] * n if context is not None else []
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=contexts,
    )


class TestRingBuffer:
    def test_append_and_view_in_order(self):
        buffer = RingBuffer(capacity=8, n_features=2)
        rows = np.arange(10.0).reshape(5, 2)
        assert buffer.append(rows) == 0
        assert len(buffer) == 5
        np.testing.assert_array_equal(buffer.view(), rows)

    def test_wraparound_keeps_newest_in_chronological_order(self):
        buffer = RingBuffer(capacity=4, n_features=1)
        buffer.append(np.array([[1.0], [2.0], [3.0]]))
        evicted = buffer.append(np.array([[4.0], [5.0], [6.0]]))
        assert evicted == 2
        np.testing.assert_array_equal(buffer.view().ravel(), [3.0, 4.0, 5.0, 6.0])
        assert buffer.evicted == 2
        assert buffer.total_appended == 6

    def test_oversized_batch_keeps_only_newest_capacity_rows(self):
        buffer = RingBuffer(capacity=3, n_features=1)
        buffer.append(np.array([[0.0]]))
        evicted = buffer.append(np.arange(1.0, 8.0).reshape(7, 1))
        assert evicted == 5  # the stored row plus 4 overflow rows
        np.testing.assert_array_equal(buffer.view().ravel(), [5.0, 6.0, 7.0])

    def test_view_is_read_only(self):
        buffer = RingBuffer(capacity=4, n_features=1)
        buffer.append(np.array([[1.0]]))
        with pytest.raises(ValueError):
            buffer.view()[0, 0] = 9.0

    def test_allocation_is_lazy_and_geometric(self):
        """A huge capacity must not commit memory before rows arrive."""
        buffer = RingBuffer(capacity=65536, n_features=8)
        assert buffer.allocated == 0
        buffer.append(np.zeros((3, 8)))
        assert buffer.allocated < 100
        buffer.append(np.zeros((200, 8)))
        assert 203 <= buffer.allocated < 65536
        np.testing.assert_array_equal(
            buffer.view(), np.zeros((203, 8))
        )

    def test_growth_preserves_rows_and_then_wraps(self):
        buffer = RingBuffer(capacity=16, n_features=1)
        for batch_start in range(0, 24, 3):
            buffer.append(np.arange(batch_start, batch_start + 3, dtype=float).reshape(3, 1))
        # 24 rows through a capacity-16 ring: the newest 16 survive.
        np.testing.assert_array_equal(
            buffer.view().ravel(), np.arange(8.0, 24.0)
        )
        assert buffer.allocated == 16
        assert buffer.evicted == 8

    def test_rejects_bad_shapes_and_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0, n_features=1)
        buffer = RingBuffer(capacity=4, n_features=2)
        with pytest.raises(ValueError):
            buffer.append(np.zeros((3, 5)))


class TestFeatureStoreBasics:
    def test_append_and_read_back_per_context(self):
        store = FeatureStore(n_shards=4)
        store.append("alice", matrix("alice", 0.0, context="stationary", seed=1))
        store.append("alice", matrix("alice", 1.0, context="moving", seed=2))
        assert store.window_count("alice") == 20
        assert store.window_count("alice", "moving") == 10
        assert sorted(store.contexts_for("alice")) == ["moving", "stationary"]
        assert store.rows_for("alice", "stationary").shape == (10, 4)
        assert store.rows_for("alice").shape == (20, 4)

    def test_unlabelled_rows_count_towards_every_context(self):
        store = FeatureStore()
        unlabelled = matrix("bob", 0.0, context=None, seed=3)
        store.append("bob", unlabelled)
        assert store.window_count("bob", "stationary") == 10
        assert store.window_count("bob", "moving") == 10
        assert store.unlabelled_count("bob") == 10
        np.testing.assert_array_equal(
            store.rows_for("bob", "stationary"), unlabelled.values
        )
        assert ANY_CONTEXT not in store.contexts_for("bob")

    def test_mixed_labelled_and_unlabelled_rows(self):
        store = FeatureStore()
        store.append("bob", matrix("bob", 0.0, context=None, seed=3))
        store.append("bob", matrix("bob", 1.0, context="stationary", seed=4))
        # Labelled stationary rows plus the wildcard rows, counted once each.
        assert store.window_count("bob", "stationary") == 20
        assert store.window_count("bob", "moving") == 10
        assert store.unlabelled_count("bob") == 10
        assert store.window_count("bob") == 20

    def test_schema_mismatch_rejected(self):
        store = FeatureStore()
        store.append("alice", matrix("alice", 0.0, d=4))
        with pytest.raises(ValueError, match="feature_names mismatch"):
            store.append("bob", matrix("bob", 0.0, d=3))

    def test_empty_matrix_rejected(self):
        store = FeatureStore()
        empty = FeatureMatrix(values=np.empty((0, 2)), feature_names=["a", "b"])
        with pytest.raises(ValueError, match="empty"):
            store.append("alice", empty)

    def test_users_in_insertion_order_and_drop(self):
        store = FeatureStore()
        for uid in ("charlie", "alice", "bob"):
            store.append(uid, matrix(uid, 0.0, seed=4))
        assert store.users() == ["charlie", "alice", "bob"]
        assert "alice" in store
        assert store.drop_user("alice") == 10
        assert store.users() == ["charlie", "bob"]
        assert store.window_count("alice") == 0

    def test_read_results_are_snapshots_not_live_views(self):
        """Later appends must not rewrite previously returned arrays."""
        store = FeatureStore(capacity_per_context=4)
        first = matrix("alice", 1.0, n=4, seed=40)
        store.append("alice", first)
        store.append("bob", matrix("bob", 0.0, n=4, seed=41))
        rows = store.rows_for("alice", "stationary")
        pool = store.sample_negatives("bob", "stationary", max_rows=10)
        snapshot_rows, snapshot_pool = rows.copy(), pool.copy()
        # Overwrite every slot of alice's ring buffer.
        store.append("alice", matrix("alice", 99.0, n=4, seed=42))
        np.testing.assert_array_equal(rows, snapshot_rows)
        np.testing.assert_array_equal(pool, snapshot_pool)
        np.testing.assert_array_equal(rows, first.values)

    def test_capacity_bound_evicts_oldest(self):
        store = FeatureStore(capacity_per_context=15)
        first = matrix("alice", 0.0, seed=5)
        second = matrix("alice", 9.0, seed=6)
        store.append("alice", first)
        store.append("alice", second)
        rows = store.rows_for("alice", "stationary")
        assert len(rows) == 15
        # The newest ten rows are the whole second batch.
        np.testing.assert_array_equal(rows[-10:], second.values)
        assert store.stats().total_evicted == 5


class TestSharding:
    def test_users_spread_over_shards(self):
        store = FeatureStore(n_shards=8)
        for index in range(64):
            store.append(f"user{index}", matrix(f"user{index}", 0.0, n=2, seed=index))
        stats = store.stats()
        assert stats.n_users == 64
        assert stats.n_windows == 128
        occupied = sum(1 for count in stats.windows_per_shard if count)
        assert occupied >= 4  # hashing must not collapse onto one shard

    def test_shard_assignment_is_stable(self):
        store = FeatureStore(n_shards=16)
        assert store.shard_index("alice") == store.shard_index("alice")


class TestNegativeSampling:
    def test_small_pool_returned_whole_in_enrolment_order(self):
        store = FeatureStore()
        a = matrix("alice", 0.0, seed=7)
        b = matrix("bob", 1.0, seed=8)
        store.append("alice", a)
        store.append("bob", b)
        store.append("carol", matrix("carol", 2.0, seed=9))
        pool = store.sample_negatives("carol", "stationary", max_rows=100)
        np.testing.assert_array_equal(pool, np.vstack([a.values, b.values]))

    def test_large_pool_subsampled_to_cap(self):
        store = FeatureStore()
        for index in range(12):
            store.append(f"user{index}", matrix(f"user{index}", float(index), seed=index))
        rng = np.random.default_rng(0)
        pool = store.sample_negatives("user0", "stationary", max_rows=25, rng=rng)
        assert pool.shape == (25, 4)

    def test_subsample_matches_materialised_reference(self):
        """The virtual-concatenation gather equals vstack-then-index."""
        store = FeatureStore()
        parts = []
        for index in range(6):
            m = matrix(f"user{index}", float(index), n=7, seed=20 + index)
            store.append(f"user{index}", m)
            if index != 2:
                parts.append(m.values)
        reference_pool = np.vstack(parts)
        keep = np.random.default_rng(42).choice(len(reference_pool), size=10, replace=False)
        expected = reference_pool[keep]
        actual = store.sample_negatives(
            "user2", "stationary", max_rows=10, rng=np.random.default_rng(42)
        )
        np.testing.assert_array_equal(actual, expected)

    def test_no_other_users_yields_empty_pool(self):
        store = FeatureStore()
        store.append("alice", matrix("alice", 0.0, seed=1))
        assert len(store.sample_negatives("alice", "stationary", max_rows=10)) == 0

    def test_negative_pool_size_matches_brute_force(self):
        """The O(1) counters must agree with an explicit scan, including
        after wildcard uploads, ring-buffer eviction and user drops."""
        store = FeatureStore(capacity_per_context=12)
        store.append("a", matrix("a", 0.0, n=8, context="stationary", seed=1))
        store.append("a", matrix("a", 0.0, n=8, context="stationary", seed=2))  # evicts 4
        store.append("b", matrix("b", 1.0, n=6, context="moving", seed=3))
        store.append("c", matrix("c", 2.0, n=5, context=None, seed=4))  # wildcard
        store.drop_user("b")
        store.append("b", matrix("b", 1.0, n=3, context="moving", seed=5))
        for user in ("a", "b", "c"):
            for context in ("stationary", "moving", None):
                brute = sum(
                    len(store.rows_for(other, context))
                    for other in store.users()
                    if other != user
                )
                assert store.negative_pool_size(user, context) == brute, (user, context)
