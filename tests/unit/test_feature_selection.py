"""Unit tests for Fisher / KS / correlation based feature selection."""

import numpy as np
import pytest

from repro.features.selection import correlation_prune, fisher_scores_by_sensor, ks_feature_screen
from repro.features.vector import FeatureMatrix
from repro.sensors.generators import generate_recording
from repro.sensors.types import Context, DeviceType, SensorType


class TestFisherScoresBySensor:
    def test_motion_sensors_beat_environment_sensors(self, population):
        # Several sessions per user, so the session-to-session variability of
        # the environment sensors (lighting, local field, heading) shows up in
        # the within-user variance as it would over a two-week study.
        recordings = [
            generate_recording(
                participant.profile,
                DeviceType.SMARTPHONE,
                Context.MOVING,
                30.0,
                seed=100 * index + repeat,
            )
            for index, participant in enumerate(population)
            for repeat in range(3)
        ]
        scores = fisher_scores_by_sensor(recordings)
        motion = np.mean([scores["Acc(x)"], scores["Acc(y)"], scores["Acc(z)"],
                          scores["Gyr(x)"], scores["Gyr(y)"], scores["Gyr(z)"]])
        environment = np.mean([scores["Mag(x)"], scores["Mag(y)"], scores["Mag(z)"],
                               scores["Ori(x)"], scores["Ori(y)"], scores["Ori(z)"], scores["Light"]])
        assert motion > environment

    def test_requires_recordings(self):
        with pytest.raises(ValueError):
            fisher_scores_by_sensor([])

    def test_every_axis_reported(self, population):
        recordings = [
            generate_recording(p.profile, DeviceType.SMARTPHONE, Context.MOVING, 20.0, seed=i)
            for i, p in enumerate(population)
        ]
        scores = fisher_scores_by_sensor(recordings)
        assert len(scores) == 13  # 4 tri-axial sensors + light


def synthetic_matrix(n_per_user=40, separation=3.0, seed=0):
    """Two-user matrix where feature 'good' separates users and 'bad' does not."""
    rng = np.random.default_rng(seed)
    good = np.concatenate([rng.normal(0, 1, n_per_user), rng.normal(separation, 1, n_per_user)])
    bad = rng.normal(0, 1, 2 * n_per_user)
    redundant = good * 2.0 + rng.normal(0, 0.01, 2 * n_per_user)
    values = np.column_stack([good, bad, redundant])
    return FeatureMatrix(
        values=values,
        feature_names=["good", "bad", "redundant"],
        user_ids=["u1"] * n_per_user + ["u2"] * n_per_user,
        contexts=["moving"] * (2 * n_per_user),
    )


class TestKsScreen:
    def test_discriminative_feature_kept_noise_dropped(self):
        results = ks_feature_screen(synthetic_matrix())
        assert results["good"].keep is True
        assert results["bad"].keep is False

    def test_fraction_significant_in_unit_interval(self):
        results = ks_feature_screen(synthetic_matrix())
        for result in results.values():
            assert 0.0 <= result.fraction_significant <= 1.0

    def test_requires_user_labels(self):
        matrix = FeatureMatrix(values=np.ones((4, 1)), feature_names=["x"])
        with pytest.raises(ValueError, match="user labels"):
            ks_feature_screen(matrix)

    def test_requires_two_users(self):
        matrix = FeatureMatrix(
            values=np.ones((4, 1)), feature_names=["x"], user_ids=["a"] * 4, contexts=["moving"] * 4
        )
        with pytest.raises(ValueError, match="two users"):
            ks_feature_screen(matrix)


class TestCorrelationPrune:
    def test_redundant_feature_dropped(self):
        kept, dropped = correlation_prune(synthetic_matrix(), threshold=0.9)
        assert "good" in kept and "bad" in kept
        assert any(name == "redundant" for name, _, _ in dropped)

    def test_priority_order_controls_winner(self):
        kept, dropped = correlation_prune(
            synthetic_matrix(), threshold=0.9, priority=["redundant", "good", "bad"]
        )
        assert "redundant" in kept
        assert any(name == "good" for name, _, _ in dropped)

    def test_unknown_priority_rejected(self):
        with pytest.raises(KeyError):
            correlation_prune(synthetic_matrix(), priority=["missing"])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            correlation_prune(synthetic_matrix(), threshold=1.5)
