"""Unit tests for preprocessing, model selection and evaluation metrics."""

import numpy as np
import pytest

from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.metrics import (
    accuracy_score,
    area_under_curve,
    authentication_metrics,
    confusion_matrix,
    equal_error_rate,
    false_accept_rate,
    false_reject_rate,
    roc_curve,
)
from repro.ml.model_selection import KFold, StratifiedKFold, cross_validate, train_test_split
from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler


class TestScalers:
    def test_standard_scaler_zero_mean_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_inverse_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-12)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        transformed = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(transformed))

    def test_minmax_scaler_range(self, rng):
        X = rng.normal(size=(100, 3)) * 7 + 2
        transformed = MinMaxScaler().fit_transform(X)
        assert transformed.min() >= 0.0 and transformed.max() <= 1.0

    def test_feature_count_mismatch_rejected(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.normal(size=(10, 4)))


class TestLabelEncoder:
    def test_roundtrip(self):
        encoder = LabelEncoder()
        codes = encoder.fit_transform(["b", "a", "c", "a"])
        np.testing.assert_array_equal(encoder.inverse_transform(codes), ["b", "a", "c", "a"])

    def test_unseen_label_rejected(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen"):
            encoder.transform(["c"])


class TestSplitters:
    def test_kfold_covers_every_sample_once(self):
        folds = list(KFold(n_splits=5, random_state=0).split(range(23)))
        test_indices = np.concatenate([test for _, test in folds])
        assert sorted(test_indices) == list(range(23))

    def test_kfold_train_test_disjoint(self):
        for train, test in KFold(n_splits=4, random_state=1).split(range(20)):
            assert set(train).isdisjoint(test)

    def test_stratified_preserves_class_ratio(self):
        y = np.array(["a"] * 40 + ["b"] * 10)
        X = np.zeros((50, 2))
        for _, test in StratifiedKFold(n_splits=5, random_state=2).split(X, y):
            labels, counts = np.unique(y[test], return_counts=True)
            ratio = dict(zip(labels, counts))
            assert ratio["a"] == 8 and ratio["b"] == 2

    def test_stratified_rejects_tiny_class(self):
        y = np.array(["a"] * 19 + ["b"])
        with pytest.raises(ValueError, match="smallest class"):
            list(StratifiedKFold(n_splits=5).split(np.zeros((20, 1)), y))

    def test_train_test_split_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = np.array(["a"] * 50 + ["b"] * 50)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=3)
        assert len(X_test) == 20 and len(X_train) == 80
        assert sorted(np.unique(y_test)) == ["a", "b"]

    def test_cross_validate_reports_mean_accuracy(self, rng):
        X = np.vstack([rng.normal(0, 1, (40, 4)), rng.normal(3, 1, (40, 4))])
        y = np.array(["a"] * 40 + ["b"] * 40)
        result = cross_validate(KernelRidgeClassifier(), X, y, n_splits=5, random_state=4)
        assert result.mean("accuracy") > 0.9
        assert result.std("accuracy") >= 0.0
        assert len(result.fold_scores["accuracy"]) == 5


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score(["a", "b", "a"], ["a", "b", "b"]) == pytest.approx(2 / 3)

    def test_confusion_matrix_layout(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"], labels=["a", "b"])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])
        assert labels == ["a", "b"]

    def test_far_frr_definitions(self):
        y_true = ["legit", "legit", "other", "other", "other"]
        y_pred = ["legit", "other", "legit", "other", "other"]
        assert false_reject_rate(y_true, y_pred, "legit") == pytest.approx(0.5)
        assert false_accept_rate(y_true, y_pred, "legit") == pytest.approx(1 / 3)

    def test_far_requires_impostors(self):
        with pytest.raises(ValueError):
            false_accept_rate(["legit"], ["legit"], "legit")

    def test_authentication_metrics_bundle(self):
        y_true = ["legit"] * 8 + ["other"] * 12
        y_pred = ["legit"] * 7 + ["other"] + ["other"] * 11 + ["legit"]
        metrics = authentication_metrics(y_true, y_pred, "legit")
        assert metrics.n_genuine == 8 and metrics.n_impostor == 12
        assert metrics.as_percentages()["Accuracy%"] == pytest.approx(90.0)
        assert "FRR" in str(metrics)

    def test_roc_and_eer_for_perfect_scores(self):
        y_true = ["legit"] * 10 + ["other"] * 10
        scores = np.concatenate([np.ones(10), -np.ones(10)])
        far, tpr, _ = roc_curve(y_true, scores, "legit")
        assert tpr[9] == pytest.approx(1.0) and far[9] == pytest.approx(0.0)
        assert equal_error_rate(y_true, scores, "legit") == pytest.approx(0.0)

    def test_eer_for_random_scores_is_moderate(self, rng):
        y_true = np.array(["legit"] * 500 + ["other"] * 500)
        scores = rng.normal(size=1000)
        assert 0.35 < equal_error_rate(y_true, scores, "legit") < 0.65

    def test_area_under_curve(self):
        assert area_under_curve([0.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)
