"""Unit tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
    check_same_length,
)


class TestCheckArray:
    def test_coerces_lists(self):
        result = check_array([[1, 2], [3, 4]], "X", ndim=2)
        assert isinstance(result, np.ndarray) and result.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1.0, 2.0], "X", ndim=2)

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="empty"):
            check_array([], "X", ndim=1)

    def test_allows_empty_when_requested(self):
        assert check_array([], "X", ndim=1, allow_empty=True).size == 0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([1.0, float("nan")], "X", ndim=1)


class TestScalarChecks:
    def test_check_positive_strict(self):
        assert check_positive(2.5, "x") == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_positive_non_strict_allows_zero(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_check_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0
        with pytest.raises(ValueError):
            check_in_range(1.1, "x", 0.0, 1.0)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_check_probability(self):
        assert check_probability(0.3, "p") == 0.3
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")


class TestOtherChecks:
    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ValueError, match="same length"):
            check_same_length([1], [1, 2])

    def test_check_fitted(self):
        class Dummy:
            coef_ = None

        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(Dummy(), "coef_")
        fitted = Dummy()
        fitted.coef_ = np.ones(3)
        check_fitted(fitted, "coef_")
