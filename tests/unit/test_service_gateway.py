"""Unit tests for the authentication gateway and service telemetry."""

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.gateway import AuthenticationGateway
from repro.service.telemetry import Counter, LatencyRecorder, TelemetryHub


def matrix(uid, mean, n=15, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def gateway():
    gateway = AuthenticationGateway(min_windows_to_train=20)
    # Two background users provide the negative pool; both sit on the same
    # side of feature space so owner-versus-rest stays linearly separable
    # (as for real motion features).
    for uid, mean, seed in (("bg1", 4.0, 1), ("bg2", 6.0, 2)):
        for context in ("stationary", "moving"):
            gateway.enroll(uid, matrix(uid, mean, context=context, seed=seed), train=False)
    return gateway


class TestEnrollment:
    def test_buffers_until_threshold_then_trains(self, gateway):
        first = gateway.enroll("alice", matrix("alice", 0.0, context="stationary", seed=3))
        assert first.status == "buffered"
        assert first.model_version is None
        second = gateway.enroll("alice", matrix("alice", 0.0, context="moving", seed=4))
        assert second.status == "trained"
        assert second.model_version == 1
        assert gateway.registry.latest_version("alice") == 1

    def test_explicit_train_flag_overrides_threshold(self, gateway):
        response = gateway.enroll(
            "alice", matrix("alice", 0.0, n=30, context="stationary", seed=5), train=True
        )
        assert response.status == "trained"
        buffered = gateway.enroll(
            "alice", matrix("alice", 0.0, n=30, context="stationary", seed=6), train=False
        )
        assert buffered.status == "buffered"

    def test_schema_mismatch_propagates(self, gateway):
        with pytest.raises(ValueError, match="feature_names mismatch"):
            gateway.enroll("alice", matrix("alice", 0.0, d=3, seed=7))

    def test_auto_train_waits_for_context_negatives(self):
        """No negatives under a stored context -> buffer, don't crash."""
        gateway = AuthenticationGateway(min_windows_to_train=20)
        gateway.enroll("a", matrix("a", 3.0, n=25, context="moving", seed=40), train=False)
        response = gateway.enroll("b", matrix("b", 0.0, n=25, context="stationary", seed=41))
        assert response.status == "buffered"  # only moving negatives exist
        # Once user a contributes stationary windows too, b can train.
        gateway.enroll("a", matrix("a", 3.0, n=5, context="stationary", seed=42), train=False)
        trained = gateway.enroll("b", matrix("b", 0.0, n=1, context="stationary", seed=43))
        assert trained.status == "trained"

    def test_auto_train_mirrors_trainable_subset(self, gateway):
        """Auto-train fires as soon as any context qualifies, training it."""
        gateway.enroll("alice", matrix("alice", 0.0, n=12, context="stationary", seed=30), train=False)
        response = gateway.enroll("alice", matrix("alice", 0.0, n=8, context="moving", seed=31))
        # 20 stored and stationary qualifies -> a stationary-only v1 trains
        # (moving, still below the minimum, is filtered rather than fatal).
        assert response.status == "trained"
        assert response.model_version == 1
        bundle = gateway.registry.bundle_for("alice", 1)
        assert set(bundle.models) == {CoarseContext.STATIONARY}
        topped_up = gateway.enroll("alice", matrix("alice", 0.0, n=2, context="moving", seed=32))
        assert topped_up.status == "trained"
        assert topped_up.model_version == 2
        assert set(gateway.registry.bundle_for("alice", 2).models) == set(CoarseContext)

    def test_auto_train_waits_below_aggregate_minimum(self, gateway):
        """Below min_windows_to_train nothing trains, qualifying or not."""
        response = gateway.enroll("alice", matrix("alice", 0.0, n=15, context="stationary", seed=34))
        assert response.status == "buffered"

    def test_small_unlabelled_upload_does_not_poison_training(self, gateway):
        """A few wildcard rows must not make a data-poor context abort."""
        gateway.enroll("alice", matrix("alice", 0.0, n=30, context="stationary", seed=70), train=False)
        stray = matrix("alice", 0.0, n=5, context="stationary", seed=71)
        stray = FeatureMatrix(
            values=stray.values,
            feature_names=list(stray.feature_names),
            user_ids=list(stray.user_ids),
        )
        gateway.enroll("alice", stray, train=False)
        version = gateway.train("alice")
        bundle = gateway.registry.bundle_for("alice", version)
        # Only the stationary context met the minimum; moving (5 wildcard
        # rows) was filtered out rather than failing the whole round.
        assert set(bundle.models) == {CoarseContext.STATIONARY}

    def test_unlabelled_windows_train_every_context(self, gateway):
        """Windows without context labels count towards all contexts."""
        unlabelled = matrix("alice", 0.0, n=25, context="stationary", seed=33)
        unlabelled = FeatureMatrix(
            values=unlabelled.values,
            feature_names=list(unlabelled.feature_names),
            user_ids=list(unlabelled.user_ids),
        )
        response = gateway.enroll("alice", unlabelled)
        assert response.status == "trained"
        bundle = gateway.registry.bundle_for("alice")
        assert set(bundle.models) == set(CoarseContext)


class TestAuthentication:
    def test_owner_accepted_impostor_rejected(self, gateway):
        for context in ("stationary", "moving"):
            gateway.enroll("alice", matrix("alice", 0.0, context=context, seed=8), train=False)
        gateway.enroll("alice", matrix("alice", 0.0, n=1, context="stationary", seed=9))
        own = matrix("alice", 0.0, context="stationary", seed=10)
        response = gateway.authenticate(
            "alice", own.values, [CoarseContext.STATIONARY] * len(own)
        )
        assert response.accept_rate > 0.8
        assert response.model_version == 1
        impostor = matrix("bg1", 4.0, context="stationary", seed=11)
        attack = gateway.authenticate(
            "alice", impostor.values, [CoarseContext.STATIONARY] * len(impostor)
        )
        assert attack.accept_rate < 0.2

    def test_untrained_user_raises(self, gateway):
        with pytest.raises(KeyError):
            gateway.authenticate("ghost", np.zeros((1, 5)), [CoarseContext.STATIONARY])

    def test_telemetry_counts_windows(self, gateway):
        for context in ("stationary", "moving"):
            gateway.enroll("alice", matrix("alice", 0.0, context=context, seed=12))
        own = matrix("alice", 0.0, n=7, context="stationary", seed=13)
        gateway.authenticate("alice", own.values, [CoarseContext.STATIONARY] * 7)
        snapshot = gateway.snapshot()
        assert snapshot["counters"]["auth.windows"] == 7
        assert (
            snapshot["counters"]["auth.accepted"]
            + snapshot["counters"]["auth.rejected"]
            == 7
        )
        assert snapshot["latencies"]["authenticate"]["count"] == 1
        assert snapshot["store"]["n_users"] == 3


class TestDriftAndRollback:
    def test_drift_report_retrains_and_bumps_version(self, gateway):
        for context in ("stationary", "moving"):
            gateway.enroll("alice", matrix("alice", 0.0, context=context, seed=14))
        response = gateway.report_drift(
            "alice", matrix("alice", 1.0, n=30, context="stationary", seed=15)
        )
        assert response.previous_version == 1
        assert response.new_version == 2
        assert gateway.registry.latest_version("alice") == 2

    def test_use_context_flip_invalidates_cached_scorers(self, gateway):
        """Changing the scoring mode must rebuild scorers for all users."""
        # Distinct data per context so the two context models differ.
        gateway.enroll("alice", matrix("alice", 0.0, context="stationary", seed=63), train=False)
        gateway.enroll("alice", matrix("alice", 1.5, context="moving", seed=65))
        own = matrix("alice", 1.5, n=4, context="moving", seed=64)
        contexts = [CoarseContext.MOVING] * 4
        with_context = gateway.authenticate("alice", own.values, contexts)
        gateway.use_context = False
        without_context = gateway.authenticate("alice", own.values, contexts)
        bundle = gateway.registry.bundle_for("alice")
        from repro.core.scoring import BatchScorer

        expected = BatchScorer(bundle, use_context=False).score(own.values, contexts)
        np.testing.assert_array_equal(without_context.scores, expected.scores)
        assert not np.array_equal(with_context.scores, without_context.scores)

    def test_scorer_cache_holds_one_entry_per_user(self, gateway):
        """Retraining must replace, not accumulate, cached scorers."""
        for context in ("stationary", "moving"):
            gateway.enroll("alice", matrix("alice", 0.0, context=context, seed=60))
        own = matrix("alice", 0.0, n=2, context="stationary", seed=61)
        for round_number in range(4):
            gateway.authenticate("alice", own.values, [CoarseContext.STATIONARY] * 2)
            gateway.report_drift(
                "alice", matrix("alice", 0.1, n=30, context="stationary", seed=62 + round_number)
            )
        gateway.authenticate("alice", own.values, [CoarseContext.STATIONARY] * 2)
        assert len(gateway._scorers) == 1
        cached_version, _, _ = gateway._scorers["alice"]
        assert cached_version == gateway.registry.latest_version("alice")

    def test_drift_report_for_untrained_user_preserves_windows(self, gateway):
        gateway.enroll("alice", matrix("alice", 0.0, n=5, context="stationary", seed=80), train=False)
        fresh = matrix("alice", 0.5, n=7, context="stationary", seed=81)
        with pytest.raises(KeyError):
            gateway.report_drift("alice", fresh)
        # The uploaded windows survived the failed report.
        assert gateway.server.stored_window_count("alice") == 12

    def test_rollback_restores_previous_serving_version(self, gateway):
        for context in ("stationary", "moving"):
            gateway.enroll("alice", matrix("alice", 0.0, context=context, seed=16))
        gateway.report_drift("alice", matrix("alice", 1.0, n=30, context="stationary", seed=17))
        serving = gateway.rollback("alice")
        assert serving == 1
        own = matrix("alice", 0.0, n=4, context="stationary", seed=18)
        response = gateway.authenticate(
            "alice", own.values, [CoarseContext.STATIONARY] * 4
        )
        assert response.model_version == 1


class TestPlaneSplit:
    def _trained_alice(self, gateway):
        for context in ("stationary", "moving"):
            gateway.enroll("alice", matrix("alice", 0.0, context=context, seed=90))

    def test_handle_routes_both_planes(self, gateway):
        from repro.service.protocol import (
            EvictRequest,
            EvictResponse,
            RollbackRequest,
            SnapshotRequest,
        )

        self._trained_alice(gateway)
        assert gateway.handle(SnapshotRequest()).snapshot["counters"]
        assert isinstance(gateway.handle(EvictRequest()), EvictResponse)
        with pytest.raises(ValueError):  # single version: nothing to roll back to
            gateway.handle(RollbackRequest(user_id="alice"))

    def test_data_plane_serves_only_the_hot_path(self, gateway):
        from repro.service.gateway import PlaneMismatchError
        from repro.service.protocol import (
            AuthenticateRequest,
            DetectorTrainRequest,
            EvictRequest,
            RollbackRequest,
            SnapshotRequest,
        )

        self._trained_alice(gateway)
        own = matrix("alice", 0.0, n=2, seed=91)
        response = gateway.data_plane.handle(
            AuthenticateRequest(
                user_id="alice",
                features=own.values,
                contexts=(CoarseContext.STATIONARY,) * 2,
            )
        )
        assert len(response.result) == 2
        for control_request in (
            RollbackRequest(user_id="alice"),
            SnapshotRequest(),
            EvictRequest(),
            DetectorTrainRequest(matrix=matrix("alice", 0.0, seed=92)),
        ):
            with pytest.raises(PlaneMismatchError, match="unreachable"):
                gateway.data_plane.handle(control_request)

    def test_control_plane_rejects_the_hot_path(self, gateway):
        from repro.service.gateway import PlaneMismatchError
        from repro.service.protocol import AuthenticateRequest, EnrollRequest

        for data_request in (
            EnrollRequest(user_id="alice", matrix=matrix("alice", 0.0, seed=93)),
            AuthenticateRequest(
                user_id="alice",
                features=np.zeros((1, 5)),
                contexts=(CoarseContext.STATIONARY,),
            ),
        ):
            with pytest.raises(PlaneMismatchError, match="unreachable"):
                gateway.control_plane.handle(data_request)

    def test_non_protocol_request_raises_type_error(self, gateway):
        with pytest.raises(TypeError, match="not a protocol request"):
            gateway.handle("rollback alice")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            gateway.data_plane.handle("rollback alice")  # type: ignore[arg-type]

    def test_plane_request_sets_cover_the_protocol(self, gateway):
        from repro.service import protocol

        data = set(gateway.data_plane.request_types)
        control = set(gateway.control_plane.request_types)
        assert data == set(protocol.DATA_PLANE_TYPES)
        assert control == set(protocol.CONTROL_PLANE_TYPES)
        assert not data & control

    def test_evict_op_drops_old_versions_and_counts(self, gateway):
        self._trained_alice(gateway)
        for round_number in range(3):
            gateway.report_drift(
                "alice",
                matrix("alice", 0.1, n=30, context="stationary", seed=94 + round_number),
            )
        assert gateway.registry.versions("alice") == [1, 2, 3, 4]
        response = gateway.evict(policy="max_versions", max_versions=2)
        assert response.evicted == {"alice": [1, 2]}
        assert response.versions_evicted == 2
        assert gateway.registry.versions("alice") == [3, 4]
        assert gateway.snapshot()["counters"]["registry.evicted"] == 2

    def test_train_detector_op_publishes_a_version(self, gateway):
        from repro.service.protocol import DetectorTrainRequest

        training = matrix("alice", 0.0, n=40, context="stationary", seed=96).concatenate(
            matrix("alice", 5.0, n=40, context="moving", seed=97)
        )
        response = gateway.handle(DetectorTrainRequest(matrix=training))
        assert response.version == 1
        assert gateway.registry.context_detector_versions() == [1]


class TestRegistryWiring:
    def test_gateway_adopts_server_registry_with_published_versions(self):
        from repro.devices.cloud import AuthenticationServer
        from repro.service.registry import ModelRegistry

        registry = ModelRegistry()
        server = AuthenticationServer(registry=registry)
        for context in ("stationary", "moving"):
            server.upload_features("a", matrix("a", 0.0, context=context, seed=50))
            server.upload_features("b", matrix("b", 4.0, context=context, seed=51))
        server.train_authentication_models("a")
        gateway = AuthenticationGateway(server=server)
        assert gateway.registry is registry
        own = matrix("a", 0.0, n=4, context="stationary", seed=52)
        response = gateway.authenticate(
            "a", own.values, [CoarseContext.STATIONARY] * 4
        )
        assert response.model_version == 1

    def test_explicit_registry_still_wins(self):
        from repro.devices.cloud import AuthenticationServer
        from repro.service.registry import ModelRegistry

        server_registry = ModelRegistry()
        explicit = ModelRegistry()
        server = AuthenticationServer(registry=server_registry)
        gateway = AuthenticationGateway(server=server, registry=explicit)
        assert gateway.registry is explicit
        assert server.registry is explicit


class TestTelemetryPrimitives:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter("c")
        assert counter.increment() == 1
        assert counter.increment(4) == 5
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_latency_recorder_statistics(self):
        recorder = LatencyRecorder("op")
        for value in (0.1, 0.2, 0.3, 0.4):
            recorder.record(value)
        assert recorder.count == 4
        assert recorder.mean_seconds == pytest.approx(0.25)
        assert recorder.max_seconds == pytest.approx(0.4)
        assert recorder.percentile_seconds(50.0) == pytest.approx(0.25)
        summary = recorder.summary()
        assert summary["count"] == 4
        with pytest.raises(ValueError):
            recorder.record(-0.1)
        with pytest.raises(ValueError):
            recorder.percentile_seconds(101.0)

    def test_latency_recorder_memory_is_bounded(self):
        recorder = LatencyRecorder("op", max_samples=100)
        for index in range(1000):
            recorder.record(float(index))
        assert recorder.count == 1000  # lifetime stats stay exact
        assert recorder.total_seconds == pytest.approx(sum(range(1000)))
        assert recorder.max_seconds == 999.0
        assert len(recorder._samples) == 100  # window stays bounded
        # Percentiles reflect the most recent window (900..999).
        assert recorder.percentile_seconds(0.0) == 900.0

    def test_hub_entry_points_are_thread_safe(self):
        import threading

        hub = TelemetryHub()

        def work():
            for _ in range(5000):
                hub.increment("events")
                hub.record("op", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hub.counter_value("events") == 20000
        assert hub.snapshot()["latencies"]["op"]["count"] == 20000

    def test_hub_timer_and_snapshot(self):
        hub = TelemetryHub()
        with hub.timer("work"):
            hub.increment("events", 3)
        assert hub.counter_value("events") == 3
        assert hub.counter_value("missing") == 0
        snapshot = hub.snapshot()
        assert snapshot["counters"] == {"events": 3}
        assert snapshot["latencies"]["work"]["count"] == 1
        assert snapshot["latencies"]["work"]["total_s"] >= 0.0
        hub.reset()
        # reset() zeroes metrics *in place*: names persist (so references
        # cached by callers stay live) but every count returns to zero.
        snapshot = hub.snapshot()
        assert set(snapshot["counters"]) == {"events"}
        assert snapshot["counters"]["events"] == 0
        assert snapshot["latencies"]["work"]["count"] == 0
        assert snapshot["latencies"]["work"]["total_s"] == 0.0

    def test_reset_keeps_cached_recorder_objects_live(self):
        hub = TelemetryHub()
        counter = hub.counter("events")
        recorder = hub.latency("op")
        hub.increment("events", 5)
        hub.record("op", 0.25)
        hub.reset()
        assert counter.value == 0
        assert recorder.count == 0
        # The cached objects are the live ones: post-reset traffic through
        # the hub is visible through references taken before the reset.
        hub.increment("events", 2)
        hub.record("op", 0.5)
        assert counter.value == 2
        assert recorder.count == 1
        assert hub.counter("events") is counter
        assert hub.latency("op") is recorder


class TestUnifiedContextDetectorTraining:
    """The paper path and the served publication share one entry point."""

    def _labelled(self, uid="alice", seed=30):
        return matrix(uid, 0.0, n=40, context="stationary", seed=seed).concatenate(
            matrix(uid, 5.0, n=40, context="moving", seed=seed + 1)
        )

    def test_default_factories_are_the_same_object(self):
        from repro.core.context import ContextDetector
        from repro.devices.cloud import AuthenticationServer, default_context_detector_factory

        server = AuthenticationServer()
        assert server.context_detector_factory is default_context_detector_factory
        detector = ContextDetector()
        reference = default_context_detector_factory()
        assert type(detector.classifier) is type(reference)
        assert detector.classifier.get_params() == reference.get_params()

    def test_paper_path_and_server_training_agree_bit_for_bit(self, gateway):
        from repro.core.context import ContextDetector

        training = self._labelled()
        paper = ContextDetector().fit(training)
        gateway.train_context_detector(training)
        scaler, classifier = gateway.server.download_context_detector()
        probe = np.vstack([training.values[:5], training.values[-5:]])
        np.testing.assert_array_equal(
            paper.scaler.transform(probe), scaler.transform(probe)
        )
        paper_labels = [context.value for context in paper.detect(probe)]
        served_labels = list(classifier.predict(scaler.transform(probe)))
        assert paper_labels == [str(label) for label in served_labels]

    def test_publish_a_pre_fitted_paper_detector(self, gateway):
        from repro.core.context import ContextDetector

        training = self._labelled(seed=40)
        detector = ContextDetector().fit(training)
        version = gateway.train_context_detector(detector=detector)
        assert version == 1
        # The registry and the cloud server both serve that model's
        # behaviour exactly (published as a snapshot, not by reference).
        scaler, classifier = gateway.registry.context_detector()
        probe = training.values[:6]
        np.testing.assert_array_equal(
            detector.scaler.transform(probe), scaler.transform(probe)
        )
        assert [c.value for c in detector.detect(probe)] == [
            str(label) for label in classifier.predict(scaler.transform(probe))
        ]
        assert gateway.server.download_context_detector() == (scaler, classifier)

    def test_refitting_a_published_detector_cannot_corrupt_the_registry(self, gateway):
        """The registry holds a snapshot: later refits must not leak in."""
        from repro.core.context import ContextDetector

        training = self._labelled(seed=42)
        detector = ContextDetector().fit(training)
        gateway.train_context_detector(detector=detector)
        probe = training.values[:6]
        before = gateway.detect_contexts(probe)
        # Refit the caller's object on shifted data (new scaler, classifier
        # refitted in place); the published version must be unaffected.
        shifted = matrix("alice", 50.0, n=40, context="stationary", seed=43).concatenate(
            matrix("alice", 90.0, n=40, context="moving", seed=44)
        )
        detector.fit(shifted)
        assert gateway.detect_contexts(probe) == before
        # And the rehydrated copy is detached too.
        rehydrated = gateway.context_detector()
        rehydrated.fit(shifted)
        assert gateway.detect_contexts(probe) == before

    def test_served_detector_rehydrates_as_a_paper_path_object(self, gateway):
        from repro.core.context import ContextDetector

        training = self._labelled(seed=50)
        gateway.train_context_detector(training)
        rehydrated = gateway.context_detector()
        assert isinstance(rehydrated, ContextDetector)
        probe = training.values[:6]
        assert [c.value for c in rehydrated.detect(probe)] == [
            c.value for c in gateway.detect_contexts(probe)
        ]

    def test_matrix_and_detector_arguments_are_mutually_exclusive(self, gateway):
        from repro.core.context import ContextDetector

        with pytest.raises(ValueError, match="exactly one"):
            gateway.train_context_detector()
        detector = ContextDetector().fit(self._labelled(seed=60))
        with pytest.raises(ValueError, match="exactly one"):
            gateway.train_context_detector(self._labelled(seed=61), detector=detector)

    def test_unfitted_detector_rejected(self, gateway):
        from repro.core.context import ContextDetector

        with pytest.raises(ValueError, match="fitted"):
            gateway.train_context_detector(detector=ContextDetector())
