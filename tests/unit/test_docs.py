"""The documentation stays consistent with the tree (tools/check_docs.py).

The same checks run as a standalone CI job; running them in tier-1 as well
means a PR that moves a module or breaks a docs link fails locally first.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_documentation_files_exist():
    for path in check_docs.doc_files():
        assert path.is_file(), f"missing documentation file: {path}"


def test_internal_links_resolve():
    problems = [p for path in check_docs.doc_files() for p in check_docs.check_links(path)]
    assert problems == []


def test_architecture_module_list_matches_the_tree():
    problems = [
        p for path in check_docs.doc_files() for p in check_docs.check_module_paths(path)
    ]
    assert problems == []


def test_checker_detects_a_broken_link(tmp_path):
    broken = tmp_path / "broken.md"
    broken.write_text("see [missing](no/such/file.md) and `src/repro/ghost.py`")
    assert any("broken internal link" in p for p in check_docs.check_links(broken))
    assert any("missing module" in p for p in check_docs.check_module_paths(broken))


def test_required_sections_are_present():
    problems = [
        p
        for name, required in check_docs.REQUIRED_SECTIONS.items()
        for p in check_docs.check_required_sections(check_docs.REPO_ROOT / name, required)
    ]
    assert problems == []


def test_required_section_files_are_link_checked_too():
    # A required-section entry for a file the link checker skips would
    # let that file rot; every entry must also be in DOC_FILES.
    assert set(check_docs.REQUIRED_SECTIONS) <= set(check_docs.DOC_FILES)


def test_checker_detects_a_dropped_section(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("# Title\n\nThe drain runbook is mentioned but not a heading.\n")
    required = ("## Drain runbook",)
    problems = check_docs.check_required_sections(doc, required)
    assert any("missing required section" in p for p in problems)
    doc.write_text("# Title\n\n## Drain runbook\n\ncontent\n")
    assert check_docs.check_required_sections(doc, required) == []
