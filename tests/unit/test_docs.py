"""The documentation stays consistent with the tree (tools/check_docs.py).

The same checks run as a standalone CI job; running them in tier-1 as well
means a PR that moves a module or breaks a docs link fails locally first.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_documentation_files_exist():
    for path in check_docs.doc_files():
        assert path.is_file(), f"missing documentation file: {path}"


def test_internal_links_resolve():
    problems = [p for path in check_docs.doc_files() for p in check_docs.check_links(path)]
    assert problems == []


def test_architecture_module_list_matches_the_tree():
    problems = [
        p for path in check_docs.doc_files() for p in check_docs.check_module_paths(path)
    ]
    assert problems == []


def test_checker_detects_a_broken_link(tmp_path):
    broken = tmp_path / "broken.md"
    broken.write_text("see [missing](no/such/file.md) and `src/repro/ghost.py`")
    assert any("broken internal link" in p for p in check_docs.check_links(broken))
    assert any("missing module" in p for p in check_docs.check_module_paths(broken))
