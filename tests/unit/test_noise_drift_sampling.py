"""Unit tests for noise models, behavioural drift and resampling utilities."""

import numpy as np
import pytest

from repro.sensors.behavior import sample_profile
from repro.sensors.drift import BehaviorDriftModel, DriftSchedule, drift_profile
from repro.sensors.noise import BiasDrift, CompositeNoise, GaussianNoise, SpikeNoise
from repro.sensors.sampling import add_clock_jitter, decimate, resample_uniform, window_starts
from repro.sensors.types import DeviceType, SensorStream, SensorType


class TestNoiseModels:
    def test_gaussian_noise_scale(self, rng):
        noise = GaussianNoise(scale=0.5).sample(5000, 3, rng)
        assert noise.shape == (5000, 3)
        assert abs(float(np.std(noise)) - 0.5) < 0.05

    def test_gaussian_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            GaussianNoise(scale=-1.0)

    def test_bias_drift_is_smooth(self, rng):
        drift = BiasDrift(step_scale=0.01).sample(1000, 1, rng)
        increments = np.abs(np.diff(drift[:, 0]))
        assert float(np.max(increments)) < 0.1

    def test_bias_drift_validates_decay(self):
        with pytest.raises(ValueError):
            BiasDrift(step_scale=0.1, decay=1.5)

    def test_spike_noise_is_sparse(self, rng):
        spikes = SpikeNoise(rate=0.01, magnitude=1.0).sample(10000, 1, rng)
        assert 0.001 < float(np.mean(spikes != 0.0)) < 0.05

    def test_composite_noise_sums_components(self, rng):
        composite = CompositeNoise(components=(GaussianNoise(0.1), GaussianNoise(0.1)))
        sample = composite.sample(100, 2, rng)
        assert sample.shape == (100, 2)


class TestBehaviorDrift:
    def test_zero_days_returns_base_profile(self):
        profile = sample_profile("drifter", seed=1)
        assert BehaviorDriftModel(profile, seed=2).profile_at(0.0) == profile

    def test_divergence_grows_with_time(self):
        profile = sample_profile("drifter", seed=1)
        model = BehaviorDriftModel(profile, seed=2)
        assert model.divergence(30.0) > model.divergence(5.0) >= 0.0

    def test_negative_days_rejected(self):
        profile = sample_profile("drifter", seed=1)
        with pytest.raises(ValueError):
            BehaviorDriftModel(profile, seed=2).profile_at(-1.0)

    def test_drift_moves_toward_population_typical(self):
        profile = sample_profile("drifter", seed=1)
        drifted = BehaviorDriftModel(profile, seed=2).profile_at(100.0)
        assert abs(drifted.gait.frequency_hz - 1.9) < abs(profile.gait.frequency_hz - 1.9) + 0.1

    def test_consistency_loss_raises_noise(self):
        profile = sample_profile("drifter", seed=1)
        schedule = DriftSchedule(consistency_loss_rate=0.05)
        drifted = drift_profile(profile, 10.0, schedule=schedule, seed=3)
        assert drifted.sensor_noise > profile.sensor_noise

    def test_user_id_preserved(self):
        profile = sample_profile("drifter", seed=1)
        assert drift_profile(profile, 5.0, seed=3).user_id == "drifter"


def make_stream(n=100, rate=50.0):
    timestamps = np.arange(n) / rate
    samples = np.column_stack([np.sin(timestamps), np.cos(timestamps), timestamps])
    return SensorStream(
        sensor=SensorType.ACCELEROMETER,
        device=DeviceType.SMARTPHONE,
        timestamps=timestamps,
        samples=samples,
        sampling_rate=rate,
    )


class TestSampling:
    def test_resample_changes_rate(self):
        resampled = resample_uniform(make_stream(), target_rate=25.0)
        assert resampled.sampling_rate == 25.0
        assert len(resampled) < 100

    def test_resample_preserves_signal_shape(self):
        stream = make_stream(n=200)
        resampled = resample_uniform(stream, target_rate=100.0)
        assert abs(float(np.mean(resampled.samples[:, 0])) - float(np.mean(stream.samples[:, 0]))) < 0.05

    def test_decimate(self):
        decimated = decimate(make_stream(n=100), factor=2)
        assert len(decimated) == 50 and decimated.sampling_rate == 25.0
        with pytest.raises(ValueError):
            decimate(make_stream(), factor=0)

    def test_clock_jitter_keeps_monotonicity(self, rng):
        jittered = add_clock_jitter(make_stream(), jitter_std=0.001, rng=rng)
        assert np.all(np.diff(jittered.timestamps) >= 0.0)

    def test_window_starts_non_overlapping(self):
        starts = window_starts(n_samples=100, window_samples=30)
        np.testing.assert_array_equal(starts, [0, 30, 60])

    def test_window_starts_with_step(self):
        starts = window_starts(n_samples=100, window_samples=30, step_samples=10)
        assert starts[0] == 0 and starts[-1] == 70

    def test_window_starts_too_short(self):
        assert window_starts(n_samples=10, window_samples=30).size == 0
