"""Unit tests for the v2 envelope layer: callers, scopes, planes, codec."""

import threading

import numpy as np
import pytest

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.envelope import (
    API_VERSION,
    CODE_INSUFFICIENT_SCOPE,
    CODE_MISSING_KEY,
    CODE_UNKNOWN_KEY,
    CODE_UNSUPPORTED_VERSION,
    CODE_WRONG_PLANE,
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    CallerRegistry,
    DeniedResponse,
    Envelope,
    EnvelopeChannel,
    EnvelopeProcessor,
    SealedResponse,
    dumps_envelope,
    dumps_sealed,
    envelope_from_payload,
    envelope_to_payload,
    loads_envelope,
    loads_sealed,
    sealed_from_payload,
    sealed_to_payload,
)
from repro.service.frontend import ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DriftReport,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    EvictRequest,
    RollbackRequest,
    SnapshotRequest,
    SnapshotResponse,
)


def matrix(uid, mean, n=15, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def frontend():
    frontend = ServiceFrontend(AuthenticationGateway(min_windows_to_train=20))
    for uid, mean, seed in (("bg1", 4.0, 1), ("bg2", 6.0, 2), ("alice", 0.0, 3)):
        for context in ("stationary", "moving"):
            frontend.submit(
                EnrollRequest(
                    user_id=uid,
                    matrix=matrix(uid, mean, context=context, seed=seed),
                    train=False,
                )
            )
    frontend.gateway.train("alice")
    return frontend


@pytest.fixture()
def callers(frontend):
    return CallerRegistry(telemetry=frontend.telemetry)


@pytest.fixture()
def processor(frontend, callers):
    return EnvelopeProcessor(frontend, callers=callers)


def auth_request(n=2):
    return AuthenticateRequest(
        user_id="alice",
        features=np.zeros((n, 5)),
        contexts=(CoarseContext.STATIONARY,) * n,
    )


class TestCallerRegistry:
    def test_register_returns_key_and_stores_only_the_hash(self, callers):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        assert isinstance(key, str) and len(key) >= 24
        snapshot = callers.snapshot()
        assert snapshot["device-gw"]["scopes"] == [SCOPE_DATA_WRITE]
        # No plaintext credential anywhere in the snapshot.
        assert key not in str(snapshot)
        assert callers.scopes_for("device-gw") == frozenset({SCOPE_DATA_WRITE})

    def test_duplicate_caller_or_key_rejected(self, callers):
        key = callers.register("a", (SCOPE_DATA_WRITE,))
        with pytest.raises(ValueError, match="already registered"):
            callers.register("a", (SCOPE_DATA_WRITE,))
        with pytest.raises(ValueError, match="already registered"):
            callers.register("b", (SCOPE_DATA_WRITE,), api_key=key)

    def test_unknown_scope_rejected(self, callers):
        with pytest.raises(ValueError, match="unknown scopes"):
            callers.register("a", ("root",))

    def test_revoked_caller_no_longer_authorizes(self, callers):
        key = callers.register("a", (SCOPE_DATA_WRITE,))
        assert callers.revoke("a") is True
        assert callers.revoke("a") is False
        outcome = callers.authorize(key, SCOPE_DATA_WRITE, "authenticate")
        assert isinstance(outcome, DeniedResponse)
        assert outcome.code == CODE_UNKNOWN_KEY

    def test_authorize_counts_per_caller_telemetry(self, callers, frontend):
        key = callers.register("a", (SCOPE_DATA_WRITE,))
        callers.authorize(key, SCOPE_DATA_WRITE, "authenticate")
        denied = callers.authorize(key, SCOPE_ADMIN, "rollback")
        assert isinstance(denied, DeniedResponse)
        assert denied.code == CODE_INSUFFICIENT_SCOPE
        snapshot = callers.snapshot()["a"]
        assert snapshot["requests"] == 1
        assert snapshot["denied"] == 1
        assert frontend.telemetry.counter_value("callers.a.requests") == 1
        assert frontend.telemetry.counter_value("callers.a.denied") == 1


class TestEnvelopeValidation:
    def test_envelope_generates_a_request_id(self):
        first = Envelope(request=SnapshotRequest())
        second = Envelope(request=SnapshotRequest())
        assert first.request_id and second.request_id
        assert first.request_id != second.request_id
        assert first.api_version == API_VERSION

    def test_non_protocol_request_rejected(self):
        with pytest.raises(TypeError, match="not a protocol request"):
            Envelope(request="authenticate alice")  # type: ignore[arg-type]

    def test_empty_request_id_rejected(self):
        with pytest.raises(ValueError, match="request_id"):
            Envelope(request=SnapshotRequest(), request_id="")


class TestAuthorization:
    def test_missing_key_denied_401_and_never_reaches_the_gateway(
        self, frontend, processor
    ):
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        sealed = processor.process(Envelope(request=auth_request()))
        assert sealed.denied
        assert sealed.response.code == CODE_MISSING_KEY
        assert sealed.response.http_status == 401
        assert calls == []

    def test_unknown_key_denied_401(self, processor):
        sealed = processor.process(
            Envelope(request=auth_request(), api_key="not-a-real-key")
        )
        assert sealed.denied
        assert sealed.response.code == CODE_UNKNOWN_KEY
        assert sealed.response.http_status == 401

    def test_insufficient_scope_denied_403_and_never_reaches_the_gateway(
        self, frontend, callers, processor
    ):
        data_key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        sealed = processor.process(
            Envelope(request=RollbackRequest(user_id="alice"), api_key=data_key)
        )
        assert sealed.denied
        assert sealed.response.code == CODE_INSUFFICIENT_SCOPE
        assert sealed.response.http_status == 403
        assert sealed.response.required_scope == SCOPE_ADMIN
        assert calls == []

    def test_admin_scope_admits_control_ops(self, callers, processor):
        admin_key = callers.register("operator", (SCOPE_ADMIN,))
        sealed = processor.process(
            Envelope(request=SnapshotRequest(), api_key=admin_key)
        )
        assert not sealed.denied
        assert isinstance(sealed.response, SnapshotResponse)
        assert sealed.caller_id == "operator"

    def test_admin_scope_does_not_imply_data_scope(self, callers, processor):
        admin_key = callers.register("operator", (SCOPE_ADMIN,))
        sealed = processor.process(
            Envelope(request=auth_request(), api_key=admin_key)
        )
        assert sealed.denied
        assert sealed.response.code == CODE_INSUFFICIENT_SCOPE

    def test_unsupported_api_version_denied_400(self, callers, processor):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        sealed = processor.process(
            Envelope(request=auth_request(), api_key=key, api_version=3)
        )
        assert sealed.denied
        assert sealed.response.code == CODE_UNSUPPORTED_VERSION
        assert sealed.response.http_status == 400


class TestPlaneEnforcement:
    def test_control_op_unreachable_from_the_data_plane(
        self, frontend, callers, processor
    ):
        """Even a full-scope caller cannot reach rollback via the data door."""
        key = callers.register("operator", (SCOPE_DATA_WRITE, SCOPE_ADMIN))
        calls = []
        original = frontend.gateway.handle
        frontend.gateway.handle = lambda request: calls.append(request) or original(request)
        for request in (
            RollbackRequest(user_id="alice"),
            SnapshotRequest(),
            EvictRequest(),
        ):
            sealed = processor.process(
                Envelope(request=request, api_key=key), plane="data"
            )
            assert sealed.denied
            assert sealed.response.code == CODE_WRONG_PLANE
            assert sealed.response.http_status == 403
        assert calls == []

    def test_data_op_unreachable_from_the_control_plane(self, callers, processor):
        key = callers.register("operator", (SCOPE_DATA_WRITE, SCOPE_ADMIN))
        sealed = processor.process(
            Envelope(request=auth_request(), api_key=key), plane="control"
        )
        assert sealed.denied
        assert sealed.response.code == CODE_WRONG_PLANE


class TestDispatchAndIdempotency:
    def test_response_echoes_the_request_id(self, callers, processor):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        envelope = Envelope(request=auth_request(), api_key=key, request_id="req-77")
        sealed = processor.process(envelope)
        assert sealed.request_id == "req-77"
        assert isinstance(sealed.response, AuthenticationResponse)

    def test_batch_preserves_order_and_denies_in_place(self, callers, processor):
        data_key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        batch = [
            Envelope(request=auth_request(), api_key=data_key),
            Envelope(request=auth_request(), api_key=None),  # denied
            Envelope(request=auth_request(), api_key=data_key),
        ]
        sealed = processor.process_many(batch)
        assert isinstance(sealed[0].response, AuthenticationResponse)
        assert sealed[1].denied
        assert isinstance(sealed[2].response, AuthenticationResponse)
        assert [item.request_id for item in sealed] == [
            envelope.request_id for envelope in batch
        ]

    def test_batch_memoized_authorization_keeps_counters_accurate(
        self, frontend, callers, processor
    ):
        """One credential, many envelopes: authorize once, count each."""
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        processor.process_many(
            [Envelope(request=auth_request(), api_key=key) for _ in range(5)]
            + [Envelope(request=auth_request(), api_key="bogus") for _ in range(3)]
        )
        assert callers.snapshot()["device-gw"]["requests"] == 5
        assert frontend.telemetry.counter_value("callers.device-gw.requests") == 5
        assert frontend.telemetry.counter_value("callers.denied") == 3

    def test_batch_coalesces_admitted_authenticates(self, frontend, callers, processor):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        before = frontend.telemetry.counter_value("frontend.coalesced_batches")
        processor.process_many(
            [Envelope(request=auth_request(), api_key=key) for _ in range(4)]
        )
        assert frontend.telemetry.counter_value("frontend.coalesced_batches") == before + 1

    def test_idempotency_key_executes_once_and_replays(self, frontend, callers, processor):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        enroll = EnrollRequest(
            user_id="dora", matrix=matrix("dora", 2.0, n=5, seed=9), train=False
        )
        first = processor.process(
            Envelope(request=enroll, api_key=key, idempotency_key="upload-1")
        )
        stored_after_first = frontend.gateway.server.stored_window_count("dora")
        retry = EnrollRequest(
            user_id="dora", matrix=matrix("dora", 2.0, n=5, seed=9), train=False
        )
        second = processor.process(
            Envelope(request=retry, api_key=key, idempotency_key="upload-1")
        )
        # The retry did NOT store windows again; the recorded response came back.
        assert frontend.gateway.server.stored_window_count("dora") == stored_after_first
        assert second.replayed and not first.replayed
        assert isinstance(second.response, EnrollResponse)
        assert second.response.windows_stored == first.response.windows_stored

    def test_idempotency_keys_are_scoped_per_caller(self, frontend, callers, processor):
        key_a = callers.register("a", (SCOPE_DATA_WRITE,))
        key_b = callers.register("b", (SCOPE_DATA_WRITE,))
        enroll = lambda seed: EnrollRequest(  # noqa: E731
            user_id="erin", matrix=matrix("erin", 2.0, n=5, seed=seed), train=False
        )
        processor.process(
            Envelope(request=enroll(1), api_key=key_a, idempotency_key="k")
        )
        second = processor.process(
            Envelope(request=enroll(2), api_key=key_b, idempotency_key="k")
        )
        assert not second.replayed  # a different caller's key is a different op

    def test_error_outcomes_are_not_recorded_for_replay(self, frontend, callers, processor):
        """A transient failure must execute (not replay) on retry."""
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        # No detector published -> server-side detection fails with KeyError,
        # mapped to ErrorResponse by the frontend middleware.
        failing = AuthenticateRequest(user_id="alice", features=np.zeros((1, 5)))
        first = processor.process(
            Envelope(request=failing, api_key=key, idempotency_key="probe-1")
        )
        assert isinstance(first.response, ErrorResponse)
        # Publish the detector; the retry with the same key must execute.
        training = matrix("alice", 0.0, n=40, context="stationary", seed=70).concatenate(
            matrix("alice", 5.0, n=40, context="moving", seed=71)
        )
        frontend.gateway.train_context_detector(training)
        second = processor.process(
            Envelope(request=failing, api_key=key, idempotency_key="probe-1")
        )
        assert not second.replayed
        assert isinstance(second.response, AuthenticationResponse)

    def test_concurrent_same_key_envelopes_execute_once(self, frontend, callers, processor):
        """Two threads racing one idempotency key: one executes, one replays."""
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        started = threading.Event()
        release = threading.Event()
        original = frontend.gateway.handle

        def slow_handle(request):
            started.set()
            assert release.wait(timeout=10)
            return original(request)

        frontend.gateway.handle = slow_handle
        sealed: dict[str, object] = {}

        def submit(name, seed):
            sealed[name] = processor.process(
                Envelope(
                    request=EnrollRequest(
                        user_id="race",
                        matrix=matrix("race", 2.0, n=5, seed=seed),
                        train=False,
                    ),
                    api_key=key,
                    idempotency_key="race-1",
                )
            )

        first = threading.Thread(target=submit, args=("first", 1))
        second = threading.Thread(target=submit, args=("second", 2))
        first.start()
        assert started.wait(timeout=5)  # the owner is mid-dispatch
        second.start()
        second.join(timeout=0.3)
        assert second.is_alive()  # the retry waits instead of executing
        release.set()
        first.join(timeout=10)
        second.join(timeout=10)
        frontend.gateway.handle = original
        # Exactly one execution: 5 windows stored, not 10; one replay flag.
        assert frontend.gateway.server.stored_window_count("race") == 5
        assert {sealed["first"].replayed, sealed["second"].replayed} == {True, False}

    def test_duplicate_key_within_one_batch_executes_once(self, frontend, callers, processor):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        enroll = lambda seed: EnrollRequest(  # noqa: E731
            user_id="batchy", matrix=matrix("batchy", 2.0, n=5, seed=seed), train=False
        )
        sealed = processor.process_many(
            [
                Envelope(request=enroll(1), api_key=key, idempotency_key="dup"),
                Envelope(request=enroll(2), api_key=key, idempotency_key="dup"),
            ]
        )
        assert frontend.gateway.server.stored_window_count("batchy") == 5
        assert not sealed[0].replayed and sealed[1].replayed
        assert sealed[1].response.windows_stored == sealed[0].response.windows_stored

    def test_idempotency_record_is_bounded(self, frontend, callers):
        processor = EnvelopeProcessor(
            frontend,
            callers=callers,
            idempotency_capacity=2,
        )
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        for index in range(3):
            processor.process(
                Envelope(
                    request=auth_request(),
                    api_key=key,
                    idempotency_key=f"k{index}",
                )
            )
        # The oldest record was evicted: replaying k0 executes again.
        replay = processor.process(
            Envelope(request=auth_request(), api_key=key, idempotency_key="k0")
        )
        assert not replay.replayed


class TestEnvelopeChannel:
    def test_channel_runs_the_data_plane_in_process(self, frontend, callers, processor):
        key = callers.register("fleet", (SCOPE_DATA_WRITE, SCOPE_ADMIN))
        channel = EnvelopeChannel(processor, key)
        response = channel.submit(auth_request())
        assert isinstance(response, AuthenticationResponse)
        responses = channel.submit_many([auth_request(), auth_request()])
        assert all(isinstance(item, AuthenticationResponse) for item in responses)

    def test_channel_raises_permission_error_when_denied(self, processor):
        channel = EnvelopeChannel(processor, "bogus-key")
        with pytest.raises(PermissionError, match=CODE_UNKNOWN_KEY):
            channel.submit(auth_request())


class TestWireCodec:
    def test_envelope_round_trips_losslessly(self):
        envelope = Envelope(
            request=auth_request(3),
            api_key="secret-key",
            request_id="req-1",
            idempotency_key="idem-1",
        )
        rebuilt = loads_envelope(dumps_envelope(envelope))
        assert rebuilt.api_key == "secret-key"
        assert rebuilt.request_id == "req-1"
        assert rebuilt.idempotency_key == "idem-1"
        assert rebuilt.api_version == API_VERSION
        assert isinstance(rebuilt.request, AuthenticateRequest)
        np.testing.assert_array_equal(
            rebuilt.request.features, envelope.request.features
        )
        assert rebuilt.request.contexts == envelope.request.contexts

    def test_sealed_round_trips_success_and_denied(self):
        sealed = SealedResponse(
            response=SnapshotResponse(snapshot={"counters": {}}),
            request_id="req-2",
            caller_id="operator",
        )
        rebuilt = loads_sealed(dumps_sealed(sealed))
        assert rebuilt.request_id == "req-2"
        assert rebuilt.caller_id == "operator"
        assert isinstance(rebuilt.response, SnapshotResponse)
        denied = SealedResponse(
            response=DeniedResponse(
                request_kind="rollback",
                code=CODE_INSUFFICIENT_SCOPE,
                message="nope",
                required_scope=SCOPE_ADMIN,
            ),
            request_id="req-3",
        )
        rebuilt = loads_sealed(dumps_sealed(denied))
        assert rebuilt.denied
        assert rebuilt.response.code == CODE_INSUFFICIENT_SCOPE
        assert rebuilt.response.required_scope == SCOPE_ADMIN

    def test_malformed_envelope_payloads_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            envelope_from_payload("nope")  # type: ignore[arg-type]
        with pytest.raises(ValueError, match="missing required field"):
            envelope_from_payload({"kind": "envelope", "api_version": 2})
        with pytest.raises(ValueError, match="api_version"):
            envelope_from_payload(
                {
                    "kind": "envelope",
                    "api_version": "two",
                    "request_id": "r",
                    "request": {"kind": "snapshot"},
                }
            )
        payload = envelope_to_payload(Envelope(request=SnapshotRequest()))
        payload["kind"] = "letter"
        with pytest.raises(ValueError, match="does not describe an envelope"):
            envelope_from_payload(payload)

    def test_malformed_sealed_payloads_rejected(self):
        with pytest.raises(ValueError, match="does not describe a sealed"):
            sealed_from_payload({"kind": "envelope"})
        with pytest.raises(ValueError, match="missing required field"):
            sealed_from_payload({"kind": "sealed-response"})

    def test_unknown_envelope_fields_are_tolerated(self):
        payload = envelope_to_payload(Envelope(request=SnapshotRequest(), api_key="k"))
        payload["future-extension"] = {"x": 1}
        rebuilt = envelope_from_payload(payload)
        assert rebuilt.api_key == "k"


class TestConcurrentAuthorization:
    def test_parallel_envelopes_authorize_safely(self, frontend, callers, processor):
        key = callers.register("device-gw", (SCOPE_DATA_WRITE,))
        errors = []

        def worker():
            try:
                for _ in range(50):
                    sealed = processor.process(
                        Envelope(request=auth_request(1), api_key=key)
                    )
                    assert not sealed.denied
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert callers.snapshot()["device-gw"]["requests"] == 200


class TestRateLimits:
    def test_token_bucket_grants_burst_then_meters(self):
        from repro.service.envelope import TokenBucket

        bucket = TokenBucket(rate_per_s=1000.0, burst=3.0)
        assert bucket.acquire() == 0.0
        assert bucket.acquire(2) == 0.0
        retry = bucket.acquire(2)
        assert retry > 0.0  # the bucket is empty
        assert retry <= 2 / 1000.0 + 1e-6

    def test_token_bucket_validates_knobs(self):
        from repro.service.envelope import TokenBucket

        with pytest.raises(ValueError, match="rate_per_s"):
            TokenBucket(rate_per_s=0.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate_per_s=1.0, burst=-1.0)

    def test_set_rate_limit_requires_a_registered_caller(self, callers):
        with pytest.raises(KeyError):
            callers.set_rate_limit("nobody", 10.0)

    def test_rate_limited_envelope_answers_typed_429_before_dispatch(
        self, frontend, callers, processor
    ):
        key = callers.register("metered", (SCOPE_DATA_WRITE,))
        callers.set_rate_limit("metered", 1.0, burst=2.0)
        sealed = [
            processor.process(Envelope(request=auth_request(), api_key=key))
            for _ in range(4)
        ]
        kinds = [type(item.response).__name__ for item in sealed]
        assert kinds[:2] == ["AuthenticationResponse", "AuthenticationResponse"]
        from repro.service.protocol import ThrottledResponse

        assert all(isinstance(item.response, ThrottledResponse) for item in sealed[2:])
        throttled = sealed[2].response
        assert throttled.reason == "rate-limited"
        assert throttled.retry_after_s > 0.0
        assert throttled.max_depth == 2  # the bucket's burst
        assert throttled.user_id == "alice"
        # The typed throttle rides the same 429 mapping as queue overflow.
        from repro.service.transport import status_for_sealed

        assert status_for_sealed(sealed[2]) == 429
        snapshot = callers.snapshot()["metered"]
        assert snapshot["throttled"] == 2
        assert snapshot["rate_limit"] == {"requests_per_s": 1.0, "burst": 2.0}
        assert frontend.telemetry.counter_value("callers.metered.rate_limited") == 2

    def test_batch_envelopes_are_charged_per_request(self, callers, processor):
        key = callers.register("metered", (SCOPE_DATA_WRITE,))
        callers.set_rate_limit("metered", 1.0, burst=3.0)
        sealed = processor.process_many(
            [Envelope(request=auth_request(), api_key=key) for _ in range(5)]
        )
        from repro.service.protocol import ThrottledResponse

        outcomes = [isinstance(item.response, ThrottledResponse) for item in sealed]
        assert outcomes == [False, False, False, True, True]

    def test_authorize_frame_charges_the_whole_frame_atomically(
        self, callers, processor
    ):
        from repro.service.envelope import CallerRecord
        from repro.service.protocol import ThrottledResponse

        key = callers.register("framed", (SCOPE_DATA_WRITE,))
        callers.set_rate_limit("framed", 1.0, burst=10.0)
        outcome = processor.authorize_frame(key, "authenticate", count=8)
        assert isinstance(outcome, CallerRecord)
        throttled = processor.authorize_frame(key, "authenticate", count=8)
        assert isinstance(throttled, ThrottledResponse)
        assert throttled.reason == "rate-limited"
        assert callers.snapshot()["framed"]["requests"] == 16

    def test_authorize_frame_denies_with_per_request_telemetry(
        self, callers, processor
    ):
        outcome = processor.authorize_frame("unknown-key", "authenticate", count=5)
        assert isinstance(outcome, DeniedResponse)
        assert outcome.code == CODE_UNKNOWN_KEY
        assert callers.telemetry.counter_value("callers.denied") == 5

    def test_clear_rate_limit_restores_unlimited_service(self, callers, processor):
        key = callers.register("metered", (SCOPE_DATA_WRITE,))
        callers.set_rate_limit("metered", 1.0, burst=1.0)
        processor.process(Envelope(request=auth_request(), api_key=key))
        callers.clear_rate_limit("metered")
        sealed = processor.process(Envelope(request=auth_request(), api_key=key))
        assert isinstance(sealed.response, AuthenticationResponse)

    def test_authorize_frame_scope_denial_counts_per_caller(
        self, callers, processor
    ):
        """A known under-scoped caller's denied tally covers the whole frame."""
        key = callers.register("scoped-down", (SCOPE_ADMIN,))
        outcome = processor.authorize_frame(key, "authenticate", count=7)
        assert isinstance(outcome, DeniedResponse)
        assert outcome.code == CODE_INSUFFICIENT_SCOPE
        assert callers.snapshot()["scoped-down"]["denied"] == 7
        assert callers.telemetry.counter_value("callers.scoped-down.denied") == 7
