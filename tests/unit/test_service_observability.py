"""Tests for the observability layer: histograms, tracing, Prometheus.

Covers the mergeable fixed-bucket :class:`Histogram`, the
:class:`~repro.service.tracing.Tracer` lifecycle (sampling, binding,
frame fan-out, sinks), the Prometheus text exposition (pinned against a
golden fixture), and hub thread-safety under a concurrent snapshotter.
"""

from __future__ import annotations

import json
import logging
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.service.telemetry import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    PROMETHEUS_CONTENT_TYPE,
    TelemetryHub,
    render_prometheus,
)
from repro.service.tracing import (
    SPAN_ADMISSION,
    SPAN_FUSED_PASS,
    SPAN_QUEUE_WAIT,
    SPAN_RESPONSE_FRAMING,
    TraceContext,
    Tracer,
    new_trace_id,
)

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "metrics"


# --------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------- #


class TestHistogram:
    def test_default_bounds_are_log_spaced_and_shared(self):
        bounds = DEFAULT_BUCKET_BOUNDS
        assert len(bounds) == 41
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(100.0)
        assert list(bounds) == sorted(bounds)
        # Regenerating produces bit-identical floats (merge requires it).
        assert Histogram("a").bounds == Histogram("b").bounds

    def test_record_uses_le_bucket_semantics(self):
        histogram = Histogram("op", bounds=(0.001, 0.01, 0.1))
        histogram.record(0.001)  # == bound: belongs to that bucket (le)
        histogram.record(0.0005)
        histogram.record(0.05)
        histogram.record(5.0)  # overflow
        assert histogram.bucket_counts == (2, 0, 1, 1)
        assert histogram.count == 4
        assert histogram.max_seconds == 5.0
        assert histogram.total_seconds == pytest.approx(5.0515)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Histogram("op").record(-0.1)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("op", bounds=(0.1, 0.01))

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram("op").quantile(99.0) == 0.0

    def test_quantile_brackets_true_value_within_bucket_resolution(self):
        histogram = Histogram("op")
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-6.0, sigma=1.0, size=2000)
        for value in samples:
            histogram.record(float(value))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            estimate = histogram.quantile(q)
            # One log-spaced bucket step is 10^(1/5) ~ 1.585x.
            assert exact / 1.6 <= estimate <= exact * 1.6

    def test_quantile_never_exceeds_recorded_max(self):
        histogram = Histogram("op")
        histogram.record(0.0042)
        assert histogram.quantile(100.0) == 0.0042
        assert histogram.quantile(50.0) <= 0.0042

    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(11)
        left_values = rng.exponential(0.01, size=500)
        right_values = rng.exponential(0.05, size=300)
        left, right, combined = Histogram("l"), Histogram("r"), Histogram("c")
        for value in left_values:
            left.record(float(value))
            combined.record(float(value))
        for value in right_values:
            right.record(float(value))
            combined.record(float(value))
        merged = left.merge(right)
        assert merged is left
        assert merged.bucket_counts == combined.bucket_counts
        assert merged.count == combined.count
        assert merged.total_seconds == pytest.approx(combined.total_seconds)
        assert merged.max_seconds == combined.max_seconds
        for q in (50.0, 90.0, 95.0, 99.0):
            assert merged.quantile(q) == combined.quantile(q)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram("a", bounds=(0.1,)).merge(Histogram("b", bounds=(0.2,)))

    def test_snapshot_roundtrip_is_lossless(self):
        histogram = Histogram("op")
        for value in (1e-5, 3e-4, 0.02, 7.0):
            histogram.record(value)
        payload = json.loads(json.dumps(histogram.snapshot()))
        rebuilt = Histogram.from_snapshot("op", payload)
        assert rebuilt.bucket_counts == histogram.bucket_counts
        assert rebuilt.count == histogram.count
        assert rebuilt.total_seconds == histogram.total_seconds
        assert rebuilt.max_seconds == histogram.max_seconds
        assert rebuilt.summary() == histogram.summary()


class TestHubHistograms:
    def test_record_feeds_recorder_and_histogram(self):
        hub = TelemetryHub()
        hub.record("frontend.score", 0.002)
        hub.record("frontend.score", 0.004)
        assert hub.latency("frontend.score").count == 2
        assert hub.histogram("frontend.score").count == 2

    def test_json_snapshot_shape_is_unchanged(self):
        # The JSON /metrics surface must stay byte-for-byte identical:
        # histograms are exposed only via histograms_snapshot() and the
        # Prometheus rendering, never inside snapshot().
        hub = TelemetryHub()
        hub.increment("events", 2)
        hub.record("op", 0.25)
        snapshot = hub.snapshot()
        assert set(snapshot) == {"counters", "latencies"}
        assert set(snapshot["latencies"]["op"]) == {
            "count", "total_s", "mean_s", "p50_s", "p95_s", "p99_s", "max_s",
        }

    def test_histograms_snapshot_merges_across_workers(self):
        shard_a, shard_b = TelemetryHub(), TelemetryHub()
        combined = Histogram("frontend.score")
        rng = np.random.default_rng(3)
        for hub, size in ((shard_a, 40), (shard_b, 25)):
            for value in rng.exponential(0.01, size=size):
                hub.record("frontend.score", float(value))
                combined.record(float(value))
        merged = Histogram.from_snapshot(
            "frontend.score", shard_a.histograms_snapshot()["frontend.score"]
        ).merge(
            Histogram.from_snapshot(
                "frontend.score", shard_b.histograms_snapshot()["frontend.score"]
            )
        )
        assert merged.bucket_counts == combined.bucket_counts
        for q in (50.0, 95.0, 99.0):
            assert merged.quantile(q) == combined.quantile(q)


# --------------------------------------------------------------------- #
# Hub thread-safety under a concurrent snapshotter (satellite)
# --------------------------------------------------------------------- #


class TestHubConcurrency:
    def test_exact_totals_with_concurrent_snapshots(self):
        hub = TelemetryHub()
        n_threads, n_iterations = 8, 2000
        stop = threading.Event()
        snapshots: list[dict] = []
        histogram_counts: list[int] = []

        def hammer():
            for _ in range(n_iterations):
                hub.increment("events")
                hub.record("op", 0.001)
                with hub.timer("timed"):
                    pass

        def scrape():
            while not stop.is_set():
                snapshot = hub.snapshot()
                snapshots.append(snapshot)
                payload = hub.histograms_snapshot()
                if "op" in payload:
                    histogram_counts.append(payload["op"]["count"])
                render_prometheus(hub)

        workers = [threading.Thread(target=hammer) for _ in range(n_threads)]
        scraper = threading.Thread(target=scrape)
        scraper.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        scraper.join()

        expected = n_threads * n_iterations
        assert hub.counter_value("events") == expected
        assert hub.latency("op").count == expected
        assert hub.histogram("op").count == expected
        assert hub.latency("timed").count == expected
        assert sum(hub.histogram("op").bucket_counts) == expected
        # Counts observed by the scraper never go backwards.
        counter_series = [s["counters"].get("events", 0) for s in snapshots]
        assert counter_series == sorted(counter_series)
        assert histogram_counts == sorted(histogram_counts)


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #


class TestTracer:
    def test_sampling_is_deterministic(self):
        tracer = Tracer(sample_rate=0.5)
        sampled = [tracer.start("http") is not None for _ in range(10)]
        assert sampled.count(True) == 5
        assert sampled == [False, True] * 5

    def test_zero_rate_traces_nothing_but_client_ids(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start("http") is None
        trace = tracer.start("http", trace_id="client-supplied")
        assert trace is not None and trace.trace_id == "client-supplied"

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(ring_capacity=0)
        with pytest.raises(ValueError):
            Tracer(slow_request_ms=-1.0)

    def test_bind_and_lookup_resolve_the_same_trace(self):
        tracer = Tracer()
        trace = tracer.start("envelope", request_id="r-1")
        marker = object()

        class Box:
            pass

        box = Box()
        tracer.bind(box, trace)
        assert tracer.trace_for(box) is trace
        assert tracer.trace_for(marker) is None
        assert tracer.lookup(trace.trace_id) is trace
        assert tracer.lookup("unknown") is None
        assert tracer.lookup(None) is None
        tracer.finish(trace)
        assert tracer.lookup(trace.trace_id) is None  # finished = not live

    def test_finish_is_idempotent_and_none_safe(self):
        tracer = Tracer()
        tracer.finish(None)
        trace = tracer.start("http")
        trace.add_span(SPAN_ADMISSION, 0.001)
        tracer.finish(trace)
        tracer.finish(trace)
        assert len(tracer.events()) == 1

    def test_event_schema(self):
        tracer = Tracer()
        trace = tracer.start(
            "http", request_id="r-9", user_id="alice", caller_id="ops"
        )
        trace.add_span(SPAN_QUEUE_WAIT, 0.0, batch_size=4)
        with trace.span(SPAN_FUSED_PASS, flush_id=1):
            pass
        trace.annotate(replayed=True)
        tracer.finish(trace)
        (event,) = tracer.events()
        assert event["kind"] == "http"
        assert event["request_id"] == "r-9"
        assert event["user_id"] == "alice"
        assert event["caller_id"] == "ops"
        assert event["attrs"] == {"replayed": True}
        assert [span["name"] for span in event["spans"]] == [
            SPAN_QUEUE_WAIT,
            SPAN_FUSED_PASS,
        ]
        assert event["spans"][0]["batch_size"] == 4
        assert event["total_s"] >= sum(s["duration_s"] for s in event["spans"])

    def test_negative_span_durations_clamp_to_zero(self):
        trace = TraceContext(new_trace_id(), "http")
        trace.add_span(SPAN_ADMISSION, -0.5)
        assert trace.span_named(SPAN_ADMISSION).duration_s == 0.0

    def test_finish_frame_fans_out_one_event_per_request(self):
        tracer = Tracer()
        trace = tracer.start("binary-frame", request_id="frame-1")
        trace.caller_id = "ops"
        trace.add_span(SPAN_ADMISSION, 0.001, n_requests=3)
        trace.add_span(SPAN_RESPONSE_FRAMING, 0.0005)
        tracer.finish_frame(trace, ["u1", "u2", "u3"], errors={1: "KeyError"})
        events = tracer.events()
        assert [e["user_id"] for e in events] == ["u1", "u2", "u3"]
        assert [e["request_index"] for e in events] == [0, 1, 2]
        assert all(e["trace_id"] == trace.trace_id for e in events)
        assert all(e["request_id"] == "frame-1" for e in events)
        assert all(e["caller_id"] == "ops" for e in events)
        assert "error" not in events[0]
        assert events[1]["error"] == "KeyError"
        # Spans are shared by reference: per-request attribution at
        # per-frame cost.
        assert events[0]["spans"] is events[2]["spans"]
        # finish_frame seals the trace; a later finish is a no-op.
        tracer.finish(trace)
        assert len(tracer.events()) == 3

    def test_ring_is_bounded(self):
        tracer = Tracer(ring_capacity=4)
        for index in range(10):
            trace = tracer.start("http", request_id=f"r-{index}")
            tracer.finish(trace)
        events = tracer.events()
        assert len(events) == 4
        assert [e["request_id"] for e in events] == ["r-6", "r-7", "r-8", "r-9"]
        tracer.clear()
        assert tracer.events() == []

    def test_jsonl_sink_appends_one_line_per_event(self, tmp_path):
        sink = tmp_path / "traces.jsonl"
        tracer = Tracer(jsonl_path=str(sink))
        for _ in range(3):
            trace = tracer.start("http")
            trace.add_span(SPAN_ADMISSION, 0.001)
            tracer.finish(trace)
        lines = sink.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            event = json.loads(line)
            assert event["kind"] == "http"
            assert event["spans"][0]["name"] == SPAN_ADMISSION

    def test_slow_request_logging_and_counter(self, caplog):
        hub = TelemetryHub()
        tracer = Tracer(slow_request_ms=0.0, telemetry=hub)
        with caplog.at_level(logging.WARNING, logger="repro.service.tracing"):
            trace = tracer.start("http", user_id="alice")
            trace.add_span(SPAN_FUSED_PASS, 0.25)
            tracer.finish(trace)
        assert hub.counter_value("trace.slow_requests") == 1
        assert any("slow request" in record.message for record in caplog.records)
        assert any("fused_pass" in record.getMessage() for record in caplog.records)

    def test_telemetry_counters_track_outcomes(self):
        hub = TelemetryHub()
        tracer = Tracer(sample_rate=0.5, telemetry=hub)
        for _ in range(10):
            tracer.finish(tracer.start("http"))
        assert hub.counter_value("trace.started") == 5
        assert hub.counter_value("trace.unsampled") == 5
        assert hub.counter_value("trace.finished") == 5

    def test_active_table_is_bounded(self):
        tracer = Tracer(ring_capacity=8)  # active capacity floors at 1024
        first = tracer.start("http")
        for _ in range(2000):
            tracer.start("http")
        assert tracer.lookup(first.trace_id) is None  # evicted, not leaked


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #


def _populated_hub() -> TelemetryHub:
    """A deterministic hub covering every metric family the renderer has."""
    hub = TelemetryHub()
    hub.increment("transport.requests", 7)
    hub.increment("frontend.requests", 7)
    hub.increment("callers.requests", 7)
    hub.increment("callers.fleet-operator.requests", 5)
    hub.increment("callers.fleet-operator.denied", 1)
    hub.increment("callers.ops\\team.requests", 2)  # label needs escaping
    for value in (0.0005, 0.001, 0.002, 0.004, 0.008, 0.016, 0.25):
        hub.record("frontend.score", value)
    for value in (0.0001, 0.0002):
        hub.record("frontend.queue_wait", value)
    return hub


class TestPrometheusExposition:
    def test_content_type_pin(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_rendering_matches_golden_fixture(self):
        golden = FIXTURES / "prometheus_golden.txt"
        rendered = render_prometheus(_populated_hub())
        assert rendered == golden.read_text(encoding="utf-8")

    def test_structure(self):
        text = render_prometheus(_populated_hub())
        lines = text.splitlines()
        assert text.endswith("\n")
        # Counters.
        assert "repro_transport_requests_total 7" in lines
        assert "repro_callers_requests_total 7" in lines
        # Per-caller series with escaped label values.
        assert (
            'repro_caller_requests_total{caller="fleet-operator"} 5' in lines
        )
        assert 'repro_caller_denied_total{caller="fleet-operator"} 1' in lines
        assert 'repro_caller_requests_total{caller="ops\\\\team"} 2' in lines
        # Histogram family: cumulative buckets, +Inf, sum and count.
        assert "# TYPE repro_frontend_score_seconds histogram" in lines
        assert 'repro_frontend_score_seconds_bucket{le="+Inf"} 7' in lines
        assert "repro_frontend_score_seconds_count 7" in lines
        # Windowed percentiles as a summary family.
        assert "# TYPE repro_frontend_score_window_seconds summary" in lines
        assert any(
            line.startswith('repro_frontend_score_window_seconds{quantile="0.95"}')
            for line in lines
        )

    def test_bucket_counts_are_cumulative_and_monotonic(self):
        text = render_prometheus(_populated_hub())
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_frontend_score_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 7  # +Inf bucket equals total count

    def test_empty_hub_renders_empty_exposition(self):
        assert render_prometheus(TelemetryHub()) == "\n"
