"""Unit tests for the versioned model registry and bundle serialization."""

import numpy as np
import pytest

from repro.devices.cloud import AuthenticationServer
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.registry import (
    ModelRegistry,
    bundle_from_payload,
    bundle_to_payload,
)


def matrix(uid, mean, n=30, d=5, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


@pytest.fixture()
def server():
    server = AuthenticationServer(seed=5)
    for context in ("stationary", "moving"):
        server.upload_features("owner", matrix("owner", 0.0, context=context, seed=1))
        server.upload_features("other1", matrix("other1", 3.0, context=context, seed=2))
        server.upload_features("other2", matrix("other2", 5.0, context=context, seed=3))
    return server


@pytest.fixture()
def bundle(server):
    return server.train_authentication_models("owner")


class TestPublishingAndServing:
    def test_publish_and_serve_latest(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        assert registry.users() == ["owner"]
        assert registry.versions("owner") == [1]
        assert registry.bundle_for("owner") is bundle

    def test_duplicate_version_rejected(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        with pytest.raises(ValueError, match="already has a published version"):
            registry.publish(bundle)

    def test_unknown_user_or_version_raises(self, bundle):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.latest_version("owner")
        registry.publish(bundle)
        with pytest.raises(KeyError):
            registry.bundle_for("owner", version=9)

    def test_server_auto_publishes_when_wired(self, server):
        registry = ModelRegistry()
        server.registry = registry
        bundle = server.train_authentication_models("owner")
        assert registry.bundle_for("owner") is bundle
        server.retrain("owner", matrix("owner", 0.2, seed=9))
        assert registry.versions("owner") == [1, 2]
        assert registry.latest_version("owner") == 2


class TestRollback:
    def test_rollback_serves_previous_version(self, server):
        registry = ModelRegistry()
        server.registry = registry
        first = server.train_authentication_models("owner")
        server.retrain("owner", matrix("owner", 0.2, seed=9))
        record = registry.rollback("owner")
        assert record.version == first.version
        assert registry.latest_version("owner") == first.version
        assert registry.bundle_for("owner") is first
        # The retired version stays addressable explicitly.
        assert registry.bundle_for("owner", version=2).version == 2

    def test_rollback_needs_two_active_versions(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        with pytest.raises(ValueError, match="at least two"):
            registry.rollback("owner")


class TestEviction:
    def _registry_with_versions(self, server, n_versions, root=None):
        registry = ModelRegistry(root=root)
        server.registry = registry
        server.train_authentication_models("owner")
        for index in range(n_versions - 1):
            server.retrain("owner", matrix("owner", 0.1 * (index + 1), seed=20 + index))
        return registry

    def test_max_versions_keeps_the_newest(self, server):
        registry = self._registry_with_versions(server, 5)
        evicted = registry.evict(policy="max_versions", max_versions=2)
        assert evicted == {"owner": [1, 2, 3]}
        assert registry.versions("owner") == [4, 5]
        assert registry.latest_version("owner") == 5

    def test_eviction_never_drops_the_serving_version(self, server):
        registry = self._registry_with_versions(server, 3)
        # Roll back so v2 serves while v3 is retired-but-stored.
        registry.rollback("owner")
        evicted = registry.evict(policy="max_versions", max_versions=1)
        # The budget of one would keep only v3 (newest number), but the
        # serving version v2 must survive as well.
        assert 2 not in evicted["owner"]
        assert registry.latest_version("owner") == 2
        assert set(registry.versions("owner")) == {2, 3}

    def test_lru_keeps_recently_served_versions(self, server):
        registry = self._registry_with_versions(server, 4)
        # Pin v1 by serving it explicitly (an operator's forensic re-score);
        # v2 is never touched again.
        registry.bundle_for("owner", version=1)
        evicted = registry.evict(policy="lru", max_versions=2)
        # Keep = {1 (recently served), 4 (serving)}; evict 2 and 3.
        assert evicted == {"owner": [2, 3]}
        assert set(registry.versions("owner")) == {1, 4}

    def test_eviction_bumps_generation_only_when_something_dropped(self, server):
        registry = self._registry_with_versions(server, 2)
        generation = registry.generation
        assert registry.evict(policy="max_versions", max_versions=4) == {}
        assert registry.generation == generation
        registry.evict(policy="max_versions", max_versions=1)
        assert registry.generation == generation + 1

    def test_eviction_restricted_to_one_user(self, server):
        registry = self._registry_with_versions(server, 3)
        for context in ("stationary", "moving"):
            server.upload_features("other1", matrix("other1", 3.0, context=context, seed=2))
        server.train_authentication_models("other1")
        server.retrain("other1", matrix("other1", 3.1, seed=40))
        evicted = registry.evict(policy="max_versions", max_versions=1, user_id="owner")
        assert set(evicted) == {"owner"}
        assert registry.versions("other1") == [1, 2]
        with pytest.raises(KeyError, match="no published versions"):
            registry.evict(user_id="ghost")

    def test_lru_recency_survives_a_restart(self, server, tmp_path):
        """A pinned old version stays pinned for LRU after reload (the
        recency ticks are persisted with the serving state)."""
        registry = self._registry_with_versions(server, 4, root=tmp_path / "models")
        registry.bundle_for("owner", version=1)  # operator pins v1
        # A rollback persists the serving state (including recency ticks).
        registry.rollback("owner")
        fresh = ModelRegistry(root=tmp_path / "models")
        fresh.load()
        evicted = fresh.evict(policy="lru", max_versions=2)
        # Keep = {1 (recently served), 3 (serving after rollback), 4 (most
        # recent tick from rollback's record_for... kept by budget)}; the
        # never-pinned v2 goes first.
        assert 1 not in evicted.get("owner", [])
        assert 2 in evicted["owner"]

    def test_eviction_validates_inputs(self, bundle):
        registry = ModelRegistry()
        registry.publish(bundle)
        with pytest.raises(ValueError, match="policy"):
            registry.evict(policy="fifo")
        with pytest.raises(ValueError, match="max_versions"):
            registry.evict(max_versions=0)

    def test_eviction_deletes_persisted_payloads(self, server, tmp_path):
        registry = self._registry_with_versions(server, 3, root=tmp_path / "models")
        paths = {
            version: registry.record_for("owner", version).path
            for version in registry.versions("owner")
        }
        assert all(path is not None and path.exists() for path in paths.values())
        registry.evict(policy="max_versions", max_versions=1)
        assert not paths[1].exists() and not paths[2].exists()
        assert paths[3].exists()
        # A fresh registry reloads only what survived.
        fresh = ModelRegistry(root=tmp_path / "models")
        assert fresh.load() == 1
        assert fresh.versions("owner") == [3]

    def test_evicted_retired_versions_drop_from_persisted_state(self, server, tmp_path):
        registry = self._registry_with_versions(server, 4, root=tmp_path / "models")
        registry.rollback("owner")  # v4 retired, v3 serving
        # Budget 1 keeps v4 (newest number) plus v3 (serving); v1, v2 drop.
        assert registry.evict(policy="max_versions", max_versions=1) == {
            "owner": [1, 2]
        }
        fresh = ModelRegistry(root=tmp_path / "models")
        fresh.load()
        assert fresh.versions("owner") == [3, 4]
        # The persisted retired-state still marks v4 retired: v3 serves.
        assert fresh.latest_version("owner") == 3


class TestSerialization:
    def test_roundtrip_preserves_metadata(self, bundle):
        rebuilt = ModelRegistry().roundtrip(bundle)
        assert rebuilt.user_id == bundle.user_id
        assert rebuilt.version == bundle.version
        assert rebuilt.feature_names == bundle.feature_names
        assert set(rebuilt.models) == set(bundle.models)
        for context in bundle.models:
            assert (
                rebuilt.models[context].n_training_windows
                == bundle.models[context].n_training_windows
            )

    def test_roundtrip_preserves_scalers_bit_for_bit(self, bundle):
        rebuilt = ModelRegistry().roundtrip(bundle)
        for context, model in bundle.models.items():
            other = rebuilt.models[context]
            np.testing.assert_array_equal(model.scaler.mean_, other.scaler.mean_)
            np.testing.assert_array_equal(model.scaler.scale_, other.scaler.scale_)

    def test_roundtrip_preserves_decision_scores_bit_for_bit(self, bundle):
        """The acceptance bar: a reloaded bundle scores identically."""
        rebuilt = ModelRegistry().roundtrip(bundle)
        probe = np.random.default_rng(3).normal(0.0, 2.0, size=(64, 5))
        for context, model in bundle.models.items():
            other = rebuilt.models[context]
            np.testing.assert_array_equal(
                model.decision_scores(probe), other.decision_scores(probe)
            )
            np.testing.assert_array_equal(
                model.predict_legitimate(probe), other.predict_legitimate(probe)
            )

    def test_roundtrip_across_versions(self, server):
        registry = ModelRegistry()
        server.registry = registry
        server.train_authentication_models("owner")
        server.retrain("owner", matrix("owner", 0.2, seed=9))
        probe = np.random.default_rng(4).normal(0.0, 2.0, size=(16, 5))
        for version in registry.versions("owner"):
            original = registry.bundle_for("owner", version)
            rebuilt = registry.roundtrip(original)
            assert rebuilt.version == version
            for context in original.models:
                np.testing.assert_array_equal(
                    original.models[context].decision_scores(probe),
                    rebuilt.models[context].decision_scores(probe),
                )

    def test_roundtrip_supports_forest_classifiers(self):
        """Tree ensembles (nested estimators, dataclass nodes, RNGs) must
        survive the wire format with identical predictions."""
        from repro.ml.forest import RandomForestClassifier

        server = AuthenticationServer(
            classifier_factory=lambda: RandomForestClassifier(
                n_estimators=5, max_depth=4, random_state=3
            ),
            seed=5,
        )
        for context in ("stationary", "moving"):
            server.upload_features("owner", matrix("owner", 0.0, context=context, seed=1))
            server.upload_features("other1", matrix("other1", 3.0, context=context, seed=2))
        bundle = server.train_authentication_models("owner")
        rebuilt = ModelRegistry().roundtrip(bundle)
        probe = np.random.default_rng(6).normal(0.0, 2.0, size=(40, 5))
        for context in bundle.models:
            np.testing.assert_array_equal(
                bundle.models[context].decision_scores(probe),
                rebuilt.models[context].decision_scores(probe),
            )
            np.testing.assert_array_equal(
                bundle.models[context].predict_legitimate(probe),
                rebuilt.models[context].predict_legitimate(probe),
            )

    def test_payload_kind_is_validated(self):
        with pytest.raises(ValueError, match="does not describe"):
            bundle_from_payload({"kind": "something-else"})

    def test_payload_cannot_import_arbitrary_modules(self, bundle):
        """Tampered payloads must not trigger imports outside the library."""
        payload = bundle_to_payload(bundle)
        for entry in payload["models"].values():
            entry["classifier"]["__estimator__"] = "os.path:join"
        import repro.utils.serialization as serialization

        hostile = serialization.loads(serialization.dumps(payload))
        with pytest.raises(ValueError, match="only\\s+reference classes from the repro package"):
            bundle_from_payload(hostile)

    def test_payload_classifier_type_is_validated(self, bundle):
        payload = bundle_to_payload(bundle)
        for entry in payload["models"].values():
            # A scaler is a valid repro estimator but not a classifier.
            entry["classifier"] = entry["scaler"]
        with pytest.raises(ValueError, match="invalid classifier"):
            bundle_from_payload(payload)


class TestPersistence:
    def test_publish_persists_and_load_rehydrates(self, server, bundle, tmp_path):
        registry = ModelRegistry(root=tmp_path / "models")
        record = registry.publish(bundle)
        assert record.path is not None and record.path.exists()

        fresh = ModelRegistry(root=tmp_path / "models")
        assert fresh.load() == 1
        reloaded = fresh.bundle_for("owner")
        probe = np.random.default_rng(5).normal(0.0, 2.0, size=(32, 5))
        for context in bundle.models:
            np.testing.assert_array_equal(
                bundle.models[context].decision_scores(probe),
                reloaded.models[context].decision_scores(probe),
            )

    def test_rollback_survives_reload(self, server, tmp_path):
        """A rolled-back version must stay retired across restarts."""
        registry = ModelRegistry(root=tmp_path / "models")
        server.registry = registry
        server.train_authentication_models("owner")
        server.retrain("owner", matrix("owner", 0.2, seed=9))
        registry.rollback("owner")
        assert registry.latest_version("owner") == 1

        fresh = ModelRegistry(root=tmp_path / "models")
        assert fresh.load() == 2
        assert fresh.latest_version("owner") == 1
        assert fresh.active_versions("owner") == [1]
        # The retired version is still addressable explicitly.
        assert fresh.bundle_for("owner", version=2).version == 2

    def test_retraining_resumes_versions_after_reload(self, tmp_path):
        """A restarted server must not re-publish an existing version."""
        def make_server(registry):
            fresh = AuthenticationServer(seed=5, registry=registry)
            for context in ("stationary", "moving"):
                fresh.upload_features("owner", matrix("owner", 0.0, context=context, seed=1))
                fresh.upload_features("other1", matrix("other1", 3.0, context=context, seed=2))
            return fresh

        first_registry = ModelRegistry(root=tmp_path)
        make_server(first_registry).train_authentication_models("owner")
        assert first_registry.versions("owner") == [1]

        # Simulate a process restart: fresh server, registry rehydrated.
        second_registry = ModelRegistry(root=tmp_path)
        second_registry.load()
        restarted = make_server(second_registry)
        bundle = restarted.retrain("owner", matrix("owner", 0.2, seed=9))
        assert bundle.version == 2
        assert second_registry.versions("owner") == [1, 2]

    def test_load_without_root_raises(self):
        with pytest.raises(RuntimeError, match="persistence root"):
            ModelRegistry().load()

    def test_load_is_idempotent(self, bundle, tmp_path):
        registry = ModelRegistry(root=tmp_path)
        registry.publish(bundle)
        assert registry.load() == 0  # already registered in memory
        assert bundle_to_payload(bundle)["version"] == 1
