"""Unit tests for the fused-stack cache in :mod:`repro.core.scoring`."""

import numpy as np
import pytest

from repro.core.scoring import FusedStackCache, FusedStacks
from repro.ml.base import LinearDecisionRule


def rule(d=3, seed=0):
    rng = np.random.default_rng(seed)
    return LinearDecisionRule(
        mean=rng.normal(0.0, 1.0, d),
        scale=np.abs(rng.normal(1.0, 0.1, d)),
        x_offset=rng.normal(0.0, 1.0, d),
        coef=rng.normal(0.0, 1.0, d),
        y_offset=float(rng.normal()),
        sign=1.0 if seed % 2 == 0 else -1.0,
        accept_on_nonnegative=seed % 2 == 0,
    )


def sorted_rules(*seeds, d=3):
    return sorted((rule(d=d, seed=seed) for seed in seeds), key=id)


class TestFusedStacks:
    def test_build_stacks_parameters_row_per_rule(self):
        rules = sorted_rules(1, 2, 3)
        stacks = FusedStacks.build(rules)
        assert stacks.mean.shape == (3, 3)
        assert stacks.coef.shape == (3, 3)
        assert stacks.y_offset.shape == (3,)
        for index, one in enumerate(rules):
            np.testing.assert_array_equal(stacks.mean[index], one.mean)
            np.testing.assert_array_equal(stacks.coef[index], one.coef)
            assert stacks.position_by_id[id(one)] == index


class TestFusedStackCache:
    def test_same_rule_set_hits_and_returns_the_same_entry(self):
        cache = FusedStackCache()
        rules = sorted_rules(1, 2)
        first = cache.stacks_for(rules)
        second = cache.stacks_for(rules)
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_different_rule_sets_occupy_different_entries(self):
        cache = FusedStackCache()
        a, b = sorted_rules(1, 2), sorted_rules(3, 4)
        assert cache.stacks_for(a) is not cache.stacks_for(b)
        assert len(cache) == 2
        assert cache.misses == 2

    def test_lru_eviction_bounds_the_entry_count(self):
        cache = FusedStackCache(max_entries=2)
        sets = [sorted_rules(seed) for seed in (1, 2, 3)]
        entries = [cache.stacks_for(rules) for rules in sets]
        assert len(cache) == 2
        # The oldest set (index 0) was evicted; re-requesting it misses and
        # rebuilds, while the newer two still hit.
        assert cache.stacks_for(sets[1]) is entries[1]
        rebuilt = cache.stacks_for(sets[0])
        assert rebuilt is not entries[0]
        assert cache.misses == 4
        assert cache.hits == 1

    def test_entries_keep_rules_alive_for_key_stability(self):
        import gc

        cache = FusedStackCache()
        entry = cache.stacks_for(sorted_rules(7, 8))  # rules local to the call
        gc.collect()
        # The entry's strong refs keep the rules (and their ids) alive, so
        # the same key still resolves to the same stacks.
        assert cache.stacks_for(sorted(entry.rules, key=id)) is entry
        assert cache.hits == 1

    def test_clear_drops_entries_but_keeps_statistics(self):
        cache = FusedStackCache()
        rules = sorted_rules(1)
        cache.stacks_for(rules)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        cache.stacks_for(rules)
        assert cache.misses == 2

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            FusedStackCache(max_entries=0)
