"""Property-based fuzzing of the wirebin codec (hypothesis).

The serving contract for hostile bytes: any truncation, bit-flip or
header mutation of a valid frame either parses into a well-formed frame
or raises a **typed ValueError** — never any other exception, never a
partial dispatch.  The transport then maps that ValueError to a typed
HTTP 400, so no crafted payload can surface a stack trace (or a 500)
from the binary endpoint.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service import wirebin
from repro.service.envelope import SCOPE_DATA_WRITE
from repro.service.frontend import ServiceFrontend
from repro.service.protocol import (
    AuthenticateRequest,
    ColumnarAuthResult,
    EnrollRequest,
    EnrollResponse,
)
from repro.service.transport import V2_REQUESTS_PATH, ServiceHTTPServer

API_KEY = "fuzz-test-key"


def _auth_frame():
    rng = np.random.default_rng(3)
    requests = [
        AuthenticateRequest(
            user_id=f"user-{i}",
            features=rng.normal(size=(2 + i % 2, 4)),
            contexts=tuple(
                CoarseContext("moving" if j % 2 else "stationary")
                for j in range(2 + i % 2)
            ),
        )
        for i in range(4)
    ]
    return wirebin.encode_request_frame(requests, api_key=API_KEY, frame_id="fz-a")


def _enroll_frame():
    rng = np.random.default_rng(4)
    requests = [
        EnrollRequest(
            user_id=f"user-{i}",
            matrix=FeatureMatrix(
                values=rng.normal(size=(3, 4)),
                feature_names=[f"f{k}" for k in range(4)],
                user_ids=[f"user-{i}"] * 3,
                contexts=["stationary"] * 3,
            ),
        )
        for i in range(3)
    ]
    return wirebin.encode_request_frame(requests, api_key=API_KEY, frame_id="fz-e")


def _response_frame():
    result = ColumnarAuthResult(
        user_ids=("user-0", "user-1"),
        scores=np.asarray([0.25, 0.75, 0.5]),
        accepted=np.asarray([True, False, True]),
        model_context_codes=np.asarray([0, 1, 0], dtype=np.int64),
        lengths=np.asarray([2, 1], dtype=np.int64),
        model_versions=np.asarray([1, 1], dtype=np.int64),
        errors={},
    )
    return wirebin.encode_columnar_response(result, "fz-r", "caller")


AUTH_FRAME = _auth_frame()
ENROLL_FRAME = _enroll_frame()
RESPONSE_FRAME = _response_frame()

frame_choice = st.sampled_from(["auth", "enroll"])
_FRAMES = {"auth": AUTH_FRAME, "enroll": ENROLL_FRAME}


def _decode_never_crashes(data):
    """Decode must yield a frame or ValueError; anything else fails."""
    try:
        frame = wirebin.decode_request_frame(data)
    except ValueError:
        return None
    assert frame.n_requests >= 1
    return frame


class TestRequestFrameFuzz:
    @settings(max_examples=200, deadline=None)
    @given(which=frame_choice, data=st.data())
    def test_any_truncation_raises_typed_value_error(self, which, data):
        frame = _FRAMES[which]
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(ValueError):
            wirebin.decode_request_frame(frame[:cut])

    @settings(max_examples=300, deadline=None)
    @given(which=frame_choice, data=st.data())
    def test_single_bit_flips_parse_or_value_error(self, which, data):
        frame = _FRAMES[which]
        position = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        mutated = bytearray(frame)
        mutated[position] ^= mask
        _decode_never_crashes(bytes(mutated))

    @settings(max_examples=200, deadline=None)
    @given(which=frame_choice, data=st.data())
    def test_mutated_header_regions_parse_or_value_error(self, which, data):
        # The JSON header sits right after the 16-byte prelude; splicing
        # arbitrary bytes over it is the adversarial case for the header
        # field validators.
        frame = _FRAMES[which]
        start = data.draw(st.integers(min_value=16, max_value=len(frame) - 1))
        junk = data.draw(st.binary(min_size=1, max_size=32))
        mutated = frame[:start] + junk + frame[start + len(junk) :]
        _decode_never_crashes(mutated[: len(frame)])

    @settings(max_examples=100, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=64))
    def test_arbitrary_bytes_never_crash_the_decoder(self, junk):
        try:
            wirebin.decode_request_frame(junk)
        except ValueError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(extra=st.binary(min_size=1, max_size=16))
    def test_trailing_garbage_is_rejected(self, extra):
        # decode_request_frame demands exactly one frame: appended bytes
        # must never silently ride along.
        with pytest.raises(ValueError):
            wirebin.decode_request_frame(AUTH_FRAME + extra)


class TestResponseFrameFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_client_side_decode_is_equally_hardened(self, data):
        position = data.draw(
            st.integers(min_value=0, max_value=len(RESPONSE_FRAME) - 1)
        )
        mask = data.draw(st.integers(min_value=1, max_value=255))
        mutated = bytearray(RESPONSE_FRAME)
        mutated[position] ^= mask
        try:
            frames = wirebin.decode_response_frames(bytes(mutated))
        except ValueError:
            return
        assert len(frames) == 1

    def test_empty_stream_decodes_to_zero_frames(self):
        # EOF at a frame boundary is a legal stream end, not corruption.
        assert wirebin.decode_response_frames(b"") == []

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_truncated_responses_raise_typed_value_error(self, data):
        # Any cut strictly inside the frame (past byte 0) is torn.
        cut = data.draw(
            st.integers(min_value=1, max_value=len(RESPONSE_FRAME) - 1)
        )
        with pytest.raises(ValueError):
            wirebin.decode_response_frames(RESPONSE_FRAME[:cut])


@pytest.fixture(scope="module")
def server():
    server = ServiceHTTPServer(ServiceFrontend(), port=0)
    server.callers.register("fuzz-caller", (SCOPE_DATA_WRITE,), api_key=API_KEY)
    server.serve_background()
    yield server
    server.shutdown()
    server.server_close()


def _post_binary(port, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{V2_REQUESTS_PATH}",
        data=body,
        headers={"Content-Type": wirebin.CONTENT_TYPE},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestCorruptFramesOverHTTP:
    """Corrupt frames at the transport answer typed 400s, never a 500."""

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda frame: frame[: len(frame) // 2],
            lambda frame: b"XXXX" + frame[4:],
            lambda frame: frame[:20] + b"\xff" * 8 + frame[28:],
            lambda frame: b"not a frame at all",
        ],
        ids=["truncated", "bad-magic", "mangled-header", "garbage"],
    )
    def test_corruption_maps_to_typed_400(self, server, mutate):
        body = mutate(AUTH_FRAME)
        status, data = _post_binary(server.port, body)
        assert status == 400
        payload = json.loads(data)
        assert payload["error"] in ("ValueError", "JSONDecodeError")
        assert payload["message"]
        assert server.telemetry.counter_value("transport.server_errors") == 0

    def test_empty_upload_answers_an_empty_stream(self, server):
        status, data = _post_binary(server.port, b"")
        assert status == 200
        assert data == b""
