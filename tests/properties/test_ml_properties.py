"""Property-based tests (hypothesis) for the ML substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.kernels import rbf_kernel
from repro.ml.metrics import accuracy_score, authentication_metrics, confusion_matrix
from repro.ml.preprocessing import MinMaxScaler, StandardScaler

# Bounded, finite feature matrices with at least 8 rows and 2 columns.
feature_matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(8, 30), st.integers(2, 6)),
    elements=st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False),
)


@st.composite
def binary_datasets(draw):
    """A finite feature matrix plus a two-class label vector."""
    X = draw(feature_matrices)
    n = X.shape[0]
    half = n // 2
    y = np.array(["a"] * half + ["b"] * (n - half))
    return X, y


class TestKernelRidgeProperties:
    @given(binary_datasets())
    @settings(max_examples=25, deadline=None)
    def test_primal_and_dual_solutions_agree(self, dataset):
        """The Appendix identity holds for arbitrary finite training data."""
        X, y = dataset
        primal = KernelRidgeClassifier(solver="primal", ridge=1.0).fit(X, y)
        dual = KernelRidgeClassifier(solver="dual", ridge=1.0).fit(X, y)
        np.testing.assert_allclose(
            primal.decision_function(X), dual.decision_function(X), atol=1e-6, rtol=1e-6
        )

    @given(binary_datasets())
    @settings(max_examples=25, deadline=None)
    def test_predictions_are_training_labels(self, dataset):
        X, y = dataset
        model = KernelRidgeClassifier().fit(X, y)
        assert set(model.predict(X)) <= set(y)

    @given(feature_matrices)
    @settings(max_examples=25, deadline=None)
    def test_rbf_kernel_is_positive_and_bounded(self, X):
        gram = rbf_kernel(X, X, gamma=0.3)
        # Entries can underflow to exactly zero for very distant points, so the
        # invariant is non-negativity plus the unit upper bound and symmetry.
        assert np.all(gram >= 0.0) and np.all(gram <= 1.0 + 1e-12)
        np.testing.assert_allclose(np.diag(gram), 1.0, atol=1e-12)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)


class TestScalerProperties:
    @given(feature_matrices)
    @settings(max_examples=30, deadline=None)
    def test_standard_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)

    @given(feature_matrices)
    @settings(max_examples=30, deadline=None)
    def test_minmax_output_in_unit_interval(self, X):
        transformed = MinMaxScaler().fit_transform(X)
        assert transformed.min() >= -1e-12 and transformed.max() <= 1.0 + 1e-12


label_vectors = st.lists(st.sampled_from(["legit", "other"]), min_size=4, max_size=60).filter(
    lambda labels: "legit" in labels and "other" in labels
)


class TestMetricProperties:
    @given(label_vectors, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_authentication_metrics_bounded(self, y_true, rng):
        y_pred = [rng.choice(["legit", "other"]) for _ in y_true]
        metrics = authentication_metrics(y_true, y_pred, "legit")
        assert 0.0 <= metrics.frr <= 1.0
        assert 0.0 <= metrics.far <= 1.0
        assert 0.0 <= metrics.accuracy <= 1.0

    @given(label_vectors)
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_is_perfect_accuracy(self, y_true):
        assert accuracy_score(y_true, list(y_true)) == 1.0
        metrics = authentication_metrics(y_true, list(y_true), "legit")
        assert metrics.frr == 0.0 and metrics.far == 0.0

    @given(label_vectors, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_confusion_matrix_total_equals_sample_count(self, y_true, rng):
        y_pred = [rng.choice(["legit", "other"]) for _ in y_true]
        matrix, _ = confusion_matrix(y_true, y_pred)
        assert matrix.sum() == len(y_true)
