"""Property-based tests (hypothesis) for mergeable histogram invariants.

The whole point of fixed-bucket histograms is that aggregation commutes:
snapshotting two shard workers and merging their counts must answer the
exact same quantiles as one histogram that saw the combined stream.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.telemetry import Histogram

# Positive latencies spanning the full bucket range (sub-µs to overflow).
latencies = st.floats(
    min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False
)
latency_lists = st.lists(latencies, min_size=0, max_size=200)
quantiles = st.sampled_from([0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0])


def _filled(name, values):
    histogram = Histogram(name)
    for value in values:
        histogram.record(value)
    return histogram


@settings(max_examples=150, deadline=None)
@given(left=latency_lists, right=latency_lists, q=quantiles)
def test_merged_snapshots_equal_combined_histogram(left, right, q):
    combined = _filled("combined", left + right)
    merged = Histogram.from_snapshot(
        "left", _filled("left", left).snapshot()
    ).merge(Histogram.from_snapshot("right", _filled("right", right).snapshot()))
    assert merged.bucket_counts == combined.bucket_counts
    assert merged.count == combined.count
    assert merged.max_seconds == combined.max_seconds
    # Quantiles of the merged counts equal quantiles of the combined
    # stream exactly: both reduce to the same bucket arithmetic.  (Only
    # total_s may differ in the last ulp — float addition commutes but
    # does not associate.)
    assert merged.quantile(q) == combined.quantile(q)
    assert merged.total_seconds == pytest.approx(combined.total_seconds)
    merged_summary, combined_summary = merged.summary(), combined.summary()
    for key in ("count", "p50_s", "p95_s", "p99_s", "max_s"):
        assert merged_summary[key] == combined_summary[key]


@settings(max_examples=150, deadline=None)
@given(values=latency_lists, q=quantiles)
def test_merge_is_commutative_and_identity_preserving(values, q):
    empty = Histogram("empty")
    filled = _filled("filled", values)
    merged = Histogram.from_snapshot("copy", filled.snapshot()).merge(empty)
    assert merged.bucket_counts == filled.bucket_counts
    assert merged.quantile(q) == filled.quantile(q)


@settings(max_examples=100, deadline=None)
@given(values=latency_lists)
def test_snapshot_survives_json_and_quantiles_are_bounded(values):
    histogram = _filled("op", values)
    rebuilt = Histogram.from_snapshot(
        "op", json.loads(json.dumps(histogram.snapshot()))
    )
    assert rebuilt.bucket_counts == histogram.bucket_counts
    if values:
        assert 0.0 <= rebuilt.quantile(50.0) <= max(values)
        assert rebuilt.quantile(100.0) == max(values)
    else:
        assert rebuilt.quantile(50.0) == 0.0
