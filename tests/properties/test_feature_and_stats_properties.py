"""Property-based tests for the feature pipeline and statistics substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst
from scipy import stats as scipy_stats

from repro.features.frequency_domain import frequency_domain_features
from repro.features.time_domain import time_domain_features
from repro.sensors.sampling import window_starts
from repro.stats.correlation import pearson_correlation
from repro.stats.fisher import fisher_score
from repro.stats.ks import ks_two_sample
from repro.utils.serialization import dumps, loads

finite_signals = npst.arrays(
    dtype=np.float64,
    shape=st.integers(8, 400),
    elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
)


class TestTimeDomainProperties:
    @given(finite_signals)
    @settings(max_examples=50, deadline=None)
    def test_statistics_are_internally_consistent(self, signal):
        features = time_domain_features(signal, features=("mean", "var", "max", "min", "range"))
        tolerance = 1e-9 * max(1.0, abs(features["max"]), abs(features["min"]))
        assert features["min"] - tolerance <= features["mean"] <= features["max"] + tolerance
        assert features["range"] == features["max"] - features["min"]
        assert features["var"] >= 0.0

    @given(finite_signals, st.floats(-5.0, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_mean_shift_equivariance(self, signal, shift):
        base = time_domain_features(signal)
        shifted = time_domain_features(signal + shift)
        assert shifted["mean"] == np.float64(base["mean"] + shift) or abs(
            shifted["mean"] - base["mean"] - shift
        ) < 1e-6
        assert abs(shifted["var"] - base["var"]) < 1e-6


class TestFrequencyDomainProperties:
    @given(finite_signals)
    @settings(max_examples=50, deadline=None)
    def test_peaks_are_ordered_and_frequencies_bounded(self, signal):
        features = frequency_domain_features(
            signal, sampling_rate=50.0, features=("peak", "peak_f", "peak2", "peak2_f")
        )
        assert features["peak"] >= features["peak2"] >= 0.0
        assert 0.0 <= features["peak_f"] <= 25.0
        assert 0.0 <= features["peak2_f"] <= 25.0


class TestWindowingProperties:
    @given(st.integers(1, 500), st.integers(1, 100), st.integers(1, 100))
    @settings(max_examples=80, deadline=None)
    def test_windows_fit_inside_stream(self, n_samples, window_samples, step):
        starts = window_starts(n_samples, window_samples, step)
        if len(starts):
            assert starts[-1] + window_samples <= n_samples
            assert np.all(np.diff(starts) == step)


class TestStatsProperties:
    @given(finite_signals, finite_signals)
    @settings(max_examples=40, deadline=None)
    def test_ks_statistic_matches_scipy(self, a, b):
        ours = ks_two_sample(a, b)
        reference = scipy_stats.ks_2samp(a, b)
        assert abs(ours.statistic - reference.statistic) < 1e-9
        assert 0.0 <= ours.pvalue <= 1.0

    @given(finite_signals)
    @settings(max_examples=40, deadline=None)
    def test_ks_of_sample_with_itself_accepts_null(self, a):
        result = ks_two_sample(a, a)
        assert result.statistic == 0.0 and result.pvalue > 0.9

    @given(finite_signals)
    @settings(max_examples=40, deadline=None)
    def test_correlation_is_symmetric_and_bounded(self, signal):
        other = np.roll(signal, 1)
        forward = pearson_correlation(signal, other)
        backward = pearson_correlation(other, signal)
        assert abs(forward - backward) < 1e-9
        assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9

    @given(
        npst.arrays(
            dtype=np.float64,
            shape=st.integers(8, 60),
            elements=st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fisher_score_is_non_negative(self, values):
        half = len(values) // 2
        labels = ["a"] * half + ["b"] * (len(values) - half)
        assert fisher_score(values, labels) >= 0.0


class TestSerializationProperties:
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(-1000, 1000),
                st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
                st.text(max_size=12),
                st.booleans(),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip_is_identity(self, payload):
        assert loads(dumps(payload)) == payload
