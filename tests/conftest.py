"""Shared fixtures: small synthetic populations, datasets and deployments.

Everything here is session-scoped and deterministic so the full suite stays
fast while individual tests remain independent of execution order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SmarterYouConfig
from repro.core.context import ContextDetector
from repro.core.system import SmarterYou
from repro.datasets.collection import collect_free_form_dataset, collect_lab_context_dataset
from repro.datasets.population import build_study_population
from repro.devices.cloud import AuthenticationServer
from repro.sensors.behavior import sample_profile
from repro.sensors.generators import SensorStreamGenerator
from repro.sensors.types import Context, DeviceType


@pytest.fixture(scope="session")
def population():
    """A five-user synthetic population."""
    return build_study_population(n_users=5, seed=123)


@pytest.fixture(scope="session")
def free_form_dataset(population):
    """A small free-form dataset: both devices, both coarse contexts."""
    return collect_free_form_dataset(
        population, session_duration=72.0, sessions_per_context=1, seed=9
    )


@pytest.fixture(scope="session")
def lab_dataset(population):
    """A small lab dataset covering all four fine contexts (phone only)."""
    return collect_lab_context_dataset(population, session_duration=60.0, seed=10)


@pytest.fixture(scope="session")
def profile():
    """A single behavioural profile used by sensor-level tests."""
    return sample_profile("alice", seed=1)


@pytest.fixture(scope="session")
def second_profile():
    """A different behavioural profile (for impostor scenarios)."""
    return sample_profile("bob", seed=2)


@pytest.fixture(scope="session")
def moving_recording(profile):
    """A 30-second smartphone recording of the user walking (all sensors)."""
    generator = SensorStreamGenerator(profile, seed=5)
    return generator.generate(DeviceType.SMARTPHONE, Context.MOVING, duration=30.0)


@pytest.fixture(scope="session")
def stationary_recording(profile):
    """A 30-second smartphone recording of the user sitting (all sensors)."""
    generator = SensorStreamGenerator(profile, seed=6)
    return generator.generate(DeviceType.SMARTPHONE, Context.HANDHELD_STATIC, duration=30.0)


@pytest.fixture(scope="session")
def small_config():
    """A SmarterYou configuration scaled for fast tests."""
    return SmarterYouConfig(target_enrollment_windows=10)


@pytest.fixture(scope="session")
def deployed_system(population, free_form_dataset, lab_dataset, small_config):
    """A fully trained SmarterYou deployment protecting the first user."""
    owner = population[0]
    phone_matrix = lab_dataset.device_matrix(
        DeviceType.SMARTPHONE, small_config.window_seconds, spec=small_config.phone_feature_spec
    )
    detector = ContextDetector(spec=small_config.phone_feature_spec)
    detector.fit(phone_matrix, exclude_user=owner.user_id)
    server = AuthenticationServer(seed=99)
    system = SmarterYou(config=small_config, server=server, context_detector=detector)
    system.contribute_other_users(free_form_dataset, exclude=owner.user_id)
    system.enroll(owner.user_id, free_form_dataset.sessions_for(owner.user_id))
    return system


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(321)
