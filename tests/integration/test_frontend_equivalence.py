"""Frontend micro-batched decisions == per-window authenticator decisions.

The acceptance bar for the micro-batching frontend: coalescing many users'
authenticate requests into one fused/vectorized pass must not change a
single decision relative to the seed's per-window
:meth:`~repro.core.authenticator.ContextualAuthenticator.authenticate`
path — across every classifier family the cloud server can train.

Accept/reject decisions are bit-for-bit identical for *all* families.
Confidence scores are bit-for-bit identical for every family whose scoring
is batch-size invariant (the paper's linear kernel ridge in both solvers,
linear SVM, logistic/linear regression, random forests); non-linear kernel
ridge computes its kernel matrix with BLAS, whose accumulation order varies
with batch size, so its scores agree only to float rounding (asserted to
1e-12 here).
"""

import numpy as np
import pytest

from repro.core.authenticator import ContextualAuthenticator
from repro.devices.cloud import AuthenticationServer
from repro.features.vector import FeatureMatrix
from repro.ml.forest import RandomForestClassifier
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.linear import LinearRegressionClassifier, LogisticRegressionClassifier
from repro.ml.svm import LinearSVMClassifier
from repro.sensors.types import CoarseContext
from repro.service.frontend import ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse

#: (family id, classifier factory, scores bit-exact?).
FAMILIES = [
    ("krr-linear-primal", lambda: KernelRidgeClassifier(ridge=1.0, kernel="linear", solver="primal"), True),
    ("krr-linear-dual", lambda: KernelRidgeClassifier(ridge=1.0, kernel="linear", solver="dual"), True),
    ("krr-rbf", lambda: KernelRidgeClassifier(ridge=1.0, kernel="rbf", gamma=0.3), False),
    ("linear-svm", lambda: LinearSVMClassifier(n_iterations=120), True),
    ("logistic-regression", lambda: LogisticRegressionClassifier(), True),
    ("linear-regression", lambda: LinearRegressionClassifier(), True),
    ("random-forest", lambda: RandomForestClassifier(n_estimators=10, max_depth=6, random_state=3), True),
]

USERS = {"owner": 0.0, "peer": 3.0, "rival": 5.0}


def matrix(uid, mean, n=25, d=6, context="stationary", seed=0):
    rng = np.random.default_rng(seed)
    return FeatureMatrix(
        values=rng.normal(mean, 1.0, size=(n, d)),
        feature_names=[f"f{i}" for i in range(d)],
        user_ids=[uid] * n,
        contexts=[context] * n,
    )


def build_frontend(classifier_factory):
    gateway = AuthenticationGateway(
        server=AuthenticationServer(seed=2, classifier_factory=classifier_factory)
    )
    for seed_offset, (uid, mean) in enumerate(USERS.items()):
        for context in ("stationary", "moving"):
            gateway.enroll(
                uid,
                matrix(uid, mean, context=context, seed=seed_offset + 1),
                train=False,
            )
    for uid in USERS:
        gateway.train(uid)
    return ServiceFrontend(gateway)


def probe_requests(rng):
    """A fleet-shaped burst: several users, repeats, mixed contexts."""
    requests = []
    for uid, mean in USERS.items():
        features = rng.normal(mean, 2.0, size=(40, 6))
        contexts = tuple(
            CoarseContext.MOVING if i % 3 == 0 else CoarseContext.STATIONARY
            for i in range(40)
        )
        requests.append(
            AuthenticateRequest(user_id=uid, features=features, contexts=contexts)
        )
    # Repeat requests for one user so coalescing spans duplicates too.
    requests.append(
        AuthenticateRequest(
            user_id="owner",
            features=rng.normal(0.0, 2.0, size=(7, 6)),
            contexts=(CoarseContext.STATIONARY,) * 7,
        )
    )
    return requests


@pytest.mark.parametrize(
    "family, classifier_factory, scores_bitexact",
    FAMILIES,
    ids=[family for family, _, _ in FAMILIES],
)
def test_micro_batched_decisions_match_per_window_path(
    family, classifier_factory, scores_bitexact
):
    frontend = build_frontend(classifier_factory)
    requests = probe_requests(np.random.default_rng(17))
    responses = frontend.submit_many(requests)
    assert frontend.telemetry.counter_value("frontend.coalesced_batches") == 1
    for request, response in zip(requests, responses):
        assert isinstance(response, AuthenticationResponse), (
            f"{family}: {response}"
        )
        bundle = frontend.gateway.registry.bundle_for(request.user_id)
        authenticator = ContextualAuthenticator(bundle)
        for index in range(len(request.features)):
            decision = authenticator.authenticate(
                request.features[index], request.contexts[index]
            )
            assert decision.accepted == bool(response.accepted[index]), (
                f"{family}: decision flip at window {index} for "
                f"{request.user_id!r}"
            )
            assert decision.context == response.result.model_contexts[index]
            if scores_bitexact:
                assert decision.confidence_score == response.scores[index], (
                    f"{family}: score drift at window {index} for "
                    f"{request.user_id!r}"
                )
            else:
                assert decision.confidence_score == pytest.approx(
                    response.scores[index], abs=1e-12
                )


def test_fused_pass_actually_engages_for_affine_families():
    """The paper's configuration must take the fused path, not the fallback."""
    frontend = build_frontend(
        lambda: KernelRidgeClassifier(ridge=1.0, kernel="linear", solver="auto")
    )
    bundle = frontend.gateway.registry.bundle_for("owner")
    for model in bundle.models.values():
        rule = model.decision_rule()
        assert rule is not None
        # The rule reproduces the model's own scoring bit-for-bit.
        rows = np.random.default_rng(5).normal(0.0, 2.0, size=(9, 6))
        raw = (
            np.einsum("ij,j->i", (rows - rule.mean) / rule.scale - rule.x_offset, rule.coef)
            + rule.y_offset
        )
        scores, accepted = model.batch_decisions(rows)
        np.testing.assert_array_equal(rule.sign * raw, scores)
        np.testing.assert_array_equal(
            raw >= 0.0 if rule.accept_on_nonnegative else raw < 0.0, accepted
        )


def test_forest_models_have_no_affine_rule():
    frontend = build_frontend(
        lambda: RandomForestClassifier(n_estimators=5, max_depth=4, random_state=1)
    )
    bundle = frontend.gateway.registry.bundle_for("owner")
    for model in bundle.models.values():
        assert model.decision_rule() is None
