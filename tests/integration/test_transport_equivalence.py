"""Transport/API equivalence: /v1, /v2 and in-process decisions agree.

The ISSUE 3 acceptance bar: for a 500-user fleet, authentication decisions
served over the HTTP transport must be bit-for-bit identical to dispatching
the same requests in process — through ``AuthenticationGateway.handle()``
and through the coalescing ``ServiceFrontend.submit_many()`` alike — and
the whole fleet lifecycle must be able to run over real sockets.

The ISSUE 4 acceptance bar extends it across API revisions: the same
fleet's decisions must be bit-for-bit identical over the legacy ``/v1``
endpoint, the enveloped ``/v2`` endpoints (authenticated caller, sealed
responses) and in-process dispatch — and the whole lifecycle must produce
identical reports over all three doors.
"""

import numpy as np
import pytest

from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.frontend import MicroBatchQueue
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse
from repro.service.transport import ServiceClient, ServiceHTTPServer

FLEET_USERS = 500


@pytest.fixture(scope="module")
def fleet():
    """An enrolled-and-trained 500-user fleet (shared across tests)."""
    simulator = FleetSimulator(FleetConfig(n_users=FLEET_USERS, seed=11))
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator


@pytest.fixture(scope="module")
def probes(fleet):
    """Per-user probe requests: half detected contexts, half device-reported."""
    rng = np.random.default_rng(99)
    requests = []
    for index, user in enumerate(fleet.users):
        probe = user.sample_windows(3, fleet.config.window_noise, rng, fleet.feature_names)
        if index % 2:
            contexts = tuple(CoarseContext(label) for label in probe.contexts)
        else:
            contexts = None  # the service detects these server-side
        requests.append(
            AuthenticateRequest(
                user_id=user.user_id, features=probe.values, contexts=contexts
            )
        )
    return requests


class TestTransportEquivalence:
    def test_wire_decisions_bit_for_bit_identical_to_in_process(self, fleet, probes):
        in_process = fleet.frontend.submit_many(probes)
        with ServiceHTTPServer(fleet.frontend) as server:
            with ServiceClient(port=server.port) as client:
                over_the_wire = client.submit_many(probes)
        assert len(over_the_wire) == FLEET_USERS
        for request, local, remote in zip(probes, in_process, over_the_wire):
            assert isinstance(remote, AuthenticationResponse)
            assert remote.user_id == request.user_id
            np.testing.assert_array_equal(remote.scores, local.scores)
            np.testing.assert_array_equal(remote.accepted, local.accepted)
            assert remote.result.model_contexts == local.result.model_contexts
            assert remote.model_version == local.model_version

    def test_wire_decisions_match_gateway_handle_per_request(self, fleet, probes):
        """Transport == the untouched backend dispatcher, one user at a time."""
        sample = probes[::50]  # every 50th user keeps the HTTP round-trips sane
        with ServiceHTTPServer(fleet.frontend) as server:
            with ServiceClient(port=server.port) as client:
                for request in sample:
                    local = fleet.gateway.handle(request)
                    remote = client.submit(request)
                    assert isinstance(remote, AuthenticationResponse)
                    np.testing.assert_array_equal(remote.scores, local.scores)
                    np.testing.assert_array_equal(remote.accepted, local.accepted)

    def test_wire_decisions_identical_through_the_microbatch_queue(self, fleet, probes):
        """Cross-connection coalescing must not change a single bit either."""
        sample = probes[::25]
        in_process = fleet.frontend.submit_many(sample)
        queue = MicroBatchQueue(fleet.frontend, max_batch=64, max_delay_s=0.005)
        with ServiceHTTPServer(fleet.frontend, queue=queue) as server:
            with ServiceClient(port=server.port) as client:
                for request, local in zip(sample, in_process):
                    remote = client.submit(request)
                    np.testing.assert_array_equal(remote.scores, local.scores)
                    np.testing.assert_array_equal(remote.accepted, local.accepted)


class TestV1V2Equivalence:
    def test_500_user_decisions_identical_over_v1_v2_and_in_process(self, fleet, probes):
        """The ISSUE 4 acceptance shape: three doors, zero bit differences."""
        in_process = fleet.frontend.submit_many(probes)
        with ServiceHTTPServer(fleet.frontend, callers=fleet.callers) as server:
            with ServiceClient(port=server.port) as v1_client:
                over_v1 = v1_client.submit_many(probes)
            with ServiceClient(port=server.port, api_key=fleet.api_key) as v2_client:
                over_v2 = v2_client.submit_many(probes)
        assert len(over_v1) == len(over_v2) == FLEET_USERS
        for local, v1_response, v2_response in zip(in_process, over_v1, over_v2):
            assert isinstance(v1_response, AuthenticationResponse)
            assert isinstance(v2_response, AuthenticationResponse)
            for remote in (v1_response, v2_response):
                np.testing.assert_array_equal(remote.scores, local.scores)
                np.testing.assert_array_equal(remote.accepted, local.accepted)
                assert remote.result.model_contexts == local.result.model_contexts
                assert remote.model_version == local.model_version

    def test_lifecycle_reports_identical_over_all_three_doors(self):
        """Same seed, three channels — the aggregate decisions match exactly."""
        reports = {}
        for door in ("in-process", "v1", "v2"):
            simulator = FleetSimulator(FleetConfig(n_users=60, seed=23))
            if door == "in-process":
                simulator.channel = simulator.frontend
                reports[door] = simulator.run()
                continue
            with ServiceHTTPServer(
                simulator.frontend, callers=simulator.callers
            ) as server:
                api_key = simulator.api_key if door == "v2" else None
                with ServiceClient(port=server.port, api_key=api_key) as client:
                    simulator.channel = client
                    reports[door] = simulator.run()
        baseline = reports["in-process"]
        for door in ("v1", "v2"):
            report = reports[door]
            assert report.legitimate_accept_rate == baseline.legitimate_accept_rate
            assert report.attack_reject_rate == baseline.attack_reject_rate
            assert (
                report.drifted_accept_rate_before_retrain
                == baseline.drifted_accept_rate_before_retrain
            )
            assert (
                report.drifted_accept_rate_after_retrain
                == baseline.drifted_accept_rate_after_retrain
            )
            assert report.trained_versions == baseline.trained_versions


class TestFleetLifecycleOverSockets:
    def test_full_lifecycle_runs_over_the_wire(self):
        """A (smaller) fleet's whole lifecycle driven through ServiceClient."""
        simulator = FleetSimulator(FleetConfig(n_users=60, seed=23))
        with ServiceHTTPServer(simulator.frontend) as server:
            with ServiceClient(port=server.port) as client:
                simulator.channel = client
                report = simulator.run()
        assert report.enrolled_users == 60
        assert report.legitimate_accept_rate > 0.85
        assert report.attack_reject_rate > 0.85
        assert report.drifted_accept_rate_after_retrain > report.drifted_accept_rate_before_retrain
        counters = report.telemetry["counters"]
        # Every protocol request crossed the transport.
        assert counters["transport.requests"] >= 5
        assert counters["frontend.coalesced_batches"] >= 1


class TestBinaryCodecEquivalence:
    """The ISSUE 5 acceptance bar: binary-HTTP decisions are bit-for-bit
    identical to JSON-HTTP and in-process dispatch, batched and streamed."""

    def test_500_user_decisions_identical_over_binary_http(self, fleet, probes):
        # A frame is homogeneous (one context mode); mixed batches fall
        # back to JSON, so split the probes into their two modes and check
        # both binary frames against the in-process reference.
        detected = [probe for probe in probes if probe.contexts is None]
        reported = [probe for probe in probes if probe.contexts is not None]
        with ServiceHTTPServer(fleet.frontend, callers=fleet.callers) as server:
            with ServiceClient(
                port=server.port, api_key=fleet.api_key, codec="binary"
            ) as client:
                for subset in (detected, reported):
                    in_process = fleet.frontend.submit_many(subset)
                    over_binary = client.submit_many(subset)
                    streamed = client.submit_stream(iter(subset), chunk_windows=64)
                    for local, remote, piped in zip(in_process, over_binary, streamed):
                        assert isinstance(remote, AuthenticationResponse)
                        for answer in (remote, piped):
                            np.testing.assert_array_equal(answer.scores, local.scores)
                            np.testing.assert_array_equal(
                                answer.accepted, local.accepted
                            )
                            assert (
                                answer.result.model_contexts
                                == local.result.model_contexts
                            )
                            assert answer.model_version == local.model_version

    def test_lifecycle_report_identical_over_the_binary_codec(self):
        """Same seed, binary channel — aggregate decisions match in-process."""
        baseline = FleetSimulator(FleetConfig(n_users=60, seed=23))
        baseline.channel = baseline.frontend
        baseline_report = baseline.run()

        simulator = FleetSimulator(FleetConfig(n_users=60, seed=23))
        with ServiceHTTPServer(simulator.frontend, callers=simulator.callers) as server:
            with ServiceClient(
                port=server.port, api_key=simulator.api_key, codec="binary"
            ) as client:
                simulator.channel = client
                report = simulator.run()
        assert report.legitimate_accept_rate == baseline_report.legitimate_accept_rate
        assert report.attack_reject_rate == baseline_report.attack_reject_rate
        assert (
            report.drifted_accept_rate_before_retrain
            == baseline_report.drifted_accept_rate_before_retrain
        )
        assert (
            report.drifted_accept_rate_after_retrain
            == baseline_report.drifted_accept_rate_after_retrain
        )
        assert report.trained_versions == baseline_report.trained_versions
        # The hot phases actually used binary frames, not a JSON fallback.
        counters = report.telemetry["counters"]
        assert counters.get("transport.binary_frames", 0) >= 4
