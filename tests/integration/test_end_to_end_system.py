"""Integration tests: the full SmarterYou pipeline from sensors to decisions."""

import numpy as np
import pytest

from repro.attacks.attackers import MimicryAttacker
from repro.attacks.evaluation import evaluate_detection_time
from repro.core.response import DeviceState
from repro.datasets.collection import collect_session
from repro.sensors.types import CoarseContext, Context


class TestEnrollmentAndAuthentication:
    def test_owner_windows_are_mostly_accepted(self, deployed_system, population, free_form_dataset):
        owner = population[0]
        fresh = collect_session(owner.profile, Context.MOVING, 60.0, seed=777)
        decisions = deployed_system.authenticate_session(fresh)
        assert len(decisions) == 10
        assert np.mean(decisions) >= 0.7

    def test_impostor_windows_are_mostly_rejected(self, deployed_system, population):
        impostor = population[2]
        fresh = collect_session(
            impostor.profile.with_user_id(impostor.user_id), Context.MOVING, 60.0, seed=778
        )
        decisions = deployed_system.authenticate_session(fresh)
        assert np.mean(decisions) <= 0.3

    def test_context_detection_matches_ground_truth(self, deployed_system, population):
        owner = population[0]
        moving = collect_session(owner.profile, Context.MOVING, 36.0, seed=779)
        stationary = collect_session(owner.profile, Context.HANDHELD_STATIC, 36.0, seed=780)
        moving_contexts = deployed_system.detect_contexts(moving)
        stationary_contexts = deployed_system.detect_contexts(stationary)
        assert np.mean([c is CoarseContext.MOVING for c in moving_contexts]) >= 0.8
        assert np.mean([c is CoarseContext.STATIONARY for c in stationary_contexts]) >= 0.8

    def test_confidence_scores_separate_owner_and_impostor(self, deployed_system, population):
        owner, impostor = population[0], population[3]
        owner_session = collect_session(owner.profile, Context.HANDHELD_STATIC, 48.0, seed=781)
        impostor_session = collect_session(
            impostor.profile.with_user_id(impostor.user_id), Context.HANDHELD_STATIC, 48.0, seed=782
        )
        owner_scores = deployed_system.confidence_trace(owner_session)
        impostor_scores = deployed_system.confidence_trace(impostor_session)
        assert float(np.mean(owner_scores)) > float(np.mean(impostor_scores))

    def test_enrollment_requires_prior_setup(self, deployed_system, population):
        with pytest.raises(RuntimeError):
            type(deployed_system)(
                config=deployed_system.config,
                server=deployed_system.server,
                context_detector=deployed_system.context_detector,
            ).authenticate_session(
                collect_session(population[0].profile, Context.MOVING, 12.0, seed=1)
            )


class TestResponseIntegration:
    def test_theft_locks_device_and_owner_can_recover(self, deployed_system, population):
        deployed_system.response.reset()
        # population[2] is a user whose motion clearly differs from the owner's,
        # so the scenario exercises the lockout path rather than the FAR tail.
        owner, thief = population[0], population[2]
        stolen = collect_session(
            thief.profile.with_user_id(thief.user_id), Context.MOVING, 60.0, seed=90
        )
        deployed_system.process_session(stolen, day=0.1)
        assert deployed_system.response.state is DeviceState.LOCKED
        # The rightful owner re-instates herself through explicit login and her
        # subsequent windows are predominantly accepted again.
        assert deployed_system.response.explicit_reauthentication(True) is DeviceState.UNLOCKED
        genuine = collect_session(owner.profile, Context.MOVING, 36.0, seed=91)
        outcomes = deployed_system.process_session(genuine, day=0.2)
        assert np.mean([outcome.decision.accepted for outcome in outcomes]) >= 0.6
        deployed_system.response.reset()


class TestMasqueradeIntegration:
    def test_mimicry_attackers_are_detected(self, deployed_system, population):
        victim = population[0]
        attackers = [
            MimicryAttacker(participant.profile, fidelity=0.5, seed=10 + index)
            for index, participant in enumerate(population)
            if participant.user_id != victim.user_id
        ]
        attacks = [
            attacker.attack(victim.profile, Context.MOVING, duration=60.0) for attacker in attackers
        ]
        timeline = evaluate_detection_time(deployed_system, attacks, window_seconds=6.0)
        assert timeline.fraction_detected_within(60.0) >= 0.75


class TestRetrainingIntegration:
    def test_retraining_swaps_in_new_model_version(self, deployed_system, population):
        owner = population[0]
        original_version = deployed_system.authenticator.version
        fresh = [
            collect_session(owner.profile, context, 60.0, seed=500 + i)
            for i, context in enumerate((Context.HANDHELD_STATIC, Context.MOVING))
        ]
        deployed_system.retrain(fresh, day=3.0)
        assert deployed_system.authenticator.version == original_version + 1
        assert deployed_system.monitor.retraining_events_days[-1] == 3.0
        decisions = deployed_system.authenticate_session(
            collect_session(owner.profile, Context.MOVING, 36.0, seed=600)
        )
        assert np.mean(decisions) >= 0.7
