"""Integration tests: the full fleet lifecycle through the service layer."""

import numpy as np
import pytest

from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetReport, FleetSimulator


class TestFleetConfig:
    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError, match="at least two users"):
            FleetConfig(n_users=1)
        with pytest.raises(ValueError, match="server minimum"):
            FleetConfig(enroll_windows_per_context=5)
        with pytest.raises(ValueError, match="drift_fraction"):
            FleetConfig(drift_fraction=1.5)


class TestSmallFleetLifecycle:
    """A compact fleet exercises every phase quickly."""

    @pytest.fixture(scope="class")
    def report(self):
        return FleetSimulator(FleetConfig(n_users=40, seed=13)).run()

    def test_every_user_enrolled_and_trained(self, report):
        assert report.enrolled_users == 40
        assert report.trained_versions >= 40

    def test_legitimate_users_accepted(self, report):
        assert report.legitimate_accept_rate > 0.9

    def test_masquerade_attacks_rejected(self, report):
        assert report.attack_reject_rate > 0.9

    def test_drift_degrades_then_retraining_recovers(self, report):
        assert report.drifted_users >= 1
        assert report.retrained_users == report.drifted_users
        assert (
            report.drifted_accept_rate_after_retrain
            > report.drifted_accept_rate_before_retrain
        )

    def test_report_renders(self, report):
        text = report.to_text()
        assert "fleet size" in text and "windows/s" in text

    def test_telemetry_consistency(self, report):
        counters = report.telemetry["counters"]
        assert counters["auth.windows"] == report.total_windows_scored
        assert (
            counters["auth.accepted"] + counters["auth.rejected"]
            == counters["auth.windows"]
        )
        assert counters["train.rounds"] == report.trained_versions
        assert counters["drift.reports"] == report.drifted_users


class TestFiveHundredUserFleet:
    """The ISSUE acceptance bar: a >= 500-user lifecycle end-to-end."""

    @pytest.fixture(scope="class")
    def report(self):
        return FleetSimulator(FleetConfig(n_users=500, seed=7)).run()

    def test_full_lifecycle_completes(self, report):
        assert isinstance(report, FleetReport)
        assert report.n_users == 500
        assert report.enrolled_users == 500
        # Every user trained at least once; drifted users retrained on top.
        assert report.trained_versions == 500 + report.retrained_users

    def test_fleet_quality_holds_at_scale(self, report):
        assert report.legitimate_accept_rate > 0.9
        assert report.attack_reject_rate > 0.9
        assert report.drifted_users >= 500 * 0.05
        assert report.drifted_accept_rate_after_retrain > 0.9
        assert (
            report.drifted_accept_rate_after_retrain
            > report.drifted_accept_rate_before_retrain
        )

    def test_storage_stays_capacity_bounded(self, report):
        store = report.telemetry["store"]
        config = FleetConfig()
        assert store["n_users"] == 500
        assert store["n_windows"] <= 500 * 2 * config.store_capacity_per_context
        # Drift uploads overflowed the drifted users' ring buffers.
        assert store["total_evicted"] > 0

    def test_scoring_is_fast(self, report):
        # Vectorized scoring should clear tens of thousands of windows/sec;
        # the bar is intentionally loose for slow CI machines.
        assert report.scoring_windows_per_second > 5000


class TestFullFleetDrift:
    def test_drift_fraction_one_still_applies_real_drift(self):
        """Every user drifting must not degenerate to a zero-vector shift."""
        simulator = FleetSimulator(
            FleetConfig(n_users=12, drift_fraction=1.0, seed=5)
        )
        simulator.build_users()
        before_means = [
            user.context_means[CoarseContext.STATIONARY].copy()
            for user in simulator.users
        ]
        report = simulator.run()
        assert report.drifted_users == 12
        for user, before in zip(simulator.users, before_means):
            shift = np.linalg.norm(
                user.context_means[CoarseContext.STATIONARY] - before
            )
            assert shift == pytest.approx(simulator.config.drift_shift, rel=1e-9)


class TestGatewaySharedCodePath:
    """The fleet path and the per-window path produce identical decisions."""

    def test_gateway_scores_match_per_window_scoring(self):
        simulator = FleetSimulator(FleetConfig(n_users=25, seed=3))
        simulator.build_users()
        simulator.enroll_fleet()
        user = simulator.users[0]
        rng = np.random.default_rng(99)
        matrix = user.sample_windows(6, simulator.config.window_noise, rng, simulator.feature_names)
        contexts = [CoarseContext(label) for label in matrix.contexts]
        response = simulator.gateway.authenticate(user.user_id, matrix.values, contexts)

        from repro.core.authenticator import ContextualAuthenticator

        bundle = simulator.gateway.registry.bundle_for(user.user_id)
        authenticator = ContextualAuthenticator(bundle)
        for index in range(len(matrix)):
            decision = authenticator.authenticate(matrix.values[index], contexts[index])
            assert decision.confidence_score == response.scores[index]
            assert decision.accepted == bool(response.accepted[index])
