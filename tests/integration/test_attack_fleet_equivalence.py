"""Adversarial-fleet equivalence: the same campaign through three doors.

The ISSUE 8 acceptance bar: an :class:`~repro.attacks.fleet.AttackFleet`
campaign against a 500-user fleet must emit a per-attacker detection
report (FAR + detection latency) that is **bit-for-bit identical** whether
the hostile traffic enters through the in-process envelope channel, the
JSON HTTP door, or the binary HTTP door — with every attacker's traffic
attributed to its own caller and the server's catch-all silent.

The raw wire-frame replay rides the binary door only: binary frames carry
no idempotency slot, so a replayed frame re-executes by design and the
defence is per-caller telemetry attribution, pinned here separately.
"""

import urllib.request

import pytest

from repro.attacks.fleet import (
    AttackFleet,
    AttackFleetConfig,
    ReplayAttacker,
)
from repro.service import wirebin
from repro.service.envelope import SCOPE_DATA_WRITE, EnvelopeChannel
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.transport import (
    V2_REQUESTS_PATH,
    ServiceClient,
    ServiceHTTPServer,
)
from repro.utils.rng import derive_rng

pytestmark = pytest.mark.attack

FLEET_USERS = 500


@pytest.fixture(scope="module")
def fleet():
    """An enrolled-and-trained 500-user fleet (shared across tests)."""
    simulator = FleetSimulator(FleetConfig(n_users=FLEET_USERS, seed=11))
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator


@pytest.fixture(scope="module")
def server(fleet):
    """The fleet's frontend behind HTTP, sharing the fleet's callers."""
    http = ServiceHTTPServer(fleet.frontend, port=0, callers=fleet.callers)
    http.serve_background()
    yield http
    http.shutdown()
    http.server_close()


@pytest.fixture(scope="module")
def harness(fleet):
    harness = AttackFleet(fleet, AttackFleetConfig(seed=101))
    harness.provision()
    return harness


class TestThreeDoorEquivalence:
    def test_campaign_report_bit_for_bit_identical_across_doors(
        self, fleet, server, harness
    ):
        in_process = harness.run(
            channel_for=lambda key: EnvelopeChannel(fleet.processor, key),
            run_id="in-process",
        )
        over_json = harness.run(
            channel_for=lambda key: ServiceClient(
                port=server.port, api_key=key
            ),
            run_id="json-http",
        )
        over_binary = harness.run(
            channel_for=lambda key: ServiceClient(
                port=server.port, api_key=key, codec="binary"
            ),
            run_id="binary-http",
        )

        # The acceptance bar: plain-typed reports, compared whole.
        assert in_process == over_json
        assert over_json == over_binary

        # The report carries real signal, identically through every door.
        assert in_process.campaigns() == AttackFleet.CAMPAIGNS
        config = harness.config
        assert len(in_process.attackers) == config.n_attackers * len(
            AttackFleet.CAMPAIGNS
        )
        for entry in in_process.for_campaign("replay"):
            assert entry.replays_sent == config.n_replays
            assert entry.replays_flagged == config.n_replays
        timeline = in_process.timeline("zero-effort")
        assert len(timeline.detection_windows) == config.n_attackers
        assert in_process.false_accept_rate("replay") == 1.0

        # Hostile traffic landed on the attackers' own counters — three
        # doors' worth — and none of it leaked onto the fleet operator.
        snapshot = fleet.callers.snapshot()
        for campaign in AttackFleet.CAMPAIGNS:
            for index in range(config.n_attackers):
                caller = AttackFleet.caller_id(campaign, index)
                assert snapshot[caller]["requests"] >= 3

        # The server's catch-all stayed silent through both HTTP doors.
        assert server.telemetry.counter_value("transport.server_errors") == 0


class TestRawWireFrameReplay:
    def test_replayed_frame_re_executes_and_attribution_catches_it(
        self, fleet, server
    ):
        victim = fleet.users[0]
        attacker = ReplayAttacker()
        attacker.capture(
            victim,
            3,
            fleet.config.window_noise,
            fleet.feature_names,
            derive_rng(5, "wire-replay"),
        )
        key = fleet.callers.register("attacker-wire-replay", (SCOPE_DATA_WRITE,))
        frame = attacker.wire_frame(key)

        def post(body):
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}{V2_REQUESTS_PATH}",
                data=body,
                headers={"Content-Type": wirebin.CONTENT_TYPE},
            )
            with urllib.request.urlopen(request) as response:
                return response.status

        # The identical bytes execute twice: frames carry no idempotency
        # key, so the envelope layer cannot flag the second pass ...
        assert post(frame) == 200
        assert post(frame) == 200
        # ... but both executions are pinned on the capturing credential.
        record = fleet.callers.snapshot()["attacker-wire-replay"]
        assert record["requests"] == 2
        assert server.telemetry.counter_value("transport.server_errors") == 0
