"""Integration tests running every paper experiment at the small test scale."""

import pytest

from repro.experiments import SMALL_SCALE
from repro.experiments import (
    fig2_demographics,
    fig3_ks,
    fig4_window_size,
    fig5_data_size,
    fig6_masquerade,
    fig7_retraining,
    overhead,
    table1_related_work,
    table2_fisher,
    table3_feature_corr,
    table4_cross_device_corr,
    table5_context_confusion,
    table6_classifiers,
    table7_context_devices,
    table8_battery,
)
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment
from repro.sensors.types import CoarseContext, DeviceType
from repro.devices.battery import PowerScenario


class TestIndividualExperiments:
    def test_fig2_demographics_counts_sum_to_population(self):
        result = fig2_demographics.run(SMALL_SCALE)
        assert sum(result.gender_counts.values()) == result.n_users
        assert sum(result.age_counts.values()) == result.n_users
        assert "Figure 2" in result.to_text()

    def test_table2_motion_sensors_dominate(self):
        result = table2_fisher.run(SMALL_SCALE)
        for device in (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH):
            assert result.motion_vs_environment_ratio(device) > 1.5
        assert "Fisher" in result.to_text()

    def test_fig3_ks_screen_produces_verdicts(self):
        result = fig3_ks.run(SMALL_SCALE)
        phone_screen = result.screens[DeviceType.SMARTPHONE]
        assert len(phone_screen) == 18  # 9 candidate features x 2 sensors
        assert result.to_text()

    def test_table3_range_var_redundancy(self):
        result = table3_feature_corr.run(SMALL_SCALE)
        correlation = result.correlation_between(DeviceType.SMARTPHONE, "range", "var")
        assert correlation > 0.5
        assert result.to_text()

    def test_table4_cross_device_correlations_are_weak(self):
        result = table4_cross_device_corr.run(SMALL_SCALE)
        assert result.mean_abs_correlation < 0.5
        assert result.correlations.shape == (14, 14)

    def test_table5_context_detection_accuracy(self):
        result = table5_context_confusion.run(SMALL_SCALE)
        assert result.accuracy > 0.9
        assert result.cell("moving", "moving") > 80.0

    def test_table6_krr_is_competitive(self):
        result = table6_classifiers.run(SMALL_SCALE)
        ranking = result.ranking()
        assert ranking[0] in ("KRR", "SVM")
        assert result.accuracy("KRR") > 0.85

    def test_table7_ordering(self):
        result = table7_context_devices.run(SMALL_SCALE)
        assert result.accuracy(True, "combination") >= result.accuracy(False, "smartphone")

    def test_fig4_has_every_series(self):
        result = fig4_window_size.run(SMALL_SCALE)
        for device_set in ("smartphone", "smartwatch", "combination"):
            for context in CoarseContext:
                assert len(result.series(device_set, context)) == len(SMALL_SCALE.window_sizes)

    def test_fig5_accuracy_grows_with_data(self):
        result = fig5_data_size.run(SMALL_SCALE)
        series = result.series("combination", CoarseContext.MOVING)
        assert series[-1].accuracy >= series[0].accuracy - 0.1

    def test_fig6_attackers_detected(self):
        result = fig6_masquerade.run(SMALL_SCALE)
        assert result.fraction_detected_within(60.0) > 0.5
        assert result.survival_fractions[0] == 1.0

    def test_fig7_trace_has_requested_days(self):
        result = fig7_retraining.run(SMALL_SCALE, n_days=6)
        assert len(result.daily) == 6
        assert result.to_text()

    def test_table8_battery_overheads(self):
        result = table8_battery.run(SMALL_SCALE)
        assert result.drain_percent(PowerScenario.LOCKED_SMARTERYOU_ON) > result.drain_percent(
            PowerScenario.LOCKED_SMARTERYOU_OFF
        )
        assert 0.5 < result.idle_overhead_percent < 5.0

    def test_overhead_primal_faster_than_dual(self):
        result = overhead.run(SMALL_SCALE, n_samples=400, n_features=28)
        assert result.measured_primal_fit_s < result.measured_dual_fit_s
        assert result.predicted.testing_time_ms < 100.0

    def test_table1_includes_measured_row(self):
        result = table1_related_work.run(SMALL_SCALE)
        assert 50.0 < result.measured_accuracy_percent <= 100.0
        assert "SmarterYou (this reproduction)" in result.to_text()


class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        assert len(EXPERIMENTS) == 15

    def test_run_experiment_by_id(self):
        outcome = run_experiment("table8", SMALL_SCALE)
        assert outcome.experiment_id == "table8" and outcome.text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99", SMALL_SCALE)

    def test_run_all_subset(self):
        outcomes = run_all(SMALL_SCALE, ["fig2", "table8"])
        assert [outcome.experiment_id for outcome in outcomes] == ["fig2", "table8"]
