"""Integration tests for the cross-validated design-space evaluation."""

import pytest

from repro.core.evaluation import EvaluationConfig, evaluate_configuration
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.sensors.types import CoarseContext, DeviceType


class TestEvaluateConfiguration:
    def test_default_configuration_performs_well(self, free_form_dataset):
        result = evaluate_configuration(free_form_dataset, EvaluationConfig(n_folds=4), seed=1)
        assert result.accuracy > 0.8
        assert 0.0 <= result.far <= 0.3 and 0.0 <= result.frr <= 0.3
        assert set(result.summary()) == {"FRR%", "FAR%", "Accuracy%"}

    def test_per_user_results_cover_all_users(self, free_form_dataset):
        result = evaluate_configuration(free_form_dataset, EvaluationConfig(n_folds=3), seed=1)
        assert {user.user_id for user in result.per_user} == set(free_form_dataset.user_ids())

    def test_context_metrics_available_when_context_used(self, free_form_dataset):
        result = evaluate_configuration(
            free_form_dataset, EvaluationConfig(use_context=True, n_folds=3), seed=1
        )
        metrics = result.context_metrics(CoarseContext.MOVING)
        assert 0.0 <= metrics.accuracy <= 1.0

    def test_phone_only_configuration(self, free_form_dataset):
        config = EvaluationConfig(devices=(DeviceType.SMARTPHONE,), n_folds=3)
        result = evaluate_configuration(free_form_dataset, config, seed=1)
        assert result.config.feature_spec.dimension == 14

    def test_combination_beats_or_matches_single_device(self, free_form_dataset):
        phone = evaluate_configuration(
            free_form_dataset, EvaluationConfig(devices=(DeviceType.SMARTPHONE,), n_folds=4), seed=2
        )
        both = evaluate_configuration(free_form_dataset, EvaluationConfig(n_folds=4), seed=2)
        assert both.accuracy >= phone.accuracy - 0.05

    def test_alternative_classifier_factory(self, free_form_dataset):
        config = EvaluationConfig(classifier_factory=GaussianNaiveBayes, n_folds=3)
        result = evaluate_configuration(free_form_dataset, config, seed=3)
        assert result.accuracy > 0.6

    def test_data_size_cap_limits_windows(self, free_form_dataset):
        config = EvaluationConfig(max_windows_per_user=5, n_folds=2)
        result = evaluate_configuration(free_form_dataset, config, seed=4)
        for user in result.per_user:
            assert user.overall.n_genuine <= 5 * 2  # at most the cap per context

    def test_user_subset(self, free_form_dataset, population):
        target = population[0].user_id
        result = evaluate_configuration(
            free_form_dataset, EvaluationConfig(n_folds=3), users=[target], seed=5
        )
        assert [user.user_id for user in result.per_user] == [target]
