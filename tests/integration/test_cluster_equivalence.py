"""Cluster equivalence and process-lifecycle tests (real worker processes).

The ISSUE 7 acceptance bars pinned here:

* authentication decisions served by a multi-process cluster (router +
  subprocess shard workers over one persisted registry) are bit-for-bit
  identical to single-process dispatch;
* per-caller rate limits are enforced **fleet-wide** — a caller split
  across shards exhausts one shared budget and answers 429 through the
  router;
* a worker crash mid-stream delivers the completed response frames plus
  a typed stream-abort marker (PR 5's torn-stream semantics across the
  process boundary), and single-frame requests to a dead shard answer a
  typed 503 — never a hang or a stack trace;
* workers shut down cleanly on SIGTERM/SIGINT and on losing their
  spawning router (stdin EOF), so a dead router leaves no orphans.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.sensors.types import CoarseContext
from repro.service import wirebin
from repro.service.cluster import ShardRouter, WorkerPool
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    ThrottledResponse,
)
from repro.service.tracing import (
    SPAN_SHARD_DISPATCH,
    SPAN_SHARD_MERGE,
    SPAN_SHARD_SPLIT,
    TRACE_HEADER,
    Tracer,
)
from repro.service.transport import ServiceClient

N_USERS = 32


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """An enrolled fleet whose trained models persist to a registry root."""
    root = tmp_path_factory.mktemp("cluster-it-registry")
    simulator = FleetSimulator(
        FleetConfig(n_users=N_USERS, seed=5, server_side_contexts=False),
        registry_root=root,
    )
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator


@pytest.fixture(scope="module")
def probes(fleet):
    rng = np.random.default_rng(23)
    requests = []
    for user in fleet.users:
        probe = user.sample_windows(
            2, fleet.config.window_noise, rng, fleet.feature_names
        )
        requests.append(
            AuthenticateRequest(
                user_id=user.user_id,
                features=probe.values,
                contexts=tuple(CoarseContext(label) for label in probe.contexts),
            )
        )
    return requests


@pytest.fixture(scope="module")
def reference(fleet, probes):
    return fleet.frontend.submit_many(probes)


def _registry_root(fleet):
    return str(fleet.frontend.gateway.registry.root)


def _wait(predicate, timeout_s=10.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def test_cluster_decisions_bit_for_bit_identical(fleet, probes, reference):
    with WorkerPool(2, registry_root=_registry_root(fleet), no_queue=True) as pool:
        tracer = Tracer(sample_rate=1.0)
        with ShardRouter(pool, tracer=tracer) as router:
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="binary"
            )
            remote = client.submit_many(probes)
            assert len(remote) == len(reference)
            for got, want in zip(remote, reference):
                assert isinstance(got, AuthenticationResponse)
                np.testing.assert_array_equal(got.scores, want.scores)
                np.testing.assert_array_equal(got.accepted, want.accepted)
                assert got.result.model_contexts == want.result.model_contexts
                assert got.model_version == want.model_version
            # Both shards served a slice of the fleet.
            shards = router.ring.split([p.user_id for p in probes])
            assert set(shards) == {0, 1}

            # Trace propagation: a client-supplied trace id crosses the
            # process boundary — the router's frame event carries the
            # split/dispatch/merge spans under that same id, and the
            # response echoes the header.
            frame = wirebin.encode_request_frame(
                probes[:4], api_key=pool.api_key
            )
            request = urllib.request.Request(
                f"http://127.0.0.1:{router.port}/v2/requests",
                data=frame,
                headers={
                    "Content-Type": wirebin.CONTENT_TYPE,
                    TRACE_HEADER: "trace-cluster-e2e",
                },
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
                assert response.headers[TRACE_HEADER] == "trace-cluster-e2e"
                response.read()
            events = [
                event
                for event in tracer.events()
                if event["trace_id"] == "trace-cluster-e2e"
            ]
            assert len(events) == 4  # one event per request in the frame
            span_names = {span["name"] for span in events[0]["spans"]}
            assert {
                SPAN_SHARD_SPLIT,
                SPAN_SHARD_DISPATCH,
                SPAN_SHARD_MERGE,
            } <= span_names


def test_rate_limits_enforced_fleet_wide_through_router(
    fleet, probes, tmp_path
):
    """Shards share one token bucket: the 5th request 429s regardless of
    which worker owns its user."""
    quota_path = tmp_path / "fleet-quota.json"
    with WorkerPool(
        2,
        registry_root=_registry_root(fleet),
        caller_rate=0.001,  # negligible refill within the test
        caller_burst=4.0,
        quota_path=quota_path,
        no_queue=True,
    ) as pool:
        with ShardRouter(pool) as router:
            ring = router.ring
            by_shard = {0: [], 1: []}
            for probe in probes:
                by_shard[ring.shard_for(probe.user_id)].append(probe)
            # Two grants drawn through each shard: the budget must span them.
            granted = by_shard[0][:2] + by_shard[1][:2]
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="json"
            )
            for probe in granted:
                response = client.submit(probe)
                assert isinstance(response, AuthenticationResponse), response

            throttled = client.submit(by_shard[0][2])
            assert isinstance(throttled, ThrottledResponse)
            assert throttled.reason == "rate-limited"
            assert throttled.retry_after_s > 0.0

            # The same exhaustion answers HTTP 429 + Retry-After for a
            # binary frame, with a typed rejection frame as the body.
            frame = wirebin.encode_request_frame(
                [by_shard[1][2]], api_key=pool.api_key
            )
            request = urllib.request.Request(
                f"http://127.0.0.1:{router.port}/v2/requests",
                data=frame,
                headers={"Content-Type": wirebin.CONTENT_TYPE},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            frames = wirebin.decode_response_frames(excinfo.value.read())
            assert len(frames) == 1
            assert isinstance(frames[0].throttled, ThrottledResponse)


def test_worker_crash_mid_stream_aborts_with_typed_marker(
    fleet, probes, reference
):
    """PR 5's torn-stream contract across the process boundary: the shard
    dies after K dispatched frames → K responses + a typed abort."""
    with WorkerPool(
        2, registry_root=_registry_root(fleet), no_queue=True, restart=False
    ) as pool:
        with ShardRouter(pool) as router:
            ring = router.ring
            by_shard = {0: [], 1: []}
            for probe in probes:
                by_shard[ring.shard_for(probe.user_id)].append(probe)
            assert by_shard[0] and by_shard[1]
            victim_pid = pool.pids()[1]
            os.kill(victim_pid, signal.SIGKILL)
            assert _wait(lambda: pool.endpoint(1) is None)

            # K healthy frames to shard 0, then one for the dead shard.
            survivors = by_shard[0][:3]
            stream = survivors + [by_shard[1][0]] + by_shard[0][3:4]
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="binary"
            )
            with pytest.raises(ValueError, match="stream aborted by the server"):
                client.submit_stream(iter(stream), chunk_windows=1)
            # And the error message pins exactly how many frames executed.
            try:
                client.submit_stream(iter(stream), chunk_windows=1)
            except ValueError as error:
                assert f"after {len(survivors)} of {len(stream)}" in str(error)
                assert "shard-unavailable" in str(error)

            # A single-frame request to the dead shard answers a typed
            # 503, while the surviving shard keeps serving bit-for-bit.
            with pytest.raises(ValueError, match="shard-unavailable"):
                client.submit_many([by_shard[1][0]])
            healthy = client.submit_many(survivors)
            wanted = {
                probe.user_id: want
                for probe, want in zip(probes, reference)
            }
            for probe, got in zip(survivors, healthy):
                np.testing.assert_array_equal(
                    got.scores, wanted[probe.user_id].scores
                )

            health = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{router.port}/healthz"
                ).read()
            )
            assert health["status"] == "degraded"
            assert health["ready"] is False
            assert health["shards_alive"] == 1
            assert health["shards"]["1"]["alive"] is False


def test_crashed_worker_restarts_and_serves_again(fleet, probes, reference):
    with WorkerPool(2, registry_root=_registry_root(fleet), no_queue=True) as pool:
        with ShardRouter(pool) as router:
            client = ServiceClient(
                port=router.port, api_key=pool.api_key, codec="binary"
            )
            os.kill(pool.pids()[0], signal.SIGKILL)
            assert _wait(
                lambda: pool.health()["0"]["alive"]
                and pool.health()["0"]["restarts"] >= 1,
                timeout_s=30.0,
            )
            remote = client.submit_many(probes)
            for got, want in zip(remote, reference):
                np.testing.assert_array_equal(got.scores, want.scores)


def _spawn_worker(extra_args=(), **popen_kwargs):
    command = [
        sys.executable,
        "-m",
        "repro.service.cluster",
        "worker",
        "--shard-index",
        "0",
        "--n-shards",
        "1",
        "--port",
        "0",
        "--no-queue",
        *extra_args,
    ]
    return subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        **popen_kwargs,
    )


def _read_ready(process, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError("worker exited before READY")
        if line.startswith("READY "):
            return int(line.split()[1])
    raise AssertionError("worker never printed READY")


def test_worker_exits_cleanly_on_sigterm(tmp_path):
    trace_path = tmp_path / "worker-traces.jsonl"
    process = _spawn_worker(
        ["--trace-sample-rate", "1.0", "--trace-jsonl", str(trace_path)]
    )
    try:
        port = _read_ready(process)
        health = json.loads(
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz").read()
        )
        assert health["ready"] is True
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=10.0) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def test_worker_exits_when_router_pipe_closes(tmp_path):
    """Orphan prevention: losing the spawner's stdin pipe stops the worker
    even without any signal (covers a SIGKILLed router)."""
    process = _spawn_worker()
    try:
        _read_ready(process)
        process.stdin.close()
        assert process.wait(timeout=10.0) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def test_transport_cli_drains_and_flushes_traces_on_sigterm(tmp_path):
    """The single-process serving CLI honors the same graceful-shutdown
    contract: SIGTERM drains and exits 0, with served traces on disk."""
    trace_path = tmp_path / "cli-traces.jsonl"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.transport",
            "--port",
            "0",
            "--no-queue",
            "--trace-sample-rate",
            "1.0",
            "--trace-jsonl",
            str(trace_path),
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and port is None:
            line = process.stdout.readline()
            if not line:
                raise AssertionError("transport CLI exited during startup")
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
        assert port is not None
        health = json.loads(
            urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz").read()
        )
        assert health["status"] == "ok"
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=10.0) == 0
        # The /healthz probe is untraced; the trace file may legitimately
        # be empty — what matters is the clean exit after a served request.
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
