#!/usr/bin/env python3
"""Documentation consistency checks (stdlib only; used by CI and tier-1).

Two guarantees, so the docs cannot silently rot as the code moves:

1. every relative (internal) markdown link in ``docs/*.md`` and
   ``README.md`` resolves to an existing file;
2. every ``src/...`` module path mentioned in ``docs/architecture.md``
   (and the other docs pages) exists in the tree;
3. load-bearing sections — ones other docs, runbooks or tests point
   at — are present under their exact headings (``REQUIRED_SECTIONS``),
   so a rewrite cannot silently drop the drain runbook or the
   exactly-once quota contract.

Run from anywhere::

    python tools/check_docs.py            # exit 0 = consistent
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose internal links are checked.
DOC_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/protocol.md",
    "docs/serving.md",
    "docs/observability.md",
    "docs/sharding.md",
    "docs/attacks.md",
)

#: Section headings that must exist verbatim, per doc file.  These are
#: the sections runbooks and tests link to by anchor; dropping one in a
#: rewrite breaks operators silently, so the checker pins them.
REQUIRED_SECTIONS: dict[str, tuple[str, ...]] = {
    "docs/sharding.md": (
        "## Retries, deadlines and hedging",
        "## Graceful drain and live resharding",
        "## Exactly-once quota for split frames",
        "## The shared quota store",
        "## Merged fleet telemetry",
    ),
}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_MODULE_PATH = re.compile(r"`(src/[A-Za-z0-9_./-]+?)/?`")
_SCHEMES = ("http://", "https://", "mailto:")


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files under check; missing ones are themselves errors."""
    return [root / name for name in DOC_FILES]


def _label(path: Path) -> str:
    """Repo-relative display name (absolute for files outside the repo)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_links(path: Path) -> list[str]:
    """Problems with *path*'s internal links (empty list = consistent)."""
    problems = []
    if not path.is_file():
        return [f"{_label(path)}: documentation file is missing"]
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(_SCHEMES) or target.startswith("#"):
            continue  # external links and in-page anchors are not ours to check
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{_label(path)}: broken internal link -> {target}")
    return problems


def check_module_paths(path: Path) -> list[str]:
    """Problems with *path*'s ``src/...`` module references."""
    problems = []
    if not path.is_file():
        return [f"{_label(path)}: documentation file is missing"]
    for module in _MODULE_PATH.findall(path.read_text(encoding="utf-8")):
        if not (REPO_ROOT / module).exists():
            problems.append(f"{_label(path)}: references missing module -> {module}")
    return problems


def check_required_sections(path: Path, required: tuple[str, ...]) -> list[str]:
    """Problems with *path*'s required section headings.

    A heading counts only as a whole line (``## Title`` exactly), so a
    mention of the title in prose cannot mask a dropped section.
    """
    if not path.is_file():
        return [f"{_label(path)}: documentation file is missing"]
    headings = {line.strip() for line in path.read_text(encoding="utf-8").splitlines()}
    return [
        f"{_label(path)}: missing required section -> {heading}"
        for heading in required
        if heading not in headings
    ]


def check_all(root: Path = REPO_ROOT) -> list[str]:
    """Every documentation problem found (empty list = consistent)."""
    problems = []
    for path in doc_files(root):
        problems.extend(check_links(path))
        problems.extend(check_module_paths(path))
    for name, required in REQUIRED_SECTIONS.items():
        problems.extend(check_required_sections(root / name, required))
    return problems


def main() -> int:
    problems = check_all()
    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)
    checked = ", ".join(DOC_FILES)
    if problems:
        print(f"{len(problems)} documentation problem(s) in: {checked}", file=sys.stderr)
        return 1
    print(f"docs consistent: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
