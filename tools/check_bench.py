#!/usr/bin/env python3
"""Benchmark-regression gate (stdlib only; used by CI's docs job).

The benchmark harnesses under ``benchmarks/`` write their measured numbers
to ``BENCH_*.json`` at the repository root, and those files are committed.
This checker compares every committed result against its baseline snapshot
in ``benchmarks/baselines/`` and **fails when any throughput metric (a key
ending in ``_per_s``) drops by more than 20%** — so a PR cannot silently
regress the serving hot path and update the numbers without anyone
noticing.  It additionally gates **tracing overhead**: when a result file
carries traced and untraced throughput for the same path
(``..._traced_windows_per_s`` / ``..._untraced_windows_per_s``), the
traced path must stay within 5% of the untraced one.  **Retry overhead**
is gated the same way: a ``..._retry_windows_per_s`` /
``..._noretry_windows_per_s`` twin pair from the same run pins the
router's retry machinery at ≤5% cost on the happy path.

A deliberate trade-off (or a faster implementation) updates the baseline
in the same PR::

    cp BENCH_frontend.json BENCH_transport.json benchmarks/baselines/

Run from anywhere::

    python tools/check_bench.py            # exit 0 = no regression
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Where the committed baseline snapshots live.
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: Largest tolerated throughput drop relative to the baseline (20%).
MAX_DROP = 0.20

#: Keys compared: higher is better, dimension = work per second.
THROUGHPUT_SUFFIX = "_per_s"

#: Largest tolerated slowdown of a traced path vs its untraced twin (5%).
MAX_TRACING_OVERHEAD = 0.05

#: Key suffixes pairing a traced measurement with its untraced twin.
TRACED_SUFFIX = "_traced_windows_per_s"
UNTRACED_SUFFIX = "_untraced_windows_per_s"

#: Largest tolerated slowdown of the retry-enabled routed path vs its
#: retry-disabled twin from the same run (5%).
MAX_RETRY_OVERHEAD = 0.05

#: Key suffixes pairing a retry-enabled measurement with its
#: retry-disabled twin.
RETRY_SUFFIX = "_retry_windows_per_s"
NORETRY_SUFFIX = "_noretry_windows_per_s"


def throughput_keys(payload: dict) -> dict[str, float]:
    """The throughput metrics of one benchmark result file."""
    return {
        key: float(value)
        for key, value in payload.items()
        if key.endswith(THROUGHPUT_SUFFIX) and isinstance(value, (int, float))
    }


def check_file(current_path: Path, baseline_path: Path) -> list[str]:
    """Regressions of one result file against its baseline (empty = pass)."""
    problems: list[str] = []
    if not current_path.is_file():
        return [f"{current_path.name}: benchmark result file is missing"]
    current = throughput_keys(json.loads(current_path.read_text()))
    baseline = throughput_keys(json.loads(baseline_path.read_text()))
    for key, reference in sorted(baseline.items()):
        if reference <= 0.0:
            continue
        measured = current.get(key)
        if measured is None:
            problems.append(
                f"{current_path.name}: throughput metric {key!r} disappeared "
                "(present in the baseline)"
            )
            continue
        drop = 1.0 - measured / reference
        if drop > MAX_DROP:
            problems.append(
                f"{current_path.name}: {key} dropped {drop:.0%} "
                f"({measured:,.0f} vs baseline {reference:,.0f}; "
                f"tolerated: {MAX_DROP:.0%})"
            )
    problems.extend(check_tracing_overhead(current_path.name, current))
    problems.extend(check_retry_overhead(current_path.name, current))
    return problems


def check_tracing_overhead(name: str, metrics: dict[str, float]) -> list[str]:
    """Tracing-overhead problems within one result file (empty = pass).

    Compares each ``<path>_traced_windows_per_s`` against its
    ``<path>_untraced_windows_per_s`` twin from the **same** run, so the
    gate measures instrumentation cost, not machine drift vs an old
    baseline.
    """
    problems: list[str] = []
    for key, traced in sorted(metrics.items()):
        if not key.endswith(TRACED_SUFFIX):
            continue
        twin = key[: -len(TRACED_SUFFIX)] + UNTRACED_SUFFIX
        untraced = metrics.get(twin)
        if untraced is None:
            problems.append(
                f"{name}: {key} has no untraced twin {twin!r} to gate against"
            )
            continue
        if untraced <= 0.0:
            continue
        overhead = 1.0 - traced / untraced
        if overhead > MAX_TRACING_OVERHEAD:
            problems.append(
                f"{name}: tracing costs {overhead:.1%} of {twin} throughput "
                f"({traced:,.0f} vs {untraced:,.0f}; "
                f"tolerated: {MAX_TRACING_OVERHEAD:.0%})"
            )
    return problems


def check_retry_overhead(name: str, metrics: dict[str, float]) -> list[str]:
    """Retry-overhead problems within one result file (empty = pass).

    Compares each ``<path>_retry_windows_per_s`` against its
    ``<path>_noretry_windows_per_s`` twin from the **same** run —
    same warmed router, retries flipped between measurements — so the
    gate pins the cost of the retry machinery itself, not machine
    drift vs an old baseline.
    """
    problems: list[str] = []
    for key, with_retry in sorted(metrics.items()):
        if not key.endswith(RETRY_SUFFIX):
            continue
        twin = key[: -len(RETRY_SUFFIX)] + NORETRY_SUFFIX
        without_retry = metrics.get(twin)
        if without_retry is None:
            problems.append(
                f"{name}: {key} has no retry-disabled twin {twin!r} to "
                "gate against"
            )
            continue
        if without_retry <= 0.0:
            continue
        overhead = 1.0 - with_retry / without_retry
        if overhead > MAX_RETRY_OVERHEAD:
            problems.append(
                f"{name}: retries cost {overhead:.1%} of {twin} throughput "
                f"({with_retry:,.0f} vs {without_retry:,.0f}; "
                f"tolerated: {MAX_RETRY_OVERHEAD:.0%})"
            )
    return problems


def check_all(
    root: Path = REPO_ROOT, baseline_dir: Path = BASELINE_DIR
) -> tuple[list[str], list[str]]:
    """``(problems, checked-file names)`` across every baseline snapshot."""
    problems: list[str] = []
    checked: list[str] = []
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        problems.append(
            f"no baselines found under {baseline_dir}; commit snapshots of "
            "the BENCH_*.json results there"
        )
    for baseline_path in baselines:
        checked.append(baseline_path.name)
        problems.extend(check_file(root / baseline_path.name, baseline_path))
    return problems, checked


def main() -> int:
    problems, checked = check_all()
    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)
    if problems:
        print(
            f"{len(problems)} benchmark regression problem(s) in: "
            + ", ".join(checked),
            file=sys.stderr,
        )
        print(
            "If the change is a deliberate trade-off, update "
            "benchmarks/baselines/ in the same PR.",
            file=sys.stderr,
        )
        return 1
    print(f"benchmarks within {MAX_DROP:.0%} of baseline: {', '.join(checked)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
