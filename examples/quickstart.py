"""Quickstart: enrol a user and authenticate genuine vs. impostor sessions.

Builds a small synthetic population, trains the user-agnostic context
detector and the owner's per-context authentication models in the simulated
cloud, and then scores one genuine session and one impostor session.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AuthenticationServer,
    ContextDetector,
    SmarterYou,
    SmarterYouConfig,
    build_study_population,
    collect_free_form_dataset,
)
from repro.datasets import collect_lab_context_dataset
from repro.sensors.types import DeviceType


def main() -> None:
    # 1. A small synthetic study population (the paper recruited 35 users).
    population = build_study_population(n_users=6, seed=42)
    print(f"Population: {len(population)} users, {population.gender_histogram()}")

    # 2. Free-form usage data for everyone: both devices, both coarse contexts.
    dataset = collect_free_form_dataset(
        population, session_duration=120.0, sessions_per_context=2, seed=7
    )
    print(f"Collected {len(dataset)} sessions of free-form usage")

    # 3. Train the user-agnostic context detector from lab sessions.
    config = SmarterYouConfig(target_enrollment_windows=40)
    lab = collect_lab_context_dataset(population, session_duration=90.0, seed=11)
    phone_windows = lab.device_matrix(
        DeviceType.SMARTPHONE, config.window_seconds, spec=config.phone_feature_spec
    )
    owner = population[0]
    detector = ContextDetector(spec=config.phone_feature_spec)
    detector.fit(phone_windows, exclude_user=owner.user_id)
    print(f"Context detector accuracy: {detector.evaluate(phone_windows).accuracy:.1%}")

    # 4. Enrol the owner: other users' anonymised data provides the negatives.
    server = AuthenticationServer(seed=3)
    system = SmarterYou(config=config, server=server, context_detector=detector)
    system.contribute_other_users(dataset, exclude=owner.user_id)
    enrollment = system.enroll(owner.user_id, dataset.sessions_for(owner.user_id))
    print(
        f"Enrolled {owner.user_id} with {enrollment.windows_collected} windows "
        f"({ {c.value: n for c, n in enrollment.windows_per_context.items()} })"
    )

    # 5. Continuous authentication: the owner is accepted, an impostor is not.
    genuine_session = dataset.sessions_for(owner.user_id)[0]
    impostor_session = dataset.sessions_for(population[1].user_id)[0]
    genuine_decisions = system.authenticate_session(genuine_session)
    impostor_decisions = system.authenticate_session(impostor_session)
    print(f"Owner windows accepted:    {sum(genuine_decisions)}/{len(genuine_decisions)}")
    print(f"Impostor windows accepted: {sum(impostor_decisions)}/{len(impostor_decisions)}")


if __name__ == "__main__":
    main()
