"""Masquerading (mimicry) attack detection — the paper's Section V-G study.

Each attacker observes the victim and imitates the victim's coarse behaviour.
The script deploys SmarterYou for the victim, replays every attack, and
prints how quickly each attacker loses access, plus the survival curve of
Figure 6 and the theoretical ``p^n`` escape probability.

Run with::

    python examples/masquerade_detection.py
"""

from repro.attacks import MimicryAttacker, evaluate_detection_time, escape_probability
from repro.experiments.common import DEFAULT_SCALE, get_population
from repro.experiments.fig6_masquerade import _deploy_for_victim
from repro.sensors.types import Context


def main() -> None:
    scale = DEFAULT_SCALE
    population = get_population(scale.n_users, scale.seed)
    victim = population[0]
    print(f"Deploying SmarterYou for victim {victim.user_id} ...")
    system = _deploy_for_victim(scale, victim.user_id, scale.window_seconds)

    attacks = []
    attacker_pool = [p for p in population if p.user_id != victim.user_id]
    for index, participant in enumerate(attacker_pool):
        attacker = MimicryAttacker(participant.profile, fidelity=0.5, seed=1000 + index)
        context = Context.MOVING if index % 2 == 0 else Context.HANDHELD_STATIC
        attacks.append(attacker.attack(victim.profile, context, duration=60.0))
    print(f"Replaying {len(attacks)} mimicry attacks (fidelity 0.5) ...\n")

    timeline = evaluate_detection_time(system, attacks, window_seconds=scale.window_seconds)
    for attack, detection in zip(attacks, timeline.detection_times_s()):
        outcome = "never detected" if detection is None else f"locked out after {detection:.0f}s"
        print(f"  {attack.attacker_id} imitating {attack.victim_id}: {outcome}")

    times, fractions = timeline.survival_curve(horizon_s=60.0)
    print("\nFigure 6 — fraction of adversaries still holding access:")
    for t, fraction in zip(times, fractions):
        bar = "#" * int(round(40 * fraction))
        print(f"  t={t:5.0f}s  {fraction:5.2f}  {bar}")

    print("\nTheoretical escape probability with the paper's 2.8% per-window FAR:")
    for n_windows in (1, 2, 3):
        print(f"  survive {n_windows} windows: {escape_probability(0.028, n_windows):.6%}")


if __name__ == "__main__":
    main()
