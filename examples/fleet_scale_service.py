"""Fleet-scale serving over HTTP: 500 users through the v2 wire protocol.

Where the other examples drive a single user through the sensor-accurate
paper pipeline, this one exercises the ``repro.service`` subsystem end to
end **over real sockets and the versioned API**: an HTTP server
(``repro.service.transport``) exposes the micro-batching
``ServiceFrontend`` at ``POST /v2/requests`` (data plane) and
``POST /v2/admin`` (control plane), and a 500-user fleet runs its whole
lifecycle — enrollment into a sharded ring-buffer feature store,
per-context training published to the versioned model registry, continuous
authentication, masquerade attacks, behavioural drift and retraining —
with every protocol request wrapped in an authenticated caller envelope,
JSON-encoded, sent through a ``ServiceClient``, and batch-coalesced into
fused scoring passes on the server side, where the registry-published
detector labels every window's context.

Run with::

    python examples/fleet_scale_service.py
"""

import numpy as np

from repro.service.envelope import SCOPE_DATA_WRITE
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, EvictRequest, RollbackRequest
from repro.service.transport import ServiceClient, ServiceHTTPServer


def main() -> None:
    # 1. Configure the 500-user fleet and expose its frontend over HTTP on
    #    a free local port.  The simulator provisions a "fleet-operator"
    #    caller (scopes: data:write + admin); handing the same caller
    #    registry to the server and the operator's key to a ServiceClient
    #    moves every enroll / authenticate / drift request onto the
    #    enveloped /v2 endpoints over a real socket.
    config = FleetConfig(n_users=500, seed=7)
    simulator = FleetSimulator(config)
    with ServiceHTTPServer(simulator.frontend, callers=simulator.callers) as server:
        client = ServiceClient(port=server.port, api_key=simulator.api_key)
        simulator.channel = client
        print(f"serving the fleet protocol on http://127.0.0.1:{server.port}")
        print(f"running the {config.n_users}-user lifecycle "
              "(enroll -> auth -> attack -> drift -> retrain) over /v2...")
        report = simulator.run()
        print()
        print(report.to_text())

        # 2. The registry keeps every trained version; roll one user back
        #    by submitting a typed RollbackRequest — a control-plane
        #    operation the client automatically routes to /v2/admin.
        registry = simulator.gateway.registry
        drifted_user = simulator.users[0]  # drifted, so it has two versions
        versions = registry.versions(drifted_user.user_id)
        serving = registry.latest_version(drifted_user.user_id)
        rollback = client.submit(RollbackRequest(user_id=drifted_user.user_id))
        print()
        print(f"{drifted_user.user_id}: versions={versions}, was serving "
              f"v{serving}, rolled back to v{rollback.serving_version}")

        # 3. Caller authentication is enforced per scope: a device-gateway
        #    credential with only data:write cannot touch the control
        #    plane — the envelope is rejected 403 before it can reach the
        #    service backend.
        device_key = simulator.callers.register("device-gateway", (SCOPE_DATA_WRITE,))
        device_client = ServiceClient(port=server.port, api_key=device_key)
        try:
            device_client.submit(RollbackRequest(user_id=drifted_user.user_id))
        except PermissionError as denied:
            print(f"device-gateway rollback denied: {denied}")
        finally:
            device_client.close()

        # 4. Authenticate once more against the rolled-back (pre-drift)
        #    model: the drifted user's fresh windows should score noticeably
        #    worse.  The service detects the windows' contexts itself
        #    (contexts=None) inside the same coalesced pass.
        matrix = drifted_user.sample_windows(
            8, config.window_noise, np.random.default_rng(0), simulator.feature_names
        )
        response = client.submit(
            AuthenticateRequest(user_id=drifted_user.user_id, features=matrix.values)
        )
        print(f"post-rollback accept rate on drifted behaviour: "
              f"{response.accept_rate:.1%} (model v{response.model_version})")

        # 5. Long-lived fleets evict old registry versions (the serving
        #    bundle is always kept) — another /v2/admin operation.
        evicted = client.submit(EvictRequest(policy="max_versions", max_versions=1))
        print(f"registry eviction dropped {evicted.versions_evicted} old "
              f"version(s) across {len(evicted.evicted)} user(s)")

        # 6. Storage stays bounded no matter how long the fleet runs, and
        #    the transport, frontend, backend and per-caller metrics all
        #    land in the one snapshot the /metrics endpoint serves.
        stats = simulator.gateway.server.store.stats()
        print(f"feature store: {stats.n_windows} windows across {stats.n_buffers} "
              f"ring buffers on {len(stats.windows_per_shard)} shards "
              f"({stats.total_evicted} old windows evicted)")
        snapshot = client.metrics()
        counters = snapshot["counters"]
        auth_latency = snapshot["latencies"]["frontend.authenticate"]
        operator = snapshot["callers"]["fleet-operator"]
        print(f"transport: {counters['transport.requests']} HTTP exchanges; "
              f"frontend: {counters['frontend.requests']} requests, "
              f"{counters['frontend.coalesced_windows']} windows coalesced into "
              f"{counters['frontend.coalesced_batches']} batches "
              f"({counters['frontend.stack_cache.hits']} fused-stack cache hits), "
              f"{counters['context.detections']} contexts detected server-side, "
              f"p95 batch latency {auth_latency['p95_s'] * 1e3:.1f} ms")
        print(f"caller fleet-operator: {operator['requests']} authorized "
              f"envelopes; device-gateway: "
              f"{snapshot['callers']['device-gateway']['denied']} denied")
        client.close()


if __name__ == "__main__":
    main()
