"""Fleet-scale serving: 500 users through the typed service front door.

Where the other examples drive a single user through the sensor-accurate
paper pipeline, this one exercises the ``repro.service`` subsystem end to
end: a 500-user fleet is enrolled into a sharded ring-buffer feature store,
each user's per-context models are trained in the simulated cloud and
published to the versioned model registry, and the whole fleet then runs
continuous authentication, masquerade attacks, behavioural drift and
retraining — every operation a typed protocol request submitted through the
micro-batching ``ServiceFrontend``, which coalesces each phase's 500
authenticate requests into a single fused scoring pass and detects every
window's context server-side with the registry-published detector.

Run with::

    python examples/fleet_scale_service.py
"""

import numpy as np

from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import (
    AuthenticateRequest,
    RollbackRequest,
    dumps_request,
    loads_request,
)


def main() -> None:
    # 1. Configure and run the full lifecycle for a 500-user fleet.  Every
    #    phase issues protocol requests through the micro-batching frontend;
    #    authentication requests carry no device-reported contexts.
    config = FleetConfig(n_users=500, seed=7)
    simulator = FleetSimulator(config)
    print(f"Running the {config.n_users}-user lifecycle "
          "(enroll -> auth -> attack -> drift -> retrain)...")
    report = simulator.run()
    print()
    print(report.to_text())

    # 2. The registry keeps every trained version; roll one user back by
    #    submitting a typed RollbackRequest through the frontend.
    frontend = simulator.frontend
    registry = simulator.gateway.registry
    drifted_user = simulator.users[0]  # drifted, so it has two versions
    versions = registry.versions(drifted_user.user_id)
    serving = registry.latest_version(drifted_user.user_id)
    rollback = frontend.submit(RollbackRequest(user_id=drifted_user.user_id))
    print()
    print(f"{drifted_user.user_id}: versions={versions}, was serving v{serving}, "
          f"rolled back to v{rollback.serving_version}")

    # 3. Authenticate once more against the rolled-back (pre-drift) model:
    #    the drifted user's fresh windows should score noticeably worse.
    #    The request round-trips through the JSON wire codec on the way, as
    #    it would over a real transport, and the service detects the
    #    windows' contexts itself (contexts=None).
    matrix = drifted_user.sample_windows(
        8, config.window_noise, np.random.default_rng(0), simulator.feature_names
    )
    request = loads_request(
        dumps_request(
            AuthenticateRequest(user_id=drifted_user.user_id, features=matrix.values)
        )
    )
    response = frontend.submit(request)
    print(f"post-rollback accept rate on drifted behaviour: "
          f"{response.accept_rate:.1%} (model v{response.model_version})")

    # 4. Storage stays bounded no matter how long the fleet runs, and the
    #    frontend's middleware telemetry lands in the same snapshot as the
    #    backend counters.
    stats = simulator.gateway.server.store.stats()
    print(f"feature store: {stats.n_windows} windows across {stats.n_buffers} "
          f"ring buffers on {len(stats.windows_per_shard)} shards "
          f"({stats.total_evicted} old windows evicted)")
    snapshot = simulator.gateway.snapshot()
    counters = snapshot["counters"]
    auth_latency = snapshot["latencies"]["frontend.authenticate"]
    print(f"frontend: {counters['frontend.requests']} requests, "
          f"{counters['frontend.coalesced_windows']} windows coalesced into "
          f"{counters['frontend.coalesced_batches']} batches, "
          f"{counters['context.detections']} contexts detected server-side, "
          f"p95 batch latency {auth_latency['p95_s'] * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
