"""Fleet-scale serving: 500 users through the authentication service layer.

Where the other examples drive a single user through the sensor-accurate
paper pipeline, this one exercises the ``repro.service`` subsystem: a
500-user fleet is enrolled into a sharded ring-buffer feature store, each
user's per-context models are trained in the simulated cloud and published
to the versioned model registry, and the whole fleet then runs continuous
authentication, masquerade attacks, behavioural drift and retraining through
the gateway's vectorized batch scorer — with telemetry for every phase.

Run with::

    python examples/fleet_scale_service.py
"""

from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator


def main() -> None:
    # 1. Configure and run the full lifecycle for a 500-user fleet.
    config = FleetConfig(n_users=500, seed=7)
    simulator = FleetSimulator(config)
    print(f"Running the {config.n_users}-user lifecycle "
          "(enroll -> auth -> attack -> drift -> retrain)...")
    report = simulator.run()
    print()
    print(report.to_text())

    # 2. The registry keeps every trained version; roll one user back.
    registry = simulator.gateway.registry
    drifted_user = simulator.users[0]  # drifted, so it has two versions
    versions = registry.versions(drifted_user.user_id)
    serving = registry.latest_version(drifted_user.user_id)
    restored = simulator.gateway.rollback(drifted_user.user_id)
    print()
    print(f"{drifted_user.user_id}: versions={versions}, was serving v{serving}, "
          f"rolled back to v{restored}")

    # 3. Authenticate once more against the rolled-back (pre-drift) model:
    #    the drifted user's fresh windows should score noticeably worse.
    import numpy as np

    matrix = drifted_user.sample_windows(
        8, config.window_noise, np.random.default_rng(0), simulator.feature_names
    )
    response = simulator.gateway.authenticate(
        drifted_user.user_id,
        matrix.values,
        [CoarseContext(label) for label in matrix.contexts],
    )
    print(f"post-rollback accept rate on drifted behaviour: "
          f"{response.accept_rate:.1%} (model v{response.model_version})")

    # 4. Storage stays bounded no matter how long the fleet runs.
    stats = simulator.gateway.server.store.stats()
    print(f"feature store: {stats.n_windows} windows across {stats.n_buffers} "
          f"ring buffers on {len(stats.windows_per_shard)} shards "
          f"({stats.total_evicted} old windows evicted)")


if __name__ == "__main__":
    main()
