"""Fleet-scale serving over HTTP: 500 users through the wire protocol.

Where the other examples drive a single user through the sensor-accurate
paper pipeline, this one exercises the ``repro.service`` subsystem end to
end **over real sockets**: an HTTP server (``repro.service.transport``)
exposes the micro-batching ``ServiceFrontend`` at ``POST /v1/requests``,
and a 500-user fleet runs its whole lifecycle — enrollment into a sharded
ring-buffer feature store, per-context training published to the versioned
model registry, continuous authentication, masquerade attacks, behavioural
drift and retraining — with every protocol request JSON-encoded, sent
through a ``ServiceClient``, and batch-coalesced into fused scoring passes
on the server side, where the registry-published detector labels every
window's context.

Run with::

    python examples/fleet_scale_service.py
"""

import numpy as np

from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, RollbackRequest
from repro.service.transport import ServiceClient, ServiceHTTPServer


def main() -> None:
    # 1. Configure the 500-user fleet, expose its frontend over HTTP on a
    #    free local port, and point the simulator's request channel at an
    #    HTTP client: every enroll / authenticate / drift request now
    #    crosses a real socket through the JSON wire codec.
    config = FleetConfig(n_users=500, seed=7)
    simulator = FleetSimulator(config)
    with ServiceHTTPServer(simulator.frontend) as server:
        client = ServiceClient(port=server.port)
        simulator.channel = client
        print(f"serving the fleet protocol on http://127.0.0.1:{server.port}")
        print(f"running the {config.n_users}-user lifecycle "
              "(enroll -> auth -> attack -> drift -> retrain) over HTTP...")
        report = simulator.run()
        print()
        print(report.to_text())

        # 2. The registry keeps every trained version; roll one user back by
        #    submitting a typed RollbackRequest over the wire.
        registry = simulator.gateway.registry
        drifted_user = simulator.users[0]  # drifted, so it has two versions
        versions = registry.versions(drifted_user.user_id)
        serving = registry.latest_version(drifted_user.user_id)
        rollback = client.submit(RollbackRequest(user_id=drifted_user.user_id))
        print()
        print(f"{drifted_user.user_id}: versions={versions}, was serving "
              f"v{serving}, rolled back to v{rollback.serving_version}")

        # 3. Authenticate once more against the rolled-back (pre-drift)
        #    model: the drifted user's fresh windows should score noticeably
        #    worse.  The service detects the windows' contexts itself
        #    (contexts=None) inside the same coalesced pass.
        matrix = drifted_user.sample_windows(
            8, config.window_noise, np.random.default_rng(0), simulator.feature_names
        )
        response = client.submit(
            AuthenticateRequest(user_id=drifted_user.user_id, features=matrix.values)
        )
        print(f"post-rollback accept rate on drifted behaviour: "
              f"{response.accept_rate:.1%} (model v{response.model_version})")

        # 4. Storage stays bounded no matter how long the fleet runs, and
        #    the transport, frontend and backend metrics all land in the one
        #    snapshot the /metrics endpoint serves.
        stats = simulator.gateway.server.store.stats()
        print(f"feature store: {stats.n_windows} windows across {stats.n_buffers} "
              f"ring buffers on {len(stats.windows_per_shard)} shards "
              f"({stats.total_evicted} old windows evicted)")
        snapshot = client.metrics()
        counters = snapshot["counters"]
        auth_latency = snapshot["latencies"]["frontend.authenticate"]
        print(f"transport: {counters['transport.requests']} HTTP exchanges; "
              f"frontend: {counters['frontend.requests']} requests, "
              f"{counters['frontend.coalesced_windows']} windows coalesced into "
              f"{counters['frontend.coalesced_batches']} batches "
              f"({counters['frontend.stack_cache.hits']} fused-stack cache hits), "
              f"{counters['context.detections']} contexts detected server-side, "
              f"p95 batch latency {auth_latency['p95_s'] * 1e3:.1f} ms")
        client.close()


if __name__ == "__main__":
    main()
