"""Run an adversarial campaign against a live serving transport.

Enrolls a small fleet, starts the HTTP service over it, provisions one
caller credential per attacker, and drives all four attack campaigns —
zero-effort, mimicry, replay, stolen-device — through a real
:class:`~repro.service.transport.ServiceClient`.  Prints the
per-attacker detection report (window-level FAR, detection latency,
replay flags) and the per-caller attribution view that separates the
hostile traffic from the fleet operator's.

Run it::

    PYTHONPATH=src python examples/adversarial_fleet.py --users 40
    PYTHONPATH=src python examples/adversarial_fleet.py --codec binary
"""

import argparse

from repro.attacks.fleet import AttackFleet, AttackFleetConfig
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.transport import ServiceClient, ServiceHTTPServer


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Attack a live authentication service with a fleet of adversaries"
    )
    parser.add_argument("--users", type=int, default=40, help="fleet size")
    parser.add_argument(
        "--attackers", type=int, default=4, help="attackers per campaign"
    )
    parser.add_argument(
        "--mimicry-strength",
        type=float,
        default=0.85,
        help="fraction of the victim's behaviour the mimicry campaign copies",
    )
    parser.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="wire codec the attackers use for scoring traffic",
    )
    parser.add_argument("--seed", type=int, default=11, help="fleet seed")
    args = parser.parse_args()

    print(f"[1/4] enrolling a {args.users}-user fleet ...")
    fleet = FleetSimulator(FleetConfig(n_users=args.users, seed=args.seed))
    fleet.build_users()
    fleet.enroll_fleet()

    print("[2/4] starting the HTTP service over the fleet's frontend ...")
    server = ServiceHTTPServer(fleet.frontend, port=0, callers=fleet.callers)
    server.serve_background()
    print(f"      listening on 127.0.0.1:{server.port}")

    harness = AttackFleet(
        fleet,
        AttackFleetConfig(
            n_attackers=args.attackers,
            mimicry_strength=args.mimicry_strength,
            seed=args.seed + 90,
        ),
    )
    keys = harness.provision()
    print(
        f"[3/4] provisioned {len(keys)} hostile callers; "
        f"running campaigns over {args.codec} HTTP ..."
    )
    report = harness.run(
        channel_for=lambda key: ServiceClient(
            port=server.port, api_key=key, codec=args.codec
        ),
        run_id=f"example-{args.codec}",
    )

    print("[4/4] per-attacker detection report:\n")
    print(report.to_text())

    print("\nper-caller attribution (hostile traffic on its own counters):")
    snapshot = fleet.callers.snapshot()
    for caller_id in sorted(snapshot):
        if caller_id.startswith("attacker-"):
            record = snapshot[caller_id]
            print(
                f"  {caller_id:<28} requests={record['requests']:<3} "
                f"denied={record['denied']} throttled={record['throttled']}"
            )
    errors = server.telemetry.counter_value("transport.server_errors")
    print(f"\ntransport.server_errors = {errors} (the chaos invariant)")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
