"""Design-space exploration: devices, contexts, window sizes and classifiers.

Reproduces the spirit of Section V in one script: it evaluates the
authentication pipeline across the paper's main design axes and prints the
FRR / FAR / accuracy of each configuration, so you can see for yourself that
phone+watch with per-context models and 6-second windows is the sweet spot.

Run with::

    python examples/design_space_exploration.py
"""

from repro.core.evaluation import EvaluationConfig, evaluate_configuration
from repro.experiments.common import DEFAULT_SCALE, format_table, get_free_form_dataset
from repro.ml import (
    GaussianNaiveBayes,
    KernelRidgeClassifier,
    KNeighborsClassifier,
    LinearSVMClassifier,
    LogisticRegressionClassifier,
)
from repro.sensors.types import DeviceType

PHONE = (DeviceType.SMARTPHONE,)
BOTH = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH)


def evaluate(dataset, **kwargs):
    """Evaluate one configuration and return its percentage summary."""
    config = EvaluationConfig(**kwargs)
    return evaluate_configuration(dataset, config, seed=DEFAULT_SCALE.seed).summary()


def main() -> None:
    dataset = get_free_form_dataset(DEFAULT_SCALE)

    print("Axis 1 — devices and contexts (Table VII):")
    rows = []
    for use_context in (False, True):
        for name, devices in (("phone", PHONE), ("phone+watch", BOTH)):
            summary = evaluate(dataset, devices=devices, use_context=use_context)
            rows.append(
                (
                    "context" if use_context else "no context",
                    name,
                    summary["FRR%"],
                    summary["FAR%"],
                    summary["Accuracy%"],
                )
            )
    print(format_table(["contexts", "devices", "FRR%", "FAR%", "Acc%"], rows))

    print("\nAxis 2 — window size (Figure 4):")
    rows = []
    for window in (2.0, 4.0, 6.0, 10.0):
        summary = evaluate(dataset, devices=BOTH, window_seconds=window)
        rows.append((window, summary["FRR%"], summary["FAR%"], summary["Accuracy%"]))
    print(format_table(["window (s)", "FRR%", "FAR%", "Acc%"], rows))

    print("\nAxis 3 — classifier (Table VI, extended with k-NN and logistic regression):")
    classifiers = {
        "KRR (paper)": lambda: KernelRidgeClassifier(ridge=1.0),
        "KRR (RBF kernel)": lambda: KernelRidgeClassifier(kernel="rbf", gamma=0.1),
        "Linear SVM": lambda: LinearSVMClassifier(n_iterations=400),
        "Naive Bayes": lambda: GaussianNaiveBayes(),
        "k-NN (k=5)": lambda: KNeighborsClassifier(n_neighbors=5),
        "Logistic regression": lambda: LogisticRegressionClassifier(n_iterations=300),
    }
    rows = []
    for name, factory in classifiers.items():
        summary = evaluate(dataset, devices=BOTH, classifier_factory=factory)
        rows.append((name, summary["FRR%"], summary["FAR%"], summary["Accuracy%"]))
    print(format_table(["classifier", "FRR%", "FAR%", "Acc%"], rows))


if __name__ == "__main__":
    main()
