"""Multi-process sharded serving, end to end in one script.

Trains a small fleet, persists every model to a registry root, then
brings up a real cluster over it: N worker **processes** (each a full
service stack over its consistent-hash slice of the fleet) behind one
:class:`~repro.service.cluster.ShardRouter`.  A binary client talks to
the router exactly as it would to a single server — the split/dispatch/
merge is invisible except in the merged fleet telemetry.

Run it::

    PYTHONPATH=src python examples/cluster_serving.py --users 40 --workers 2

The same cluster is also available as a CLI for a long-lived deployment::

    PYTHONPATH=src python -m repro.service.cluster router \\
        --workers 4 --registry-root /path/to/registry --port 8415
"""

import argparse
import os
import signal
import tempfile
import time
import urllib.request

import numpy as np

from repro.sensors.types import CoarseContext
from repro.service.cluster import ShardRouter, WorkerPool
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest
from repro.service.transport import METRICS_PATH, ServiceClient


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=40)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as root:
        registry_root = os.path.join(root, "registry")

        # 1. Train once, persist every published model to the registry
        #    root.  The workers will serve this exact snapshot.
        print(f"training a {args.users}-user fleet ...")
        config = FleetConfig(n_users=args.users, seed=7, server_side_contexts=False)
        simulator = FleetSimulator(config, registry_root=registry_root)
        simulator.build_users()
        simulator.enroll_fleet()

        rng = np.random.default_rng(11)
        requests = [
            AuthenticateRequest(
                user_id=user.user_id,
                features=probe.values,
                contexts=tuple(CoarseContext(label) for label in probe.contexts),
            )
            for user in simulator.users
            for probe in [
                user.sample_windows(
                    3, config.window_noise, rng, simulator.feature_names
                )
            ]
        ]
        reference = simulator.frontend.submit_many(requests)

        # 2. Bring up the cluster: worker processes + the shard router.
        with WorkerPool(args.workers, registry_root=registry_root) as pool:
            with ShardRouter(pool) as router:
                print(
                    f"cluster up: {args.workers} worker processes "
                    f"(pids {sorted(filter(None, pool.pids().values()))}), "
                    f"router on port {router.port}"
                )

                # 3. One binary client against the router — the whole
                #    fleet in one batch, split across shards and merged
                #    back in request order.
                with ServiceClient(
                    port=router.port, api_key=pool.api_key, codec="binary"
                ) as client:
                    responses = client.submit_many(requests)
                    identical = all(
                        np.array_equal(remote.scores, local.scores)
                        and np.array_equal(remote.accepted, local.accepted)
                        for local, remote in zip(reference, responses)
                    )
                    accept = float(
                        np.mean([response.accept_rate for response in responses])
                    )
                    print(
                        f"authenticated {len(responses)} users through the "
                        f"router: mean accept rate {accept:.1%}, decisions "
                        f"bit-for-bit identical to in-process: {identical}"
                    )

                    # 4. Fleet telemetry: the router merges every worker's
                    #    counters and histograms into one view.
                    fleet = router.fleet_metrics()
                    print(
                        f"fleet metrics: "
                        f"{fleet['counters'].get('transport.requests', 0)} worker "
                        f"HTTP exchanges across {len(fleet['shards_scraped'])} "
                        f"shards, "
                        f"{fleet['counters'].get('auth.windows', 0):.0f} windows "
                        f"scored fleet-wide"
                    )
                    prometheus = urllib.request.urlopen(
                        urllib.request.Request(
                            f"http://127.0.0.1:{router.port}{METRICS_PATH}",
                            headers={"Accept": "text/plain"},
                        )
                    ).read().decode()
                    families = [
                        line for line in prometheus.splitlines()
                        if line.startswith("# TYPE")
                    ]
                    print(f"prometheus exposition: {len(families)} metric families")

                    # 5. Kill a worker: the pool detects the crash and
                    #    restarts it; the shard comes back on its own.
                    victim = pool.pids()[0]
                    print(f"killing worker 0 (pid {victim}) ...")
                    os.kill(victim, signal.SIGKILL)
                    deadline = time.monotonic() + 15.0
                    while time.monotonic() < deadline:
                        health = router.health()
                        if health["ready"] and health["shards"]["0"]["restarts"]:
                            break
                        time.sleep(0.1)
                    health = router.health()
                    print(
                        f"shard 0 restarted (restarts="
                        f"{health['shards']['0']['restarts']}, new pid "
                        f"{health['shards']['0']['pid']}); cluster ready: "
                        f"{health['ready']}"
                    )
                    responses = client.submit_many(requests[:4])
                    print(
                        f"post-restart probe: {len(responses)} users "
                        f"re-authenticated through the restarted shard"
                    )
        print("cluster drained and stopped cleanly")


if __name__ == "__main__":
    main()
