"""Continuous re-authentication with a mid-day device theft.

Simulates the scenario the paper's introduction motivates: the owner uses the
phone normally, an attacker walks off with it after lunch, and the response
module de-authenticates the attacker and locks access to sensitive data
within a couple of windows.

Run with::

    python examples/continuous_reauthentication.py
"""

from repro import (
    AuthenticationServer,
    ContextDetector,
    SmarterYou,
    SmarterYouConfig,
    build_study_population,
    collect_free_form_dataset,
)
from repro.core.response import DeviceState, ResponseAction
from repro.datasets import collect_lab_context_dataset
from repro.datasets.collection import collect_session
from repro.sensors.types import Context, DeviceType


def deploy_system(population, dataset, owner):
    """Train and deploy SmarterYou for *owner* (quickstart steps condensed)."""
    config = SmarterYouConfig(target_enrollment_windows=40, lockout_consecutive_rejections=2)
    lab = collect_lab_context_dataset(population, session_duration=90.0, seed=11)
    phone_windows = lab.device_matrix(
        DeviceType.SMARTPHONE, config.window_seconds, spec=config.phone_feature_spec
    )
    detector = ContextDetector(spec=config.phone_feature_spec)
    detector.fit(phone_windows, exclude_user=owner.user_id)
    server = AuthenticationServer(seed=3)
    system = SmarterYou(config=config, server=server, context_detector=detector)
    system.contribute_other_users(dataset, exclude=owner.user_id)
    system.enroll(owner.user_id, dataset.sessions_for(owner.user_id))
    return system


def narrate(label: str, outcomes) -> None:
    """Print a one-line summary per authenticated window."""
    for index, outcome in enumerate(outcomes):
        marker = "OK " if outcome.decision.accepted else "REJ"
        print(
            f"  [{label} window {index:2d}] {marker} context={outcome.detected_context.value:10s} "
            f"CS={outcome.decision.confidence_score:+.2f} action={outcome.action.value}"
        )


def main() -> None:
    population = build_study_population(n_users=6, seed=42)
    dataset = collect_free_form_dataset(
        population, session_duration=120.0, sessions_per_context=2, seed=7
    )
    owner = population[0]
    thief = population[3]
    system = deploy_system(population, dataset, owner)

    print("Morning: the owner walks to work while reading the news.")
    morning = collect_session(owner.profile, Context.MOVING, 60.0, seed=100)
    narrate("owner ", system.process_session(morning, day=0.3))

    print("\nLunch: the phone is left on the table and an attacker picks it up.")
    stolen = collect_session(
        thief.profile.with_user_id(thief.user_id), Context.HANDHELD_STATIC, 60.0, seed=200
    )
    outcomes = system.process_session(stolen, day=0.5)
    narrate("thief ", outcomes)

    lock_events = [o for o in outcomes if o.action is ResponseAction.LOCK_DEVICE]
    first_lock = outcomes.index(lock_events[0]) if lock_events else None
    print(f"\nDevice state after the theft: {system.response.state.value}")
    if first_lock is not None:
        seconds = (first_lock + 1) * system.config.window_seconds
        print(f"The attacker was locked out after {seconds:.0f} seconds of use.")
    print(f"Sensitive data accessible: {system.response.sensitive_data_accessible}")

    print("\nAfternoon: the owner recovers the phone and re-authenticates explicitly.")
    system.response.explicit_reauthentication(success=True)
    afternoon = collect_session(owner.profile, Context.HANDHELD_STATIC, 60.0, seed=300)
    narrate("owner ", system.process_session(afternoon, day=0.7))
    assert system.response.state is not DeviceState.LOCKED
    print(f"\nDevice state at the end of the day: {system.response.state.value}")


if __name__ == "__main__":
    main()
