"""Behavioural drift and automatic retraining (the paper's Figure 7 story).

Simulates a user whose behaviour slowly drifts after enrolment.  The deployed
model's confidence score sinks toward the retraining threshold, the
confidence-score monitor fires, the cloud retrains on fresh data, and the
score recovers.

Run with::

    python examples/behavioural_drift_retraining.py
"""

from repro.experiments.common import DEFAULT_SCALE
from repro.experiments.fig7_retraining import run as run_drift_trace


def main() -> None:
    result = run_drift_trace(DEFAULT_SCALE, n_days=12)
    threshold = result.threshold
    print(f"User {result.user_id}: 12 simulated days of behavioural drift")
    print(f"Retraining threshold on the confidence score: {threshold}\n")

    for entry in result.daily:
        bar_length = max(0, int(round(40 * max(entry.mean_confidence, 0.0))))
        marker = "  <-- retrained" if entry.retrained_today else ""
        below = "!" if entry.mean_confidence < threshold else " "
        print(
            f"  day {entry.day:4.0f}  CS={entry.mean_confidence:+.2f} {below} "
            f"accepted={entry.accepted_fraction:4.0%}  {'#' * bar_length}{marker}"
        )

    print()
    if result.retraining_days:
        days = ", ".join(f"{day:.0f}" for day in result.retraining_days)
        print(f"Automatic retraining triggered on day(s): {days}")
        print(f"Confidence recovered above the threshold afterwards: {result.confidence_recovered()}")
    else:
        print("No retraining was triggered within the simulated horizon.")


if __name__ == "__main__":
    main()
