"""Client-side walkthrough of the HTTP transport (run against a live server).

Start a server first (terminal 1) — it prints a provisioned v2 API key::

    PYTHONPATH=src python -m repro.service.transport --port 8414 --demo-fleet 50

then run this client against it (terminal 2), passing that key::

    PYTHONPATH=src python examples/transport_client.py --port 8414 --api-key KEY

Everything below happens over the wire: enrollment uploads, a forced
training round, batched authentications (coalesced server-side into one
fused scoring pass), a drift report, a rollback and the telemetry
snapshot — each a typed protocol request JSON-encoded by the wire codec.
With ``--api-key`` every request travels in a versioned caller envelope on
the ``/v2`` endpoints (the rollback automatically routes to ``/v2/admin``);
without it the client speaks the legacy unauthenticated ``/v1`` surface.
Add ``--codec binary`` (requires the key) to ship batches as binary
columnar frames — one contiguous float64 block per batch instead of JSON —
and watch the authenticate step also run as a chunked streaming upload.
The demo fleet serves 12 feature columns named ``f00``..``f11``; this
client synthesises windows against that schema.
"""

import argparse

import numpy as np

from repro.features.vector import FeatureMatrix
from repro.service.protocol import (
    AuthenticateRequest,
    DriftReport,
    EnrollRequest,
    RollbackRequest,
)
from repro.service.transport import ServiceClient

#: The demo fleet's feature schema (FleetConfig.n_features defaults to 12).
FEATURE_NAMES = [f"f{i:02d}" for i in range(12)]


def windows(user_id: str, mean: float, n_per_context: int, rng) -> FeatureMatrix:
    """Synthetic labelled windows for one user under both coarse contexts."""
    blocks, labels = [], []
    for context, offset in (("stationary", 0.0), ("moving", 1.0)):
        centre = mean + offset
        blocks.append(rng.normal(centre, 0.5, size=(n_per_context, len(FEATURE_NAMES))))
        labels.extend([context] * n_per_context)
    return FeatureMatrix(
        values=np.vstack(blocks),
        feature_names=list(FEATURE_NAMES),
        user_ids=[user_id] * len(labels),
        contexts=labels,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8414)
    parser.add_argument(
        "--api-key",
        default=None,
        help="v2 caller credential (printed by the server at startup); "
        "omit to speak the legacy /v1 surface",
    )
    parser.add_argument(
        "--codec",
        choices=ServiceClient.CODECS,
        default="json",
        help="wire form of submit_many batches (binary requires --api-key)",
    )
    args = parser.parse_args()

    rng = np.random.default_rng(42)
    user = "wire-example-user"
    with ServiceClient(
        host=args.host, port=args.port, api_key=args.api_key, codec=args.codec
    ) as client:
        health = client.health()
        print(f"speaking API v{client.api_version}; server ok, "
              f"uptime {health['uptime_s']:.1f}s, "
              f"{health['frontend_requests']} frontend requests so far")

        # 1. Enroll: buffer windows, then force one training round.
        buffered = client.submit(
            EnrollRequest(user_id=user, matrix=windows(user, 4.0, 12, rng), train=False)
        )
        print(f"enroll: {buffered.status}, {buffered.windows_stored} windows stored")
        trained = client.submit(
            EnrollRequest(user_id=user, matrix=windows(user, 4.0, 12, rng), train=True)
        )
        print(f"enroll: {trained.status}, model v{trained.model_version}")

        # 2. Authenticate a batch: our own windows and an imposter's, in ONE
        #    POST — the server coalesces both into a single fused pass and
        #    detects every window's context itself (contexts=None).
        own = windows(user, 4.0, 4, rng)
        imposter = windows(user, 0.0, 4, rng)  # a demo-fleet-like cluster
        own_resp, imposter_resp = client.submit_many(
            [
                AuthenticateRequest(user_id=user, features=own.values),
                AuthenticateRequest(user_id=user, features=imposter.values),
            ]
        )
        print(f"own windows accepted      : {own_resp.accept_rate:6.1%} "
              f"(model v{own_resp.model_version}, {args.codec} codec)")
        print(f"imposter windows accepted : {imposter_resp.accept_rate:6.1%}")

        # 2b. With the binary codec, the same batch also streams as chunked
        #     columnar frames — the shape a 100k-window upload would take.
        if args.codec == "binary":
            streamed = client.submit_stream(
                iter(
                    [
                        AuthenticateRequest(user_id=user, features=own.values),
                        AuthenticateRequest(user_id=user, features=imposter.values),
                    ]
                ),
                chunk_windows=own.values.shape[0],
            )
            print(f"streamed upload           : {len(streamed)} responses, "
                  f"accept rates {streamed[0].accept_rate:.1%} / "
                  f"{streamed[1].accept_rate:.1%}")

        # 3. Report drift (retrains server-side), then roll it back.
        drift = client.submit(
            DriftReport(user_id=user, matrix=windows(user, 5.0, 16, rng))
        )
        print(f"drift report: v{drift.previous_version} -> v{drift.new_version}")
        rollback = client.submit(RollbackRequest(user_id=user))
        print(f"rollback: serving v{rollback.serving_version} again")

        # 4. Telemetry: the same snapshot an operator dashboard would pull.
        counters = client.metrics()["counters"]
        print(f"server counters: {counters.get('transport.requests', 0)} HTTP "
              f"exchanges, {counters.get('auth.windows', 0)} windows scored, "
              f"{counters.get('train.rounds', 0)} training rounds")


if __name__ == "__main__":
    main()
