"""Benchmark: fused-stack caching and the HTTP transport at fleet scale.

Two measurements on the ISSUE 3 acceptance shape (a 500-user fleet batch):

1. **Fused-stack cache** — coalesced :func:`~repro.core.scoring.score_requests`
   throughput with a warm :class:`~repro.core.scoring.FusedStackCache`
   versus the PR 2 baseline that rebuilds the stacked parameter matrices on
   every flush.  The acceptance bar is a measurable speedup with bit-for-bit
   identical decisions.
2. **Transport** — the same coalesced batch submitted through a live
   :class:`~repro.service.transport.ServiceHTTPServer` over a real socket
   (JSON wire codec both ways), versus the in-process frontend.

Results land in ``BENCH_transport.json`` at the repository root (run pytest
with ``-s`` to see the numbers inline).
"""

import json
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.scoring import FusedStackCache, score_requests
from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse
from repro.service.transport import ServiceClient, ServiceHTTPServer

#: The ISSUE's acceptance fleet size.
BENCH_FLEET_USERS = 500

#: Windows per user per authenticate request (split across both contexts).
BENCH_WINDOWS_PER_USER = 8

#: Timing rounds; the best round of each path is compared.
BENCH_ROUNDS = 5

#: Acceptance bar: the warm cache must beat rebuild-every-flush by at least
#: this factor (measured ~1.2x on the reference machine; the bar is kept
#: conservative so CI noise cannot flake the suite).
REQUIRED_CACHE_SPEEDUP = 1.03

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_transport.json"


def _best(callable_, rounds=BENCH_ROUNDS):
    times = []
    for _ in range(rounds):
        start = perf_counter()
        callable_()
        times.append(perf_counter() - start)
    return min(times)


def test_bench_transport_and_fused_stack_cache():
    config = FleetConfig(n_users=BENCH_FLEET_USERS, seed=5, server_side_contexts=False)
    simulator = FleetSimulator(config)
    simulator.build_users()
    simulator.enroll_fleet()

    rng = np.random.default_rng(23)
    probes = [
        user.sample_windows(
            BENCH_WINDOWS_PER_USER // 2,
            config.window_noise,
            rng,
            simulator.feature_names,
        )
        for user in simulator.users
    ]
    total_windows = BENCH_FLEET_USERS * BENCH_WINDOWS_PER_USER

    # ------------------------------------------------------------------ #
    # 1. coalesced scoring: warm cache vs rebuild-every-flush (PR 2)
    # ------------------------------------------------------------------ #
    scorers = [simulator.gateway.scorer_for(user.user_id) for user in simulator.users]
    features_list = [probe.values for probe in probes]
    contexts_list = [
        [CoarseContext(label) for label in probe.contexts] for probe in probes
    ]

    baseline_results = score_requests(scorers, features_list, contexts_list)
    cache = FusedStackCache()
    cached_results = score_requests(scorers, features_list, contexts_list, cache)
    for baseline, cached in zip(baseline_results, cached_results):
        np.testing.assert_array_equal(cached.scores, baseline.scores)
        np.testing.assert_array_equal(cached.accepted, baseline.accepted)

    uncached_s = _best(lambda: score_requests(scorers, features_list, contexts_list))
    cached_s = _best(
        lambda: score_requests(scorers, features_list, contexts_list, cache)
    )
    cache_speedup = uncached_s / cached_s
    assert cache.hits >= BENCH_ROUNDS  # every timed cached flush hit

    # ------------------------------------------------------------------ #
    # 2. the same batch over a live HTTP socket
    # ------------------------------------------------------------------ #
    requests = [
        AuthenticateRequest(
            user_id=user.user_id,
            features=probe.values,
            contexts=tuple(CoarseContext(label) for label in probe.contexts),
        )
        for user, probe in zip(simulator.users, probes)
    ]
    in_process = simulator.frontend.submit_many(requests)
    with ServiceHTTPServer(simulator.frontend) as server:
        with ServiceClient(port=server.port) as client:
            over_the_wire = client.submit_many(requests)  # warm the connection
            for local, remote in zip(in_process, over_the_wire):
                assert isinstance(remote, AuthenticationResponse)
                np.testing.assert_array_equal(remote.scores, local.scores)
                np.testing.assert_array_equal(remote.accepted, local.accepted)
            transport_s = _best(lambda: client.submit_many(requests))
            inprocess_s = _best(lambda: simulator.frontend.submit_many(requests))

    result = {
        "fleet_users": BENCH_FLEET_USERS,
        "windows_per_user": BENCH_WINDOWS_PER_USER,
        "total_windows": total_windows,
        "rounds": BENCH_ROUNDS,
        "coalesced_uncached_s": uncached_s,
        "coalesced_cached_s": cached_s,
        "coalesced_uncached_windows_per_s": total_windows / uncached_s,
        "coalesced_cached_windows_per_s": total_windows / cached_s,
        "cache_speedup": cache_speedup,
        "transport_batch_s": transport_s,
        "transport_windows_per_s": total_windows / transport_s,
        "inprocess_batch_s": inprocess_s,
        "inprocess_windows_per_s": total_windows / inprocess_s,
        "transport_overhead_factor": transport_s / inprocess_s,
        "identical_decisions": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print()
    print(
        f"coalesced, rebuild every flush: {total_windows} windows in "
        f"{uncached_s * 1e3:.1f} ms ({total_windows / uncached_s:,.0f} windows/s)"
    )
    print(
        f"coalesced, warm stack cache   : {total_windows} windows in "
        f"{cached_s * 1e3:.1f} ms ({total_windows / cached_s:,.0f} windows/s)"
    )
    print(
        f"cache speedup                 : {cache_speedup:.2f}x "
        f"(bar: >= {REQUIRED_CACHE_SPEEDUP}x)"
    )
    print(
        f"HTTP transport (one batch)    : {total_windows} windows in "
        f"{transport_s * 1e3:.1f} ms ({total_windows / transport_s:,.0f} windows/s; "
        f"{transport_s / inprocess_s:.1f}x the in-process dispatch)  "
        f"-> {RESULT_PATH.name}"
    )

    assert cache_speedup >= REQUIRED_CACHE_SPEEDUP, (
        f"fused-stack cache only {cache_speedup:.3f}x faster than rebuilding "
        f"every flush (required {REQUIRED_CACHE_SPEEDUP}x)"
    )
