"""Benchmark: wire codecs, fused-stack caching and the HTTP transport.

Measurements on the ISSUE acceptance shape (a 500-user fleet batch of
4000 windows):

1. **Fused-stack cache** — coalesced :func:`~repro.core.scoring.score_requests`
   throughput with a warm :class:`~repro.core.scoring.FusedStackCache`
   versus the PR 2 baseline that rebuilds the stacked parameter matrices on
   every flush.
2. **Transport codecs** — the same coalesced batch submitted through a live
   :class:`~repro.service.transport.ServiceHTTPServer` over a real socket,
   once through the JSON wire codec and once as a **binary columnar frame**
   (:mod:`repro.service.wirebin`), versus the in-process frontend.  The
   acceptance bar is ``transport_overhead_factor`` (the binary codec's)
   ≤ 3x with decisions bit-for-bit identical across all three doors.
3. **Streaming** — a 100k-window upload as chunked binary frames
   (:meth:`~repro.service.transport.ServiceClient.submit_stream`), which
   bounds client and server memory by the chunk size, never the upload.
4. **Connection pool** — 32 concurrent submitter threads sharing one
   pooled client (``pool_size=32``) versus the single-connection client
   they used to queue on.
5. **Tracing overhead** — the same binary batch with a
   :class:`~repro.service.tracing.Tracer` attached (sample rate 1.0,
   every request traced) versus untraced, flipped at runtime on the same
   warmed-up server; the traced path must stay within
   ``MAX_TRACING_OVERHEAD`` (5%) of untraced throughput, and one traced
   batch is exported as a JSONL trace sample (the committed
   ``benchmarks/artifacts/trace_sample.jsonl`` is refreshed only when
   missing or when ``REPRO_BENCH_UPDATE_ARTIFACTS=1``; routine runs write
   the gitignored ``trace_sample.latest.jsonl`` instead).

Results land in ``BENCH_transport.json`` at the repository root (run pytest
with ``-s`` to see the numbers inline).
"""

import json
import os
import statistics
import threading
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.scoring import FusedStackCache, score_requests
from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse
from repro.service.tracing import (
    SPAN_ADMISSION,
    SPAN_FUSED_PASS,
    SPAN_QUEUE_WAIT,
    SPAN_RESPONSE_FRAMING,
    Tracer,
)
from repro.service.transport import ServiceClient, ServiceHTTPServer

#: The ISSUE's acceptance fleet size.
BENCH_FLEET_USERS = 500

#: Windows per user per authenticate request (split across both contexts).
BENCH_WINDOWS_PER_USER = 8

#: Timing rounds; the best round of each path is compared.
BENCH_ROUNDS = 5

#: Total windows of the streamed-upload measurement (the acceptance's
#: "100k-window upload completes with bounded memory" shape).
BENCH_STREAM_WINDOWS = 100_000

#: Frame size of the streamed upload, in windows.
BENCH_STREAM_CHUNK = 8192

#: Concurrent submitter threads in the connection-pool measurement.
BENCH_POOL_THREADS = 32

#: Alternating traced/untraced measurement pairs of the overhead gate
#: (each timing averages two submits to dilute per-round jitter).
BENCH_TRACING_PAIRS = 10

#: Acceptance bar: the warm cache must beat rebuild-every-flush by at least
#: this factor (measured ~1.2x on the reference machine; the bar is kept
#: conservative so CI noise cannot flake the suite).
REQUIRED_CACHE_SPEEDUP = 1.03

#: Acceptance bar: binary-HTTP dispatch within this factor of in-process
#: (measured ~0.9x on the reference machine — the columnar decode feeds the
#: fused pass with zero copies, so the wire tax all but disappears).
REQUIRED_BINARY_OVERHEAD = 3.0

#: Acceptance bar: full-rate tracing may slow the binary batch path by at
#: most this fraction (measured ~1-2% — one trace per frame, spans shared
#: by reference across its requests).
MAX_TRACING_OVERHEAD = 0.05

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_transport.json"

#: Sample trace artifact: one fully traced 500-user batch, one JSON event
#: per request.  The committed copy is documentation of the trace format;
#: routine runs write to the gitignored ``.latest`` sibling so re-running
#: the benchmark does not churn 500 UUIDs through the diff.  The tracked
#: file is rewritten only when missing or when
#: ``REPRO_BENCH_UPDATE_ARTIFACTS=1`` (set it when the trace schema
#: changes).
TRACE_ARTIFACT = Path(__file__).resolve().parent / "artifacts" / "trace_sample.jsonl"
TRACE_SCRATCH = TRACE_ARTIFACT.with_name("trace_sample.latest.jsonl")


def _best(callable_, rounds=BENCH_ROUNDS):
    times = []
    for _ in range(rounds):
        start = perf_counter()
        callable_()
        times.append(perf_counter() - start)
    return min(times)


def _assert_identical(reference, responses):
    for local, remote in zip(reference, responses):
        assert isinstance(remote, AuthenticationResponse), remote
        np.testing.assert_array_equal(remote.scores, local.scores)
        np.testing.assert_array_equal(remote.accepted, local.accepted)
        assert remote.result.model_contexts == local.result.model_contexts
        assert remote.model_version == local.model_version


def test_bench_transport_and_fused_stack_cache():
    config = FleetConfig(n_users=BENCH_FLEET_USERS, seed=5, server_side_contexts=False)
    simulator = FleetSimulator(config)
    simulator.build_users()
    simulator.enroll_fleet()

    rng = np.random.default_rng(23)
    probes = [
        user.sample_windows(
            BENCH_WINDOWS_PER_USER // 2,
            config.window_noise,
            rng,
            simulator.feature_names,
        )
        for user in simulator.users
    ]
    total_windows = BENCH_FLEET_USERS * BENCH_WINDOWS_PER_USER

    # ------------------------------------------------------------------ #
    # 1. coalesced scoring: warm cache vs rebuild-every-flush (PR 2)
    # ------------------------------------------------------------------ #
    scorers = [simulator.gateway.scorer_for(user.user_id) for user in simulator.users]
    features_list = [probe.values for probe in probes]
    contexts_list = [
        [CoarseContext(label) for label in probe.contexts] for probe in probes
    ]

    baseline_results = score_requests(scorers, features_list, contexts_list)
    cache = FusedStackCache()
    cached_results = score_requests(scorers, features_list, contexts_list, cache)
    for baseline, cached in zip(baseline_results, cached_results):
        np.testing.assert_array_equal(cached.scores, baseline.scores)
        np.testing.assert_array_equal(cached.accepted, baseline.accepted)

    uncached_s = _best(lambda: score_requests(scorers, features_list, contexts_list))
    cached_s = _best(
        lambda: score_requests(scorers, features_list, contexts_list, cache)
    )
    cache_speedup = uncached_s / cached_s
    assert cache.hits >= BENCH_ROUNDS  # every timed cached flush hit

    # ------------------------------------------------------------------ #
    # 2. the same batch over a live HTTP socket: JSON vs binary frames
    # ------------------------------------------------------------------ #
    requests = [
        AuthenticateRequest(
            user_id=user.user_id,
            features=probe.values,
            contexts=tuple(CoarseContext(label) for label in probe.contexts),
        )
        for user, probe in zip(simulator.users, probes)
    ]
    in_process = simulator.frontend.submit_many(requests)
    with ServiceHTTPServer(simulator.frontend, callers=simulator.callers) as server:
        with ServiceClient(
            port=server.port, api_key=simulator.api_key
        ) as json_client, ServiceClient(
            port=server.port, api_key=simulator.api_key, codec="binary"
        ) as binary_client:
            # Warm the connections and pin bit-for-bit identical decisions
            # across in-process, JSON-HTTP and binary-HTTP dispatch.
            _assert_identical(in_process, json_client.submit_many(requests))
            _assert_identical(in_process, binary_client.submit_many(requests))
            _assert_identical(
                in_process,
                binary_client.submit_stream(iter(requests), chunk_windows=512),
            )
            json_s = _best(lambda: json_client.submit_many(requests))
            binary_s = _best(lambda: binary_client.submit_many(requests))
            inprocess_s = _best(lambda: simulator.frontend.submit_many(requests))

            # -------------------------------------------------------- #
            # 3. streaming: a 100k-window chunked upload
            # -------------------------------------------------------- #
            stream_windows_per_request = 200
            stream_requests = []
            windows = 0
            index = 0
            stream_rng = np.random.default_rng(29)
            while windows < BENCH_STREAM_WINDOWS:
                user = simulator.users[index % len(simulator.users)]
                probe = user.sample_windows(
                    stream_windows_per_request // 2,
                    config.window_noise,
                    stream_rng,
                    simulator.feature_names,
                )
                stream_requests.append(
                    AuthenticateRequest(
                        user_id=user.user_id,
                        features=probe.values,
                        contexts=tuple(
                            CoarseContext(label) for label in probe.contexts
                        ),
                    )
                )
                windows += stream_windows_per_request
                index += 1
            start = perf_counter()
            streamed = binary_client.submit_stream(
                iter(stream_requests), chunk_windows=BENCH_STREAM_CHUNK
            )
            stream_s = perf_counter() - start
            assert len(streamed) == len(stream_requests)
            assert all(
                isinstance(response, AuthenticationResponse) for response in streamed
            )

            # -------------------------------------------------------- #
            # 4. keep-alive pool: 32 concurrent submitters, one client
            # -------------------------------------------------------- #
            slice_size = max(1, len(requests) // BENCH_POOL_THREADS)
            slices = [
                requests[start : start + slice_size]
                for start in range(0, len(requests), slice_size)
            ]

            def _concurrent(client):
                threads = [
                    threading.Thread(target=client.submit_many, args=(chunk,))
                    for chunk in slices
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

            with ServiceClient(
                port=server.port,
                api_key=simulator.api_key,
                codec="binary",
                pool_size=BENCH_POOL_THREADS,
            ) as pooled_client, ServiceClient(
                port=server.port, api_key=simulator.api_key, codec="binary"
            ) as serial_client:
                _concurrent(pooled_client)  # warm the pool
                pooled_s = _best(lambda: _concurrent(pooled_client), rounds=3)
                serial_s = _best(lambda: _concurrent(serial_client), rounds=3)

            # -------------------------------------------------------- #
            # 5. tracing: traced vs untraced on the same warmed server
            # -------------------------------------------------------- #
            # One fully traced batch first, exported to the JSONL
            # artifact and checked for per-request span structure.
            refresh_artifact = not TRACE_ARTIFACT.exists() or os.environ.get(
                "REPRO_BENCH_UPDATE_ARTIFACTS"
            )
            trace_sink = TRACE_ARTIFACT if refresh_artifact else TRACE_SCRATCH
            trace_sink.parent.mkdir(exist_ok=True)
            trace_sink.unlink(missing_ok=True)
            sample_tracer = Tracer(
                sample_rate=1.0,
                ring_capacity=len(requests),
                jsonl_path=str(trace_sink),
            )
            server.set_tracer(sample_tracer)
            _assert_identical(in_process, binary_client.submit_many(requests))
            events = [
                event
                for event in sample_tracer.events()
                if event["kind"] == "binary-frame"
            ]
            assert len(events) == len(requests)
            for event in events:
                names = [span["name"] for span in event["spans"]]
                assert names == [
                    SPAN_ADMISSION,
                    SPAN_QUEUE_WAIT,
                    SPAN_FUSED_PASS,
                    SPAN_RESPONSE_FRAMING,
                ]
                span_sum = sum(span["duration_s"] for span in event["spans"])
                assert span_sum <= event["total_s"]
            assert len(trace_sink.read_text().splitlines()) >= len(requests)

            # Timed comparison: the tracer is flipped on and off the
            # warmed server in ALTERNATING pairs (a fresh in-memory
            # tracer: no disk I/O in the measured path), because this
            # machine's clock speed drifts by more than the overhead
            # being measured — pairing puts both paths in the same
            # thermal epoch, and the median pair ratio shrugs off the
            # outliers a sequential best-of comparison amplifies.
            # A noisy co-tenant (the rest of the test suite, CI siblings)
            # can still push one measurement over the bar, so the whole
            # comparison retries: real instrumentation cost shows up in
            # every attempt, scheduler noise does not.
            timed_tracer = Tracer(sample_rate=1.0, ring_capacity=len(requests))
            for attempt in range(3):
                traced_times: list[float] = []
                untraced_times: list[float] = []
                for _ in range(BENCH_TRACING_PAIRS):
                    server.set_tracer(None)
                    start = perf_counter()
                    binary_client.submit_many(requests)
                    binary_client.submit_many(requests)
                    untraced_times.append((perf_counter() - start) / 2)
                    server.set_tracer(timed_tracer)
                    start = perf_counter()
                    binary_client.submit_many(requests)
                    binary_client.submit_many(requests)
                    traced_times.append((perf_counter() - start) / 2)
                server.set_tracer(None)
                traced_binary_s = statistics.median(traced_times)
                untraced_binary_s = statistics.median(untraced_times)
                tracing_overhead = (
                    statistics.median(
                        traced / untraced
                        for traced, untraced in zip(traced_times, untraced_times)
                    )
                    - 1.0
                )
                if tracing_overhead <= MAX_TRACING_OVERHEAD:
                    break

    json_overhead = json_s / inprocess_s
    binary_overhead = binary_s / inprocess_s
    result = {
        "fleet_users": BENCH_FLEET_USERS,
        "windows_per_user": BENCH_WINDOWS_PER_USER,
        "total_windows": total_windows,
        "rounds": BENCH_ROUNDS,
        "coalesced_uncached_s": uncached_s,
        "coalesced_cached_s": cached_s,
        "coalesced_uncached_windows_per_s": total_windows / uncached_s,
        "coalesced_cached_windows_per_s": total_windows / cached_s,
        "cache_speedup": cache_speedup,
        "inprocess_batch_s": inprocess_s,
        "inprocess_windows_per_s": total_windows / inprocess_s,
        "transport_batch_s": json_s,
        "transport_windows_per_s": total_windows / json_s,
        "transport_json_overhead_factor": json_overhead,
        "transport_binary_batch_s": binary_s,
        "transport_binary_windows_per_s": total_windows / binary_s,
        # The ISSUE's acceptance metric: the serving codec's overhead.
        "transport_overhead_factor": binary_overhead,
        "streaming_total_windows": windows,
        "streaming_chunk_windows": BENCH_STREAM_CHUNK,
        "streaming_batch_s": stream_s,
        "streaming_windows_per_s": windows / stream_s,
        "pool_threads": BENCH_POOL_THREADS,
        "pooled_concurrent_s": pooled_s,
        "pooled_concurrent_windows_per_s": total_windows / pooled_s,
        "serial_concurrent_s": serial_s,
        "serial_concurrent_windows_per_s": total_windows / serial_s,
        "pool_speedup": serial_s / pooled_s,
        "transport_binary_traced_s": traced_binary_s,
        "transport_binary_traced_windows_per_s": total_windows / traced_binary_s,
        "transport_binary_untraced_s": untraced_binary_s,
        "transport_binary_untraced_windows_per_s": total_windows / untraced_binary_s,
        "tracing_overhead_fraction": tracing_overhead,
        "identical_decisions": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print()
    print(
        f"coalesced, rebuild every flush: {total_windows} windows in "
        f"{uncached_s * 1e3:.1f} ms ({total_windows / uncached_s:,.0f} windows/s)"
    )
    print(
        f"coalesced, warm stack cache   : {total_windows} windows in "
        f"{cached_s * 1e3:.1f} ms ({total_windows / cached_s:,.0f} windows/s; "
        f"{cache_speedup:.2f}x, bar >= {REQUIRED_CACHE_SPEEDUP}x)"
    )
    print(
        f"in-process dispatch           : {total_windows} windows in "
        f"{inprocess_s * 1e3:.1f} ms ({total_windows / inprocess_s:,.0f} windows/s)"
    )
    print(
        f"HTTP, JSON codec              : {total_windows} windows in "
        f"{json_s * 1e3:.1f} ms ({total_windows / json_s:,.0f} windows/s; "
        f"{json_overhead:.2f}x in-process)"
    )
    print(
        f"HTTP, binary columnar codec   : {total_windows} windows in "
        f"{binary_s * 1e3:.1f} ms ({total_windows / binary_s:,.0f} windows/s; "
        f"{binary_overhead:.2f}x in-process, bar <= {REQUIRED_BINARY_OVERHEAD}x)"
    )
    print(
        f"HTTP, streamed binary frames  : {windows} windows in "
        f"{stream_s * 1e3:.1f} ms ({windows / stream_s:,.0f} windows/s, "
        f"{BENCH_STREAM_CHUNK}-window chunks)"
    )
    print(
        f"{BENCH_POOL_THREADS}-thread pool vs one socket : "
        f"{pooled_s * 1e3:.1f} ms vs {serial_s * 1e3:.1f} ms "
        f"({serial_s / pooled_s:.2f}x)"
    )
    print(
        f"HTTP, binary traced vs not    : {traced_binary_s * 1e3:.1f} ms vs "
        f"{untraced_binary_s * 1e3:.1f} ms ({tracing_overhead * 100:+.1f}%, "
        f"bar <= {MAX_TRACING_OVERHEAD * 100:.0f}%)  -> {RESULT_PATH.name}, "
        f"{trace_sink.name}"
    )

    assert tracing_overhead <= MAX_TRACING_OVERHEAD, (
        f"full-rate tracing slows the binary batch path by "
        f"{tracing_overhead * 100:.1f}% (required <= "
        f"{MAX_TRACING_OVERHEAD * 100:.0f}%)"
    )
    assert cache_speedup >= REQUIRED_CACHE_SPEEDUP, (
        f"fused-stack cache only {cache_speedup:.3f}x faster than rebuilding "
        f"every flush (required {REQUIRED_CACHE_SPEEDUP}x)"
    )
    assert binary_overhead <= REQUIRED_BINARY_OVERHEAD, (
        f"binary-HTTP dispatch is {binary_overhead:.2f}x in-process "
        f"(required <= {REQUIRED_BINARY_OVERHEAD}x)"
    )
    assert binary_overhead < json_overhead, (
        "the binary codec should beat the JSON codec it replaces "
        f"({binary_overhead:.2f}x vs {json_overhead:.2f}x)"
    )
