"""Shared benchmark configuration."""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _keep_dataset_caches():
    """Keep the cached synthetic datasets alive for the whole benchmark run."""
    yield
