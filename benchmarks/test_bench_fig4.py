"""Benchmark harness for Figure 4: FRR and FAR versus window size.

Runs the experiment once per benchmark round at the default reproduction
scale and prints the regenerated table/series (run pytest with ``-s`` to see
it).  The benchmark time is the end-to-end cost of regenerating the artefact,
including (cached) synthetic data collection.
"""

from repro.experiments import fig4_window_size as experiment
from repro.experiments.common import DEFAULT_SCALE


def test_bench_fig4(benchmark):
    """Regenerate Figure 4 and report its wall-clock cost."""
    result = benchmark.pedantic(experiment.run, args=(DEFAULT_SCALE,), iterations=1, rounds=1)
    text = result.to_text()
    assert text.strip(), "the experiment must render a non-empty report"
    print()
    print(text)
