"""Benchmark: multi-process sharded cluster vs single-process serving.

One 500-user fleet is trained once and persisted to a registry root;
every configuration then serves the exact same model snapshot:

1. **Single process** — the fleet's own frontend behind one
   :class:`~repro.service.transport.ServiceHTTPServer`, hammered by 32
   concurrent pooled clients (the PR 6 concurrency shape).
2. **Cluster at 1/2/4 workers** — the same 32 clients pointed at a
   :class:`~repro.service.cluster.ShardRouter` over a
   :class:`~repro.service.cluster.WorkerPool` of real worker processes,
   each serving its consistent-hash slice of the fleet from the shared
   registry root.

Decisions must be **bit-for-bit identical** to in-process dispatch at
every worker count — sharding may never change an authentication
outcome, only where it executes.

The scaling acceptance (4 workers ≥ 2.5x the single-process concurrent
rate) is asserted only when the machine has at least 4 CPU cores:
worker processes escape the GIL, not the laws of physics — on a 1-core
container the extra router hop is pure overhead and the cluster is
*slower*, which the recorded numbers then document honestly.  All
measured rates are written to ``BENCH_cluster.json`` either way and
regression-guarded by ``tools/check_bench.py``.

The router's retry machinery (PR 10) must be free on the happy path:
the 2-worker configuration flips the retry policy on and off the same
warmed router in alternating measurement pairs (medians recorded, the
tracing bench's same-thermal-epoch idiom), and ``check_bench.py``
gates the paired ``_retry_windows_per_s`` / ``_noretry_windows_per_s``
twins at ≤5% overhead — same-run, so the gate measures the machinery,
not machine drift against an old baseline.
"""

import json
import os
import statistics
import threading
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.sensors.types import CoarseContext
from repro.service.cluster import ShardRouter, WorkerPool
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse
from repro.service.transport import ServiceClient, ServiceHTTPServer

#: The ISSUE's acceptance fleet size.
BENCH_FLEET_USERS = 500

#: Windows per user per authenticate request.
BENCH_PROBE_WINDOWS = 4

#: Concurrent submitter threads (the acceptance's 32-client shape).
BENCH_POOL_THREADS = 32

#: Timing rounds per configuration; the best round is recorded.
BENCH_ROUNDS = 3

#: Worker counts measured through the router.
BENCH_WORKER_COUNTS = (1, 2, 4)

#: Worker count at which the retry on/off pair is measured (same run,
#: same warmed router; gated at <= 5% overhead by tools/check_bench.py).
RETRY_PAIR_WORKERS = 2

#: Alternating retry-on/retry-off measurement pairs per comparison
#: attempt (medians recorded; see _paired_retry_rates).
BENCH_RETRY_PAIRS = 3

#: The overhead bar the recorded twins are gated at (mirrors
#: tools/check_bench.py MAX_RETRY_OVERHEAD; the comparison re-measures
#: while a noisy co-tenant pushes it over this).
MAX_RETRY_OVERHEAD = 0.05

#: Scaling acceptance (4-worker aggregate vs single-process concurrent),
#: asserted only with >= 4 real cores to scale onto.
REQUIRED_CLUSTER_SPEEDUP = 2.5

#: Sanity floor for every configuration on any machine: the cluster must
#: still *serve* at a usable rate even where it cannot scale.
MIN_WINDOWS_PER_S = 1_000.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _assert_identical(reference, responses):
    for local, remote in zip(reference, responses):
        assert isinstance(remote, AuthenticationResponse), remote
        np.testing.assert_array_equal(remote.scores, local.scores)
        np.testing.assert_array_equal(remote.accepted, local.accepted)
        assert remote.result.model_contexts == local.result.model_contexts
        assert remote.model_version == local.model_version


def _make_submit_all(client, requests):
    """A zero-arg closure timing one 32-thread submission of *requests*."""
    size = max(1, len(requests) // BENCH_POOL_THREADS)
    chunks = [requests[i : i + size] for i in range(0, len(requests), size)]

    def submit_all():
        outcomes = [None] * len(chunks)
        errors = [None] * len(chunks)

        def run(index):
            try:
                try:
                    outcomes[index] = client.submit_many(chunks[index])
                except (ConnectionError, ValueError):
                    # One retry per chunk: authenticate is read-only, and
                    # a 1-core container juggling 30+ threads can tear an
                    # individual keep-alive socket under load (a torn
                    # router→worker read surfaces as a typed
                    # shard-unavailable rejection, hence ValueError).
                    outcomes[index] = client.submit_many(chunks[index])
            except Exception as error:  # surfaced in the main thread
                errors[index] = error

        threads = [
            threading.Thread(target=run, args=(index,))
            for index in range(len(chunks))
        ]
        start = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = perf_counter() - start
        for error in errors:
            if error is not None:
                raise error
        for outcome in outcomes:
            assert outcome is not None
        return elapsed

    return submit_all


def _concurrent_rate(port, api_key, requests, total_windows):
    """Best-round aggregate windows/s of 32 threads over one pooled client."""
    client = ServiceClient(
        port=port,
        api_key=api_key,
        codec="binary",
        pool_size=BENCH_POOL_THREADS,
    )
    submit_all = _make_submit_all(client, requests)
    submit_all()  # warm connections, caches and worker stacks
    best = min(submit_all() for _ in range(BENCH_ROUNDS))
    return total_windows / best


def _paired_retry_rates(router, pool, requests, total_windows):
    """``(retry, noretry)`` windows/s on the same warmed router.

    The policy is flipped at runtime between ALTERNATING measurement
    pairs and both sides take the median (the tracing bench's idiom):
    this box's load drifts by more than the overhead being measured, so
    a sequential best-of comparison gates scheduler noise, not the
    retry machinery.  A noisy co-tenant can still push one side over
    the bar, so the whole comparison retries — real machinery cost
    shows up in every attempt, a passing sibling test run does not.
    """
    client = ServiceClient(
        port=router.port,
        api_key=pool.api_key,
        codec="binary",
        pool_size=BENCH_POOL_THREADS,
    )
    submit_all = _make_submit_all(client, requests)
    submit_all()  # warm
    default_policy = router.retry_policy
    try:
        for _attempt in range(3):
            retry_times = []
            noretry_times = []
            for _ in range(BENCH_RETRY_PAIRS):
                router.retry_policy = None
                noretry_times.append(submit_all())
                router.retry_policy = default_policy
                retry_times.append(submit_all())
            retry_s = statistics.median(retry_times)
            noretry_s = statistics.median(noretry_times)
            # Same arithmetic as tools/check_bench.py's gate.
            if 1.0 - noretry_s / retry_s <= MAX_RETRY_OVERHEAD:
                break
    finally:
        router.retry_policy = default_policy
    return total_windows / retry_s, total_windows / noretry_s


def test_bench_cluster(tmp_path):
    config = FleetConfig(
        n_users=BENCH_FLEET_USERS, seed=5, server_side_contexts=False
    )
    registry_root = tmp_path / "registry"
    simulator = FleetSimulator(config, registry_root=registry_root)
    simulator.build_users()
    simulator.enroll_fleet()

    rng = np.random.default_rng(23)
    requests = []
    for user in simulator.users:
        probe = user.sample_windows(
            BENCH_PROBE_WINDOWS, config.window_noise, rng, simulator.feature_names
        )
        requests.append(
            AuthenticateRequest(
                user_id=user.user_id,
                features=probe.values,
                contexts=tuple(CoarseContext(label) for label in probe.contexts),
            )
        )
    total_windows = sum(len(request.features) for request in requests)
    reference = simulator.frontend.submit_many(requests)

    result = {
        "n_users": BENCH_FLEET_USERS,
        "windows": total_windows,
        "pool_threads": BENCH_POOL_THREADS,
        "cpu_count": os.cpu_count() or 1,
    }

    # 1. single process, 32 concurrent clients
    with ServiceHTTPServer(simulator.frontend, callers=simulator.callers) as server:
        single = _concurrent_rate(
            server.port, simulator.api_key, requests, total_windows
        )
        client = ServiceClient(
            port=server.port, api_key=simulator.api_key, codec="binary"
        )
        _assert_identical(reference, client.submit_many(requests))
    result["single_process_windows_per_s"] = single
    print(f"\nsingle-process {BENCH_POOL_THREADS}-client: {single:,.0f} windows/s")

    # 2. the cluster at each worker count, same clients, same snapshot
    for n_workers in BENCH_WORKER_COUNTS:
        with WorkerPool(
            n_workers, registry_root=registry_root, no_queue=True
        ) as pool:
            with ShardRouter(pool) as router:
                rate = _concurrent_rate(
                    router.port, pool.api_key, requests, total_windows
                )
                if n_workers == RETRY_PAIR_WORKERS:
                    with_retry, without_retry = _paired_retry_rates(
                        router, pool, requests, total_windows
                    )
                    result[
                        f"cluster_{n_workers}_worker_retry_windows_per_s"
                    ] = with_retry
                    result[
                        f"cluster_{n_workers}_worker_noretry_windows_per_s"
                    ] = without_retry
                    print(
                        f"{n_workers}-worker retry pair: "
                        f"{with_retry:,.0f} (retry) vs {without_retry:,.0f} "
                        "(no-retry) windows/s"
                    )
                client = ServiceClient(
                    port=router.port, api_key=pool.api_key, codec="binary"
                )
                _assert_identical(reference, client.submit_many(requests))
        result[f"cluster_{n_workers}_worker_windows_per_s"] = rate
        print(f"{n_workers}-worker cluster: {rate:,.0f} windows/s")

    scaling = result["cluster_4_worker_windows_per_s"] / single
    result["cluster_4_worker_speedup"] = scaling
    print(f"4-worker speedup over single process: {scaling:.2f}x")

    for name in (
        "single_process_windows_per_s",
        *(f"cluster_{n}_worker_windows_per_s" for n in BENCH_WORKER_COUNTS),
    ):
        assert result[name] >= MIN_WINDOWS_PER_S, (name, result[name])

    if (os.cpu_count() or 1) >= 4:
        # Only with real cores to scale onto is the 2.5x bar physical.
        assert scaling >= REQUIRED_CLUSTER_SPEEDUP, (
            f"4-worker cluster reached only {scaling:.2f}x of single-process "
            f"throughput (required {REQUIRED_CLUSTER_SPEEDUP}x)"
        )

    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
