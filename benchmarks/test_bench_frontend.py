"""Benchmark: coalesced frontend authentication vs per-request gateway calls.

The micro-batching :class:`~repro.service.frontend.ServiceFrontend`
coalesces a whole fleet's concurrent authenticate requests into one fused
scoring pass; this harness measures its throughput against issuing the same
requests one at a time through the gateway (the PR-1 serving path), on the
ISSUE's acceptance shape: a 500-user fleet batch.  The acceptance bar is a
>= 2x speedup with bit-for-bit identical accept/reject decisions; measured
results land in ``BENCH_frontend.json`` at the repository root (run pytest
with ``-s`` to see the numbers inline).

A second harness pins the win from int-encoding contexts end-to-end: the
per-flush row→model *bucketing* used to be a per-row Python loop (dict
lookups, ``setdefault``, list appends for every window); it is now a pure
array gather over ``int8`` context codes.  ``bucketing_speedup`` in the
result file is the measured ratio on the same 500-user batch, against a
faithful reconstruction of the old loop.
"""

import json
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.scoring import CONTEXT_BY_CODE
from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse

#: The ISSUE's acceptance fleet size.
BENCH_FLEET_USERS = 500

#: Windows per user per authenticate request (split across both contexts).
BENCH_WINDOWS_PER_USER = 8

#: Timing rounds; the best round of each path is compared.
BENCH_ROUNDS = 3

#: Acceptance bar: coalesced must beat sequential by at least this factor.
REQUIRED_SPEEDUP = 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_frontend.json"


def test_bench_frontend_coalesced_vs_sequential():
    config = FleetConfig(n_users=BENCH_FLEET_USERS, seed=5, server_side_contexts=False)
    simulator = FleetSimulator(config)
    simulator.build_users()
    simulator.enroll_fleet()
    gateway, frontend = simulator.gateway, simulator.frontend

    rng = np.random.default_rng(23)
    probes = [
        user.sample_windows(
            BENCH_WINDOWS_PER_USER // 2,
            config.window_noise,
            rng,
            simulator.feature_names,
        )
        for user in simulator.users
    ]
    requests = [
        AuthenticateRequest(
            user_id=user.user_id,
            features=probe.values,
            contexts=tuple(CoarseContext(label) for label in probe.contexts),
        )
        for user, probe in zip(simulator.users, probes)
    ]

    # Warm both paths once (scorer caches, allocator) before timing.
    for request in requests:
        gateway.authenticate(request.user_id, request.features, request.contexts)
    frontend.submit_many(requests)

    sequential_times, coalesced_times = [], []
    sequential_responses: list = []
    coalesced_responses: list = []
    for _ in range(BENCH_ROUNDS):
        start = perf_counter()
        sequential_responses = [
            gateway.authenticate(request.user_id, request.features, request.contexts)
            for request in requests
        ]
        sequential_times.append(perf_counter() - start)

        start = perf_counter()
        coalesced_responses = frontend.submit_many(requests)
        coalesced_times.append(perf_counter() - start)

    # Identical decisions, request by request, window by window.
    for sequential, coalesced in zip(sequential_responses, coalesced_responses):
        assert isinstance(coalesced, AuthenticationResponse)
        np.testing.assert_array_equal(coalesced.accepted, sequential.accepted)
        np.testing.assert_array_equal(coalesced.scores, sequential.scores)

    total_windows = BENCH_FLEET_USERS * BENCH_WINDOWS_PER_USER
    sequential_s = min(sequential_times)
    coalesced_s = min(coalesced_times)
    speedup = sequential_s / coalesced_s
    result = {
        "fleet_users": BENCH_FLEET_USERS,
        "windows_per_user": BENCH_WINDOWS_PER_USER,
        "total_windows": total_windows,
        "rounds": BENCH_ROUNDS,
        "sequential_s": sequential_s,
        "coalesced_s": coalesced_s,
        "sequential_windows_per_s": total_windows / sequential_s,
        "coalesced_windows_per_s": total_windows / coalesced_s,
        "speedup": speedup,
        "identical_decisions": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print()
    print(
        f"sequential: {total_windows} windows in {sequential_s * 1e3:.1f} ms "
        f"({total_windows / sequential_s:,.0f} windows/s)"
    )
    print(
        f"coalesced : {total_windows} windows in {coalesced_s * 1e3:.1f} ms "
        f"({total_windows / coalesced_s:,.0f} windows/s)"
    )
    print(f"speedup   : {speedup:.1f}x  (bar: >= {REQUIRED_SPEEDUP}x)  -> {RESULT_PATH.name}")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"coalesced frontend only {speedup:.2f}x faster than per-request "
        f"gateway calls (required {REQUIRED_SPEEDUP}x)"
    )


# --------------------------------------------------------------------- #
# per-row vs vectorized bucketing (the ISSUE 4 hot-path satellite)
# --------------------------------------------------------------------- #


def _per_row_bucketing(scorers, context_batches, offsets, total):
    """Faithful reconstruction of the pre-vectorization bucketing loop,
    through building the fused gather (row index + per-row parameter
    position) exactly as ``score_requests`` used to."""
    models_by_key: dict[int, object] = {}
    rows_by_key: dict[int, list[int]] = {}
    model_contexts = np.empty(total, dtype=object)
    for index, contexts in enumerate(context_batches):
        scorer = scorers[index]
        resolved = {context: scorer.select_model(context) for context in set(contexts)}
        base = int(offsets[index])
        for position, context in enumerate(contexts):
            model = resolved[context]
            key = id(model)
            models_by_key[key] = model
            rows_by_key.setdefault(key, []).append(base + position)
            model_contexts[base + position] = model.context
    fused_rows = [np.asarray(rows) for rows in rows_by_key.values()]
    row_index = np.concatenate(fused_rows)
    lengths = np.fromiter(
        (len(rows) for rows in fused_rows), dtype=int, count=len(fused_rows)
    )
    gather = np.repeat(np.arange(len(fused_rows)), lengths)
    row_models = np.empty(total, dtype=np.int64)
    for key, rows in rows_by_key.items():
        row_models[rows] = key
    return row_models, model_contexts, row_index, gather


def _vectorized_bucketing(scorers, code_batches, lengths):
    """The shipped path: one code→slot lookup matrix + array gathers,
    through the fused gather (per-row parameter position)."""
    distinct: list[object] = []
    slot_by_model: dict[int, int] = {}
    lut_rows: list[list[int]] = []
    lut_row_by_scorer: dict[int, int] = {}
    request_lut_rows = np.empty(len(scorers), dtype=np.intp)
    for index, scorer in enumerate(scorers):
        lut_row = lut_row_by_scorer.get(id(scorer))
        if lut_row is None:
            entry = []
            for model in scorer.model_by_code():
                slot = slot_by_model.get(id(model))
                if slot is None:
                    slot = slot_by_model[id(model)] = len(distinct)
                    distinct.append(model)
                entry.append(slot)
            lut_row = lut_row_by_scorer[id(scorer)] = len(lut_rows)
            lut_rows.append(entry)
        request_lut_rows[index] = lut_row
    lut_matrix = np.asarray(lut_rows, dtype=np.intp)
    all_codes = np.concatenate(code_batches)
    row_slots = lut_matrix[np.repeat(request_lut_rows, lengths), all_codes]
    context_by_slot = np.fromiter(
        (model.context for model in distinct), dtype=object, count=len(distinct)
    )
    position_by_slot = np.arange(len(distinct), dtype=np.intp)
    gather = position_by_slot[row_slots]
    id_by_slot = np.fromiter(
        (id(model) for model in distinct), dtype=np.int64, count=len(distinct)
    )
    return id_by_slot[row_slots], context_by_slot[row_slots], gather


def test_bench_context_code_bucketing_vectorization():
    """Measure the per-flush bucketing win from int-encoded contexts."""
    config = FleetConfig(n_users=BENCH_FLEET_USERS, seed=5, server_side_contexts=False)
    simulator = FleetSimulator(config)
    simulator.build_users()
    simulator.enroll_fleet()
    gateway = simulator.gateway

    rng = np.random.default_rng(29)
    contexts = tuple(CoarseContext) * (BENCH_WINDOWS_PER_USER // 2)
    scorers = [gateway.scorer_for(user.user_id) for user in simulator.users]
    context_batches = [list(contexts) for _ in simulator.users]
    code_batches = [
        np.asarray([0, 1] * (BENCH_WINDOWS_PER_USER // 2), dtype=np.int8)
        for _ in simulator.users
    ]
    offsets = np.arange(len(scorers) + 1, dtype=int) * BENCH_WINDOWS_PER_USER
    total = int(offsets[-1])
    del rng  # population fixed above; nothing random in the timed region

    lengths = np.full(len(scorers), BENCH_WINDOWS_PER_USER, dtype=np.intp)
    per_row_times, vectorized_times = [], []
    for _ in range(BENCH_ROUNDS + 1):  # first round warms both paths
        start = perf_counter()
        per_row_models, per_row_contexts, _, _ = _per_row_bucketing(
            scorers, context_batches, offsets, total
        )
        per_row_times.append(perf_counter() - start)

        start = perf_counter()
        vectorized_models, vectorized_contexts, _ = _vectorized_bucketing(
            scorers, code_batches, lengths
        )
        vectorized_times.append(perf_counter() - start)

    # Both bucketings describe the same work: every row resolves to the
    # same model object under the same model context.
    np.testing.assert_array_equal(per_row_models, vectorized_models)
    assert list(per_row_contexts) == list(vectorized_contexts)

    per_row_s = min(per_row_times[1:])
    vectorized_s = min(vectorized_times[1:])
    bucketing_speedup = per_row_s / vectorized_s

    result = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    result.update(
        {
            "bucketing_per_row_s": per_row_s,
            "bucketing_vectorized_s": vectorized_s,
            "bucketing_speedup": bucketing_speedup,
            "bucketing_rows": total,
            "bucketing_rows_per_s_vectorized": total / vectorized_s,
        }
    )
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print()
    print(
        f"per-row bucketing   : {total} rows in {per_row_s * 1e3:.2f} ms "
        f"({total / per_row_s:,.0f} rows/s)"
    )
    print(
        f"vectorized bucketing: {total} rows in {vectorized_s * 1e3:.2f} ms "
        f"({total / vectorized_s:,.0f} rows/s)"
    )
    print(f"speedup             : {bucketing_speedup:.1f}x  -> {RESULT_PATH.name}")

    # The win should be decisive; 2x is a conservative floor for CI noise.
    assert bucketing_speedup >= 2.0, (
        f"vectorized bucketing only {bucketing_speedup:.2f}x faster than the "
        "per-row loop"
    )
