"""Benchmark: coalesced frontend authentication vs per-request gateway calls.

The micro-batching :class:`~repro.service.frontend.ServiceFrontend`
coalesces a whole fleet's concurrent authenticate requests into one fused
scoring pass; this harness measures its throughput against issuing the same
requests one at a time through the gateway (the PR-1 serving path), on the
ISSUE's acceptance shape: a 500-user fleet batch.  The acceptance bar is a
>= 2x speedup with bit-for-bit identical accept/reject decisions; measured
results land in ``BENCH_frontend.json`` at the repository root (run pytest
with ``-s`` to see the numbers inline).
"""

import json
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.protocol import AuthenticateRequest, AuthenticationResponse

#: The ISSUE's acceptance fleet size.
BENCH_FLEET_USERS = 500

#: Windows per user per authenticate request (split across both contexts).
BENCH_WINDOWS_PER_USER = 8

#: Timing rounds; the best round of each path is compared.
BENCH_ROUNDS = 3

#: Acceptance bar: coalesced must beat sequential by at least this factor.
REQUIRED_SPEEDUP = 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_frontend.json"


def test_bench_frontend_coalesced_vs_sequential():
    config = FleetConfig(n_users=BENCH_FLEET_USERS, seed=5, server_side_contexts=False)
    simulator = FleetSimulator(config)
    simulator.build_users()
    simulator.enroll_fleet()
    gateway, frontend = simulator.gateway, simulator.frontend

    rng = np.random.default_rng(23)
    probes = [
        user.sample_windows(
            BENCH_WINDOWS_PER_USER // 2,
            config.window_noise,
            rng,
            simulator.feature_names,
        )
        for user in simulator.users
    ]
    requests = [
        AuthenticateRequest(
            user_id=user.user_id,
            features=probe.values,
            contexts=tuple(CoarseContext(label) for label in probe.contexts),
        )
        for user, probe in zip(simulator.users, probes)
    ]

    # Warm both paths once (scorer caches, allocator) before timing.
    for request in requests:
        gateway.authenticate(request.user_id, request.features, request.contexts)
    frontend.submit_many(requests)

    sequential_times, coalesced_times = [], []
    sequential_responses: list = []
    coalesced_responses: list = []
    for _ in range(BENCH_ROUNDS):
        start = perf_counter()
        sequential_responses = [
            gateway.authenticate(request.user_id, request.features, request.contexts)
            for request in requests
        ]
        sequential_times.append(perf_counter() - start)

        start = perf_counter()
        coalesced_responses = frontend.submit_many(requests)
        coalesced_times.append(perf_counter() - start)

    # Identical decisions, request by request, window by window.
    for sequential, coalesced in zip(sequential_responses, coalesced_responses):
        assert isinstance(coalesced, AuthenticationResponse)
        np.testing.assert_array_equal(coalesced.accepted, sequential.accepted)
        np.testing.assert_array_equal(coalesced.scores, sequential.scores)

    total_windows = BENCH_FLEET_USERS * BENCH_WINDOWS_PER_USER
    sequential_s = min(sequential_times)
    coalesced_s = min(coalesced_times)
    speedup = sequential_s / coalesced_s
    result = {
        "fleet_users": BENCH_FLEET_USERS,
        "windows_per_user": BENCH_WINDOWS_PER_USER,
        "total_windows": total_windows,
        "rounds": BENCH_ROUNDS,
        "sequential_s": sequential_s,
        "coalesced_s": coalesced_s,
        "sequential_windows_per_s": total_windows / sequential_s,
        "coalesced_windows_per_s": total_windows / coalesced_s,
        "speedup": speedup,
        "identical_decisions": True,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    print()
    print(
        f"sequential: {total_windows} windows in {sequential_s * 1e3:.1f} ms "
        f"({total_windows / sequential_s:,.0f} windows/s)"
    )
    print(
        f"coalesced : {total_windows} windows in {coalesced_s * 1e3:.1f} ms "
        f"({total_windows / coalesced_s:,.0f} windows/s)"
    )
    print(f"speedup   : {speedup:.1f}x  (bar: >= {REQUIRED_SPEEDUP}x)  -> {RESULT_PATH.name}")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"coalesced frontend only {speedup:.2f}x faster than per-request "
        f"gateway calls (required {REQUIRED_SPEEDUP}x)"
    )
