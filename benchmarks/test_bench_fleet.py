"""Benchmark harness for the fleet-scale service layer.

Two costs matter for the serving subsystem and are reported here in
windows/sec (run pytest with ``-s`` to see the numbers):

* **fleet enrollment** — uploading every user's windows into the sharded
  feature store and training per-context models for the whole fleet;
* **batch scoring** — authenticating a 1000-window batch through the
  vectorized :class:`~repro.core.scoring.BatchScorer`.
"""

import numpy as np

from repro.core.scoring import BatchScorer
from repro.sensors.types import CoarseContext
from repro.service.fleet import FleetConfig, FleetSimulator

#: Fleet size for the enrollment benchmark (kept modest so the suite stays
#: quick; the integration tests cover the 500-user acceptance scale).
BENCH_FLEET_USERS = 150

#: Batch size for the scoring benchmark (the ISSUE's acceptance batch).
BENCH_SCORING_WINDOWS = 1000


def test_bench_fleet_enrollment(benchmark):
    """Enroll + train a fleet; report stored-window throughput."""

    def enroll_fleet():
        simulator = FleetSimulator(FleetConfig(n_users=BENCH_FLEET_USERS, seed=5))
        simulator.build_users()
        trained = simulator.enroll_fleet()
        return simulator, trained

    simulator, trained = benchmark.pedantic(enroll_fleet, iterations=1, rounds=1)
    assert trained == BENCH_FLEET_USERS
    stats = simulator.gateway.server.store.stats()
    elapsed = benchmark.stats.stats.total
    print()
    print(f"enrolled {trained} users / {stats.n_windows} stored windows "
          f"in {elapsed:.2f}s ({stats.n_windows / elapsed:,.0f} windows/s)")


def test_bench_fleet_batch_scoring(benchmark):
    """Score a 1000-window batch in one vectorized call; report windows/sec."""
    simulator = FleetSimulator(FleetConfig(n_users=40, seed=5))
    simulator.build_users()
    simulator.enroll_fleet()
    user = simulator.users[0]
    bundle = simulator.gateway.registry.bundle_for(user.user_id)
    scorer = BatchScorer(bundle)
    rng = np.random.default_rng(17)
    per_context = BENCH_SCORING_WINDOWS // 2
    matrix = user.sample_windows(
        per_context, simulator.config.window_noise, rng, simulator.feature_names
    )
    contexts = [CoarseContext(label) for label in matrix.contexts]

    result = benchmark.pedantic(
        scorer.score, args=(matrix.values, contexts), iterations=5, rounds=3
    )
    assert len(result) == BENCH_SCORING_WINDOWS
    mean = benchmark.stats.stats.mean
    print()
    print(f"scored {len(result)} windows in {mean * 1e3:.2f} ms/batch "
          f"({len(result) / mean:,.0f} windows/s)")
