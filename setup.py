"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work with the
older setuptools/pip combination available in offline environments (which
lack the ``wheel`` package required by PEP 660 editable installs).
"""

from setuptools import setup

setup()
