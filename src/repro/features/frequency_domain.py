"""Frequency-domain window statistics via the discrete Fourier transform.

Section V-C derives, for each window, the amplitude and frequency of the main
spectral peak and the amplitude and frequency of the secondary peak.  The
screening in Figure 3 finds the *secondary-peak frequency* uninformative, so
the selected set keeps peak amplitude, peak frequency and second-peak
amplitude only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_positive

#: Candidate frequency-domain features.
FREQUENCY_DOMAIN_FEATURES: tuple[str, ...] = ("peak", "peak_f", "peak2", "peak2_f")

#: Frequency-domain features retained after the KS screen.
SELECTED_FREQUENCY_DOMAIN_FEATURES: tuple[str, ...] = ("peak", "peak_f", "peak2")


def power_spectrum(
    magnitude: np.ndarray, sampling_rate: float
) -> tuple[np.ndarray, np.ndarray]:
    """Single-sided amplitude spectrum of a (de-meaned) magnitude window.

    The DC component is removed before the transform so that the dominant
    peak reflects the user's motion rather than gravity.

    Returns
    -------
    (frequencies, amplitudes):
        Frequencies in Hz and the corresponding spectral amplitudes.
    """
    signal = check_array(magnitude, "magnitude", ndim=1)
    check_positive(sampling_rate, "sampling_rate")
    centered = signal - np.mean(signal)
    n = len(centered)
    spectrum = np.abs(np.fft.rfft(centered)) / max(n, 1)
    frequencies = np.fft.rfftfreq(n, d=1.0 / sampling_rate)
    return frequencies, spectrum


def _top_two_peaks(
    frequencies: np.ndarray, amplitudes: np.ndarray, exclusion_bins: int = 2
) -> tuple[float, float, float, float]:
    """Return (peak amplitude, peak frequency, 2nd amplitude, 2nd frequency).

    The secondary peak is searched outside a small exclusion zone around the
    primary peak so that spectral leakage from the main frequency is not
    reported as a second peak.
    """
    if len(amplitudes) == 0:
        return 0.0, 0.0, 0.0, 0.0
    # Ignore the DC bin (index 0) when searching for motion peaks.
    usable = amplitudes.copy()
    if len(usable) > 1:
        usable[0] = 0.0
    primary = int(np.argmax(usable))
    remaining = usable.copy()
    low = max(0, primary - exclusion_bins)
    high = min(len(remaining), primary + exclusion_bins + 1)
    remaining[low:high] = 0.0
    secondary = int(np.argmax(remaining)) if np.any(remaining > 0.0) else primary
    return (
        float(usable[primary]),
        float(frequencies[primary]),
        float(usable[secondary]),
        float(frequencies[secondary]),
    )


def frequency_domain_features(
    magnitude: np.ndarray,
    sampling_rate: float,
    features: tuple[str, ...] = SELECTED_FREQUENCY_DOMAIN_FEATURES,
) -> dict[str, float]:
    """Compute the requested spectral statistics of a magnitude window.

    Parameters
    ----------
    magnitude:
        One-dimensional per-sample magnitude signal of a window.
    sampling_rate:
        Sampling rate of the signal, in Hz.
    features:
        Which statistics to compute, a subset of ``FREQUENCY_DOMAIN_FEATURES``.
    """
    unknown = [name for name in features if name not in FREQUENCY_DOMAIN_FEATURES]
    if unknown:
        raise KeyError(f"unknown frequency-domain features: {unknown}")
    frequencies, amplitudes = power_spectrum(magnitude, sampling_rate)
    peak, peak_f, peak2, peak2_f = _top_two_peaks(frequencies, amplitudes)
    # rfftfreq builds the grid as k/(n*d); for even n the top bin is exactly
    # the Nyquist frequency, but float rounding can push it a few ulp above
    # (e.g. 25.000000000000004 Hz at 50 Hz sampling).  A physical frequency
    # report never exceeds Nyquist, so clamp.
    nyquist = 0.5 * sampling_rate
    peak_f = min(peak_f, nyquist)
    peak2_f = min(peak2_f, nyquist)
    values = {"peak": peak, "peak_f": peak_f, "peak2": peak2, "peak2_f": peak2_f}
    return {name: values[name] for name in features}
