"""Sensor and feature selection: Fisher scores, KS screening, correlation pruning.

These routines reproduce the paper's design-space methodology:

* **Which sensors?** (Section V-B, Table II) — rank every sensor axis by its
  Fisher score across users; the accelerometer and gyroscope dominate.
* **Which features?** (Section V-C, Figure 3) — per feature, run a pairwise KS
  test over users and drop features whose p-values mostly exceed the
  significance level (the secondary-peak frequency fails this screen).
* **Redundancy** (Table III) — drop features strongly correlated with a
  retained feature (``range`` duplicates ``var``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.features.vector import FeatureMatrix
from repro.sensors.types import MultiSensorRecording, SensorType
from repro.stats.correlation import correlation_matrix
from repro.stats.fisher import fisher_score
from repro.stats.ks import pairwise_ks_pvalues
from repro.utils.validation import check_in_range


def fisher_scores_by_sensor(
    recordings: Sequence[MultiSensorRecording],
    sensors: tuple[SensorType, ...] = tuple(SensorType),
    window_seconds: float = 5.0,
) -> dict[str, float]:
    """Fisher score of every raw sensor axis, keyed like Table II.

    Each recording is cut into *window_seconds* windows; every window
    contributes one observation per axis — its mean absolute value plus its
    standard deviation, i.e. a summary of both the level and the dynamics of
    the axis — labelled with the recording's user.  The Fisher score then
    measures how well that axis separates users relative to the within-user
    (across-window and across-session) spread.

    Returns
    -------
    dict
        Mapping like ``{"Acc(x)": 3.1, ..., "Light": 0.01}``.
    """
    if not recordings:
        raise ValueError("need at least one recording")
    if window_seconds <= 0:
        raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
    short_names = {
        SensorType.ACCELEROMETER: "Acc",
        SensorType.GYROSCOPE: "Gyr",
        SensorType.MAGNETOMETER: "Mag",
        SensorType.ORIENTATION: "Ori",
        SensorType.LIGHT: "Light",
    }
    scores: dict[str, float] = {}
    for sensor in sensors:
        usable = [rec for rec in recordings if sensor in rec]
        if not usable:
            continue
        axes = sensor.axes
        for axis_index, axis in enumerate(axes):
            observations: list[float] = []
            labels: list[str] = []
            for recording in usable:
                stream = recording[sensor]
                window_samples = max(1, int(round(window_seconds * stream.sampling_rate)))
                values = stream.samples[:, axis_index]
                n_windows = len(values) // window_samples
                for index in range(n_windows):
                    window = values[index * window_samples : (index + 1) * window_samples]
                    observations.append(
                        float(np.mean(np.abs(window))) + float(np.std(window))
                    )
                    labels.append(recording.user_id)
            if len(set(labels)) < 2:
                continue
            score = fisher_score(np.asarray(observations), labels)
            key = (
                short_names[sensor]
                if sensor is SensorType.LIGHT
                else f"{short_names[sensor]}({axis})"
            )
            scores[key] = score
    return scores


@dataclass(frozen=True)
class KsScreenResult:
    """Outcome of the KS feature screen for one feature.

    Attributes
    ----------
    feature:
        Feature column name.
    pvalues:
        All pairwise-user p-values.
    fraction_significant:
        Fraction of pairs with ``p < alpha`` (higher is better).
    keep:
        Whether the feature passes the screen.
    """

    feature: str
    pvalues: np.ndarray
    fraction_significant: float
    keep: bool


def ks_feature_screen(
    matrix: FeatureMatrix,
    alpha: float = 0.05,
    min_fraction_significant: float = 0.5,
) -> dict[str, KsScreenResult]:
    """Screen every feature column of *matrix* with pairwise-user KS tests.

    A feature is kept when at least *min_fraction_significant* of the user
    pairs are significantly different at level *alpha* (i.e. the box in
    Figure 3 sits mostly below the red line).
    """
    check_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
    check_in_range(min_fraction_significant, "min_fraction_significant", 0.0, 1.0)
    if not matrix.user_ids:
        raise ValueError("matrix must carry user labels for the KS screen")
    users = sorted(set(matrix.user_ids))
    if len(users) < 2:
        raise ValueError("KS screen needs data from at least two users")
    results: dict[str, KsScreenResult] = {}
    user_array = np.asarray(matrix.user_ids, dtype=object)
    for index, feature in enumerate(matrix.feature_names):
        column = matrix.values[:, index]
        by_user: Mapping[str, np.ndarray] = {
            user: column[user_array == user] for user in users
        }
        by_user = {user: values for user, values in by_user.items() if len(values) >= 2}
        if len(by_user) < 2:
            results[feature] = KsScreenResult(feature, np.array([]), 0.0, False)
            continue
        pvalues = pairwise_ks_pvalues(by_user)
        fraction = float(np.mean(pvalues < alpha))
        results[feature] = KsScreenResult(
            feature=feature,
            pvalues=pvalues,
            fraction_significant=fraction,
            keep=fraction >= min_fraction_significant,
        )
    return results


def correlation_prune(
    matrix: FeatureMatrix,
    threshold: float = 0.85,
    priority: Sequence[str] | None = None,
) -> tuple[list[str], list[tuple[str, str, float]]]:
    """Drop features that are redundant with an earlier (kept) feature.

    Parameters
    ----------
    matrix:
        Feature matrix whose columns are screened.
    threshold:
        Absolute-correlation level above which the later feature is dropped.
    priority:
        Optional explicit ordering; earlier names win ties.  Defaults to the
        matrix's column order.

    Returns
    -------
    (kept, dropped):
        ``kept`` is the list of surviving feature names; ``dropped`` lists
        ``(dropped_feature, kept_feature, correlation)`` tuples explaining
        each removal, mirroring the paper's "Ran duplicates Var" argument.
    """
    check_in_range(threshold, "threshold", 0.0, 1.0)
    order = list(priority) if priority is not None else list(matrix.feature_names)
    unknown = [name for name in order if name not in matrix.feature_names]
    if unknown:
        raise KeyError(f"priority names not in matrix: {unknown}")
    corr = correlation_matrix(matrix.values)
    name_to_index = {name: i for i, name in enumerate(matrix.feature_names)}
    kept: list[str] = []
    dropped: list[tuple[str, str, float]] = []
    for name in order:
        index = name_to_index[name]
        redundant_with = None
        for kept_name in kept:
            value = corr[index, name_to_index[kept_name]]
            if abs(value) >= threshold:
                redundant_with = (kept_name, float(value))
                break
        if redundant_with is None:
            kept.append(name)
        else:
            dropped.append((name, redundant_with[0], redundant_with[1]))
    return kept, dropped
