"""Time-domain window statistics (Section V-C).

The paper evaluates mean, variance, max, min and range; after the feature
screen it drops *range* because it is nearly perfectly correlated with
variance (Table III).  Both the full candidate set and the selected set are
exposed so the screening experiments can be reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

#: Candidate time-domain features, in the order used by the paper's tables.
TIME_DOMAIN_FEATURES: tuple[str, ...] = ("mean", "var", "max", "min", "range")

#: Time-domain features retained after the correlation screen.
SELECTED_TIME_DOMAIN_FEATURES: tuple[str, ...] = ("mean", "var", "max", "min")


def time_domain_features(
    magnitude: np.ndarray, features: tuple[str, ...] = SELECTED_TIME_DOMAIN_FEATURES
) -> dict[str, float]:
    """Compute the requested time-domain statistics of a magnitude window.

    Parameters
    ----------
    magnitude:
        One-dimensional per-sample magnitude signal of a window.
    features:
        Which statistics to compute, a subset of ``TIME_DOMAIN_FEATURES``.

    Returns
    -------
    dict
        Mapping from feature name to value, in the order requested.
    """
    signal = check_array(magnitude, "magnitude", ndim=1)
    available = {
        "mean": lambda s: float(np.mean(s)),
        "var": lambda s: float(np.var(s)),
        "max": lambda s: float(np.max(s)),
        "min": lambda s: float(np.min(s)),
        "range": lambda s: float(np.max(s) - np.min(s)),
    }
    unknown = [name for name in features if name not in available]
    if unknown:
        raise KeyError(f"unknown time-domain features: {unknown}")
    return {name: available[name](signal) for name in features}
