"""Feature substrate: windowing and time/frequency feature extraction.

Implements Section V-C/V-D of the paper: sensor streams are segmented into
time windows, the per-window magnitude signal is summarised by four
time-domain statistics (mean, variance, max, min) and three frequency-domain
statistics (main-peak amplitude, main-peak frequency, second-peak amplitude),
and per-device vectors are concatenated into the authentication feature
vector of Eq. 4.
"""

from repro.features.windowing import Window, segment_stream, segment_recording
from repro.features.time_domain import (
    TIME_DOMAIN_FEATURES,
    time_domain_features,
)
from repro.features.frequency_domain import (
    FREQUENCY_DOMAIN_FEATURES,
    frequency_domain_features,
    power_spectrum,
)
from repro.features.vector import (
    FeatureVectorSpec,
    FeatureMatrix,
    SELECTED_FEATURES,
    ALL_CANDIDATE_FEATURES,
    extract_sensor_features,
    extract_device_vector,
    extract_authentication_matrix,
    feature_names,
)
from repro.features.selection import (
    fisher_scores_by_sensor,
    ks_feature_screen,
    correlation_prune,
)

__all__ = [
    "Window",
    "segment_stream",
    "segment_recording",
    "TIME_DOMAIN_FEATURES",
    "time_domain_features",
    "FREQUENCY_DOMAIN_FEATURES",
    "frequency_domain_features",
    "power_spectrum",
    "FeatureVectorSpec",
    "FeatureMatrix",
    "SELECTED_FEATURES",
    "ALL_CANDIDATE_FEATURES",
    "extract_sensor_features",
    "extract_device_vector",
    "extract_authentication_matrix",
    "feature_names",
    "fisher_scores_by_sensor",
    "ks_feature_screen",
    "correlation_prune",
]
