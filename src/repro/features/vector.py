"""Assembly of per-window feature vectors (Eq. 1–4 of the paper).

For sensor *i* in window *k* the paper defines

.. math::

    SP_i(k) = [SP^t_i(k), SP^f_i(k)]

with four time-domain and three frequency-domain components, concatenated
over the accelerometer and gyroscope into the smartphone vector ``SP(k)``
(14 elements), and, when a smartwatch is present, further concatenated with
the analogous ``SW(k)`` into the 28-element authentication vector
``Authenticate(k) = [SP(k), SW(k)]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.features.frequency_domain import (
    FREQUENCY_DOMAIN_FEATURES,
    SELECTED_FREQUENCY_DOMAIN_FEATURES,
    frequency_domain_features,
)
from repro.features.time_domain import (
    SELECTED_TIME_DOMAIN_FEATURES,
    TIME_DOMAIN_FEATURES,
    time_domain_features,
)
from repro.features.windowing import Window, segment_recording
from repro.sensors.types import (
    SELECTED_SENSORS,
    DeviceType,
    MultiSensorRecording,
    SensorType,
)

#: The seven per-sensor features retained by the paper's screening.
SELECTED_FEATURES: tuple[str, ...] = (
    SELECTED_TIME_DOMAIN_FEATURES + SELECTED_FREQUENCY_DOMAIN_FEATURES
)

#: The full nine-feature candidate set evaluated in Figure 3 / Table III.
ALL_CANDIDATE_FEATURES: tuple[str, ...] = TIME_DOMAIN_FEATURES + FREQUENCY_DOMAIN_FEATURES


@dataclass(frozen=True)
class FeatureVectorSpec:
    """Specification of which sensors, features and devices form a vector.

    Attributes
    ----------
    sensors:
        Sensors whose magnitude windows are featurised (default: the paper's
        accelerometer + gyroscope selection).
    time_features:
        Time-domain statistics to include.
    frequency_features:
        Frequency-domain statistics to include.
    devices:
        Devices whose vectors are concatenated, in order.
    """

    sensors: tuple[SensorType, ...] = SELECTED_SENSORS
    time_features: tuple[str, ...] = SELECTED_TIME_DOMAIN_FEATURES
    frequency_features: tuple[str, ...] = SELECTED_FREQUENCY_DOMAIN_FEATURES
    devices: tuple[DeviceType, ...] = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH)

    @property
    def features(self) -> tuple[str, ...]:
        """Per-sensor feature names in extraction order."""
        return self.time_features + self.frequency_features

    @property
    def dimension(self) -> int:
        """Total dimensionality of the assembled vector."""
        return len(self.features) * len(self.sensors) * len(self.devices)

    def feature_names(self) -> list[str]:
        """Fully qualified names, e.g. ``smartphone.accelerometer.mean``."""
        names = []
        for device in self.devices:
            for sensor in self.sensors:
                for feature in self.features:
                    names.append(f"{device.value}.{sensor.value}.{feature}")
        return names

    def phone_only(self) -> "FeatureVectorSpec":
        """A copy of the spec restricted to the smartphone."""
        return FeatureVectorSpec(
            sensors=self.sensors,
            time_features=self.time_features,
            frequency_features=self.frequency_features,
            devices=(DeviceType.SMARTPHONE,),
        )

    def watch_only(self) -> "FeatureVectorSpec":
        """A copy of the spec restricted to the smartwatch."""
        return FeatureVectorSpec(
            sensors=self.sensors,
            time_features=self.time_features,
            frequency_features=self.frequency_features,
            devices=(DeviceType.SMARTWATCH,),
        )


@dataclass
class FeatureMatrix:
    """A matrix of per-window feature vectors with their provenance.

    Attributes
    ----------
    values:
        Array of shape ``(n_windows, n_features)``.
    feature_names:
        Column labels matching ``values``.
    user_ids:
        Per-row user identifier.
    contexts:
        Per-row coarse context label (``"stationary"`` / ``"moving"``).
    """

    values: np.ndarray
    feature_names: list[str]
    user_ids: list[str] = field(default_factory=list)
    contexts: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {self.values.shape}")
        if self.values.shape[1] != len(self.feature_names):
            raise ValueError(
                f"values has {self.values.shape[1]} columns but "
                f"{len(self.feature_names)} feature names were given"
            )
        for name, labels in (("user_ids", self.user_ids), ("contexts", self.contexts)):
            if labels and len(labels) != len(self.values):
                raise ValueError(f"{name} must have one entry per row")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    def column(self, feature_name: str) -> np.ndarray:
        """Return the column for *feature_name*."""
        try:
            index = self.feature_names.index(feature_name)
        except ValueError as exc:
            raise KeyError(f"unknown feature {feature_name!r}") from exc
        return self.values[:, index]

    def rows_for_user(self, user_id: str) -> np.ndarray:
        """Return the sub-matrix of rows belonging to *user_id*."""
        if not self.user_ids:
            raise RuntimeError("this FeatureMatrix carries no user labels")
        mask = np.array([uid == user_id for uid in self.user_ids])
        return self.values[mask]

    def concatenate(self, other: "FeatureMatrix") -> "FeatureMatrix":
        """Stack another matrix with identical columns below this one."""
        if self.feature_names != other.feature_names:
            raise ValueError("cannot concatenate matrices with different feature columns")
        return FeatureMatrix(
            values=np.vstack([self.values, other.values]),
            feature_names=list(self.feature_names),
            user_ids=list(self.user_ids) + list(other.user_ids),
            contexts=list(self.contexts) + list(other.contexts),
        )


def extract_sensor_features(
    window: Window,
    time_features: tuple[str, ...] = SELECTED_TIME_DOMAIN_FEATURES,
    frequency_features: tuple[str, ...] = SELECTED_FREQUENCY_DOMAIN_FEATURES,
) -> dict[str, float]:
    """Compute the per-sensor feature dictionary ``SP_i(k)`` for one window."""
    values = time_domain_features(window.magnitude, features=time_features)
    values.update(
        frequency_domain_features(
            window.magnitude, window.sampling_rate, features=frequency_features
        )
    )
    return values


def extract_device_vector(
    recording: MultiSensorRecording,
    window_seconds: float,
    spec: FeatureVectorSpec | None = None,
    overlap: float = 0.0,
) -> FeatureMatrix:
    """Extract the per-window device vector ``SP(k)`` (or ``SW(k)``).

    The recording's own device determines whether the result plays the role
    of the smartphone or smartwatch vector.
    """
    spec = spec or FeatureVectorSpec()
    windows = segment_recording(
        recording, window_seconds, sensors=spec.sensors, overlap=overlap
    )
    names = [
        f"{recording.device.value}.{sensor.value}.{feature}"
        for sensor in spec.sensors
        for feature in spec.features
    ]
    rows = []
    for aligned in windows:
        row: list[float] = []
        for sensor in spec.sensors:
            features = extract_sensor_features(
                aligned[sensor],
                time_features=spec.time_features,
                frequency_features=spec.frequency_features,
            )
            row.extend(features[name] for name in spec.features)
        rows.append(row)
    values = np.asarray(rows, dtype=float) if rows else np.empty((0, len(names)))
    return FeatureMatrix(
        values=values,
        feature_names=names,
        user_ids=[recording.user_id] * len(rows),
        contexts=[recording.coarse_context.value] * len(rows),
    )


def extract_authentication_matrix(
    recordings: dict[DeviceType, MultiSensorRecording],
    window_seconds: float,
    spec: FeatureVectorSpec | None = None,
    overlap: float = 0.0,
) -> FeatureMatrix:
    """Assemble the authentication matrix ``Authenticate(k) = [SP(k), SW(k)]``.

    Parameters
    ----------
    recordings:
        Mapping from device type to that device's simultaneous recording.
        Only the devices listed in ``spec.devices`` are used; they must all be
        present.
    window_seconds:
        Analysis window length in seconds.
    spec:
        Feature-vector specification (defaults to the paper's 28-dimension
        two-device configuration).
    overlap:
        Fractional overlap between consecutive windows.
    """
    spec = spec or FeatureVectorSpec()
    missing = [device for device in spec.devices if device not in recordings]
    if missing:
        raise KeyError(
            f"recordings missing for devices: {[device.value for device in missing]}"
        )
    per_device = [
        extract_device_vector(recordings[device], window_seconds, spec=spec, overlap=overlap)
        for device in spec.devices
    ]
    n_windows = min(len(matrix) for matrix in per_device)
    values = (
        np.hstack([matrix.values[:n_windows] for matrix in per_device])
        if n_windows
        else np.empty((0, spec.dimension))
    )
    reference = recordings[spec.devices[0]]
    return FeatureMatrix(
        values=values,
        feature_names=spec.feature_names(),
        user_ids=[reference.user_id] * n_windows,
        contexts=[reference.coarse_context.value] * n_windows,
    )


def feature_names(spec: FeatureVectorSpec | None = None) -> list[str]:
    """Fully qualified feature names for *spec* (default paper configuration)."""
    return (spec or FeatureVectorSpec()).feature_names()


def stack_matrices(matrices: Iterable[FeatureMatrix]) -> FeatureMatrix:
    """Stack an iterable of compatible feature matrices into one."""
    matrices = list(matrices)
    if not matrices:
        raise ValueError("need at least one matrix to stack")
    result = matrices[0]
    for matrix in matrices[1:]:
        result = result.concatenate(matrix)
    return result
