"""Segmentation of sensor streams into fixed-length analysis windows."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.types import MultiSensorRecording, SensorStream, SensorType
from repro.sensors.sampling import window_starts
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Window:
    """One analysis window of a single sensor stream.

    Attributes
    ----------
    sensor:
        Sensor the window came from.
    start_time:
        Start time of the window within the recording, in seconds.
    duration:
        Window length in seconds.
    magnitude:
        The per-sample Euclidean magnitude signal inside the window — the
        quantity the paper featurises (``m = sqrt(x^2 + y^2 + z^2)``).
    sampling_rate:
        Sampling rate of the underlying stream.
    """

    sensor: SensorType
    start_time: float
    duration: float
    magnitude: np.ndarray
    sampling_rate: float

    def __len__(self) -> int:
        return len(self.magnitude)


def segment_stream(
    stream: SensorStream,
    window_seconds: float,
    overlap: float = 0.0,
) -> list[Window]:
    """Cut *stream* into magnitude windows of *window_seconds* seconds.

    Parameters
    ----------
    stream:
        The uniformly sampled input stream.
    window_seconds:
        Window length in seconds (the paper settles on 6 s).
    overlap:
        Fractional overlap between consecutive windows in ``[0, 1)``;
        0 gives non-overlapping windows as in the paper's online pipeline.
    """
    check_positive(window_seconds, "window_seconds")
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    window_samples = max(1, int(round(window_seconds * stream.sampling_rate)))
    step_samples = max(1, int(round(window_samples * (1.0 - overlap))))
    magnitude = stream.magnitude()
    windows: list[Window] = []
    for start in window_starts(len(stream), window_samples, step_samples):
        stop = start + window_samples
        windows.append(
            Window(
                sensor=stream.sensor,
                start_time=float(stream.timestamps[start]),
                duration=window_seconds,
                magnitude=magnitude[start:stop],
                sampling_rate=stream.sampling_rate,
            )
        )
    return windows


def segment_recording(
    recording: MultiSensorRecording,
    window_seconds: float,
    sensors: tuple[SensorType, ...] | None = None,
    overlap: float = 0.0,
) -> list[dict[SensorType, Window]]:
    """Segment every requested sensor of a recording into aligned windows.

    Returns a list with one entry per window position; each entry maps sensor
    type to that sensor's window.  Only window positions for which every
    requested sensor has a complete window are returned, so the per-sensor
    windows are aligned in time.
    """
    selected = sensors if sensors is not None else recording.sensors()
    per_sensor = {
        sensor: segment_stream(recording[sensor], window_seconds, overlap=overlap)
        for sensor in selected
    }
    if not per_sensor:
        return []
    n_windows = min(len(windows) for windows in per_sensor.values())
    aligned: list[dict[SensorType, Window]] = []
    for index in range(n_windows):
        aligned.append({sensor: per_sensor[sensor][index] for sensor in selected})
    return aligned
