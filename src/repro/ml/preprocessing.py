"""Feature scaling and label encoding used ahead of the classifiers."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, NotFittedError
from repro.utils.validation import check_array


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance.

    Constant features are left unscaled (their variance floor is 1) so that
    degenerate sensor channels do not produce NaNs downstream.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: Any) -> "StandardScaler":
        """Learn per-feature means and standard deviations."""
        X = check_array(X, "X", ndim=2)
        self.mean_ = np.mean(X, axis=0)
        scale = np.std(X, axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: Any) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted yet")
        X = check_array(X, "X", ndim=2)
        if X.shape[1] != len(self.mean_):
            raise ValueError(
                f"X has {X.shape[1]} features but the scaler was fitted with {len(self.mean_)}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: Any) -> np.ndarray:
        """Fit the scaler and immediately transform *X*."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: Any) -> np.ndarray:
        """Undo the standardisation."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted yet")
        X = check_array(X, "X", ndim=2)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features into ``[0, 1]`` based on the training range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: Any) -> "MinMaxScaler":
        """Learn per-feature minima and ranges."""
        X = check_array(X, "X", ndim=2)
        self.min_ = np.min(X, axis=0)
        value_range = np.max(X, axis=0) - self.min_
        value_range[value_range == 0.0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X: Any) -> np.ndarray:
        """Apply the learned min-max scaling."""
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted yet")
        X = check_array(X, "X", ndim=2)
        return (X - self.min_) / self.range_

    def fit_transform(self, X: Any) -> np.ndarray:
        """Fit the scaler and immediately transform *X*."""
        return self.fit(X).transform(X)


class LabelEncoder(BaseEstimator):
    """Encode arbitrary hashable labels as consecutive integers."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, labels: Sequence[Any]) -> "LabelEncoder":
        """Learn the label vocabulary (sorted for determinism)."""
        self.classes_ = np.array(sorted(set(labels), key=str), dtype=object)
        return self

    def transform(self, labels: Sequence[Any]) -> np.ndarray:
        """Map labels to their integer codes."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted yet")
        lookup = {label: index for index, label in enumerate(self.classes_)}
        try:
            return np.array([lookup[label] for label in labels], dtype=int)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, labels: Sequence[Any]) -> np.ndarray:
        """Fit the encoder and immediately transform *labels*."""
        return self.fit(labels).transform(labels)

    def inverse_transform(self, codes: Sequence[int]) -> np.ndarray:
        """Map integer codes back to the original labels."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted yet")
        codes = np.asarray(codes, dtype=int)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("codes contain values outside the learned vocabulary")
        return self.classes_[codes]
