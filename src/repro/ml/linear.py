"""Linear baselines: least-squares regression and logistic regression.

Table VI includes plain linear regression as one of the baselines that KRR
outperforms.  Logistic regression is provided as an additional baseline for
the extended classifier study.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier
from repro.utils.validation import check_positive


def _add_intercept(X: np.ndarray) -> np.ndarray:
    """Append a constant column of ones for the intercept term."""
    return np.hstack([X, np.ones((X.shape[0], 1))])


class LinearRegressionClassifier(BaseClassifier):
    """Binary classification by least-squares regression on ±1 targets.

    Parameters
    ----------
    regularization:
        Optional ridge term added to the normal equations for numerical
        stability; 0 reproduces ordinary least squares.
    """

    def __init__(self, regularization: float = 1e-8) -> None:
        self.regularization = regularization
        self.coef_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X: Any, y: Any) -> "LinearRegressionClassifier":
        """Fit by solving the (regularised) normal equations."""
        check_positive(self.regularization, "regularization", strict=False)
        X, y = self._validate_fit_inputs(X, y)
        targets = self._encode_binary(y)
        self.n_features_in_ = X.shape[1]
        design = _add_intercept(X)
        gram = design.T @ design + self.regularization * np.eye(design.shape[1])
        self.coef_ = np.linalg.solve(gram, design.T @ targets)
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Signed distance to the regression hyperplane."""
        X = self._validate_predict_inputs(X)
        assert self.coef_ is not None
        # einsum keeps each row's accumulation independent of the batch
        # size, so batched and per-window scores match bit-for-bit.
        return np.einsum("ij,j->i", _add_intercept(X), self.coef_)

    def predict(self, X: Any) -> np.ndarray:
        """Predict the class label for every row of *X*."""
        return self._decode_binary(self.decision_function(X))

    def predict_from_decision(self, raw_scores: np.ndarray) -> np.ndarray:
        """Labels from precomputed decision values (same threshold as predict)."""
        return self._decode_binary(np.asarray(raw_scores))


class LogisticRegressionClassifier(BaseClassifier):
    """Binary logistic regression trained by full-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    n_iterations:
        Number of full-batch iterations.
    regularization:
        L2 penalty strength applied to the weights (not the intercept).
    """

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iterations: int = 500,
        regularization: float = 1e-3,
    ) -> None:
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.regularization = regularization
        self.coef_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))

    def fit(self, X: Any, y: Any) -> "LogisticRegressionClassifier":
        """Fit the logistic model by gradient descent on the log loss."""
        check_positive(self.learning_rate, "learning_rate")
        if self.n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {self.n_iterations}")
        X, y = self._validate_fit_inputs(X, y)
        targets = (self._encode_binary(y) + 1.0) / 2.0  # {0, 1}
        self.n_features_in_ = X.shape[1]
        design = _add_intercept(X)
        weights = np.zeros(design.shape[1])
        n_samples = len(design)
        penalty_mask = np.ones_like(weights)
        penalty_mask[-1] = 0.0  # do not penalise the intercept
        for _ in range(self.n_iterations):
            predictions = self._sigmoid(design @ weights)
            gradient = design.T @ (predictions - targets) / n_samples
            gradient += self.regularization * penalty_mask * weights
            weights -= self.learning_rate * gradient
        self.coef_ = weights
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Log-odds of the positive class."""
        X = self._validate_predict_inputs(X)
        assert self.coef_ is not None
        # einsum keeps each row's accumulation independent of the batch
        # size, so batched and per-window scores match bit-for-bit.
        return np.einsum("ij,j->i", _add_intercept(X), self.coef_)

    def predict_proba(self, X: Any) -> np.ndarray:
        """Class probabilities ``[P(neg), P(pos)]`` per row."""
        positive = self._sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X: Any) -> np.ndarray:
        """Predict the class label for every row of *X*."""
        return self._decode_binary(self.decision_function(X))

    def predict_from_decision(self, raw_scores: np.ndarray) -> np.ndarray:
        """Labels from precomputed decision values (same threshold as predict)."""
        return self._decode_binary(np.asarray(raw_scores))
