"""k-nearest-neighbours classifier (the baseline used by Nickel et al.).

Included so the related-work comparison (Table I) and the extended classifier
ablation can evaluate a k-NN authenticator alongside the paper's KRR.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier


class KNeighborsClassifier(BaseClassifier):
    """Majority-vote k-NN with Euclidean distance.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours that vote for the prediction.
    weights:
        ``"uniform"`` for plain majority voting or ``"distance"`` for
        inverse-distance weighting.
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.X_fit_: np.ndarray | None = None
        self.y_fit_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X: Any, y: Any) -> "KNeighborsClassifier":
        """Store the training data (k-NN is a lazy learner)."""
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {self.weights!r}")
        X, y = self._validate_fit_inputs(X, y)
        if self.n_neighbors > len(X):
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds the number of training samples ({len(X)})"
            )
        self.X_fit_ = X
        self.y_fit_ = y
        self.n_features_in_ = X.shape[1]
        return self

    def _neighbor_votes(self, X: np.ndarray) -> np.ndarray:
        """Per-row, per-class vote mass from the k nearest neighbours."""
        assert self.X_fit_ is not None and self.y_fit_ is not None
        assert self.classes_ is not None
        x_norms = np.sum(X**2, axis=1)[:, np.newaxis]
        fit_norms = np.sum(self.X_fit_**2, axis=1)[np.newaxis, :]
        distances = np.sqrt(np.maximum(x_norms + fit_norms - 2.0 * X @ self.X_fit_.T, 0.0))
        neighbor_indices = np.argsort(distances, axis=1)[:, : self.n_neighbors]
        votes = np.zeros((len(X), len(self.classes_)))
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        for row in range(len(X)):
            for neighbor in neighbor_indices[row]:
                weight = 1.0
                if self.weights == "distance":
                    weight = 1.0 / (distances[row, neighbor] + 1e-12)
                votes[row, class_index[self.y_fit_[neighbor]]] += weight
        return votes

    def predict_proba(self, X: Any) -> np.ndarray:
        """Normalised neighbour-vote fractions per class."""
        X = self._validate_predict_inputs(X)
        votes = self._neighbor_votes(X)
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return votes / totals

    def predict(self, X: Any) -> np.ndarray:
        """Predict the class with the largest neighbour vote."""
        X = self._validate_predict_inputs(X)
        votes = self._neighbor_votes(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(votes, axis=1)]

    def decision_function(self, X: Any) -> np.ndarray:
        """Binary-only score: vote fraction difference between the classes."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError("decision_function is only defined for binary problems")
        probabilities = self.predict_proba(X)
        return probabilities[:, 1] - probabilities[:, 0]
