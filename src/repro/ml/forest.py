"""Random forest classifier used for user-agnostic context detection.

Section V-E trains a random forest on the smartphone feature vector to label
each window *stationary* or *moving* before the per-context authenticator
runs.  The forest here follows Breiman's recipe: bootstrap resampling per
tree plus random feature sub-sampling per split, with majority voting over
the trees' probability estimates.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import RandomState, derive_rng


class RandomForestClassifier(BaseClassifier):
    """Bagged ensemble of randomised CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees in the forest.
    max_depth:
        Maximum depth of each tree.
    min_samples_split / min_samples_leaf:
        Passed through to every tree.
    max_features:
        Features examined per split; defaults to ``"sqrt"`` (Breiman's choice).
    bootstrap:
        Whether each tree trains on a bootstrap resample of the data.
    random_state:
        Seed controlling bootstraps and per-split feature sampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: RandomState = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.n_features_in_: int | None = None

    def fit(self, X: Any, y: Any) -> "RandomForestClassifier":
        """Fit every tree on its own bootstrap resample."""
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X, y = self._validate_fit_inputs(X, y)
        self.n_features_in_ = X.shape[1]
        n_samples = len(X)
        self.estimators_ = []
        for index in range(self.n_estimators):
            rng = derive_rng(self.random_state, "tree", index)
            if self.bootstrap:
                sample_indices = rng.integers(0, n_samples, size=n_samples)
            else:
                sample_indices = np.arange(n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng,
            )
            tree.fit(X[sample_indices], y[sample_indices])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Average of the member trees' class-probability estimates.

        Trees whose bootstrap happened to miss a class entirely are aligned to
        the forest's class vocabulary before averaging.
        """
        X = self._validate_predict_inputs(X)
        if not self.estimators_:
            raise RuntimeError("forest has no trees; fit() must be called first")
        assert self.classes_ is not None
        totals = np.zeros((len(X), len(self.classes_)))
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            assert tree.classes_ is not None
            for tree_col, cls in enumerate(tree.classes_):
                totals[:, class_index[cls]] += probabilities[:, tree_col]
        return totals / len(self.estimators_)

    def predict(self, X: Any) -> np.ndarray:
        """Majority-vote prediction over the ensemble."""
        probabilities = self.predict_proba(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probabilities, axis=1)]

    def decision_function(self, X: Any) -> np.ndarray:
        """Binary-only score: P(positive) - P(negative)."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError("decision_function is only defined for binary problems")
        probabilities = self.predict_proba(X)
        return probabilities[:, 1] - probabilities[:, 0]
