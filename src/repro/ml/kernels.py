"""Kernel functions for kernel ridge regression.

The paper's complexity argument (Section V-H1) relies on the *identity*
(linear) kernel: with a linear map the primal solution of Eq. 7 inverts an
``M x M`` matrix (M = 28 features) instead of the ``N x N`` matrix (N = 720
training windows) of the dual solution in Eq. 6.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.validation import check_array, check_positive

#: Signature of a kernel: (X [n, d], Y [m, d]) -> Gram matrix [n, m].
KernelFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Linear (identity feature map) kernel ``K = X Y^T``."""
    X = check_array(X, "X", ndim=2)
    Y = check_array(Y, "Y", ndim=2)
    return X @ Y.T


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian radial-basis-function kernel ``exp(-gamma ||x - y||^2)``."""
    check_positive(gamma, "gamma")
    X = check_array(X, "X", ndim=2)
    Y = check_array(Y, "Y", ndim=2)
    x_norms = np.sum(X**2, axis=1)[:, np.newaxis]
    y_norms = np.sum(Y**2, axis=1)[np.newaxis, :]
    squared_distances = np.maximum(x_norms + y_norms - 2.0 * (X @ Y.T), 0.0)
    return np.exp(-gamma * squared_distances)


def polynomial_kernel(
    X: np.ndarray, Y: np.ndarray, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(x . y + coef0) ** degree``."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    X = check_array(X, "X", ndim=2)
    Y = check_array(Y, "Y", ndim=2)
    return (X @ Y.T + coef0) ** degree


def resolve_kernel(kernel: str | KernelFunction, **kwargs: float) -> KernelFunction:
    """Resolve a kernel name (``"linear"``, ``"rbf"``, ``"poly"``) or callable.

    Keyword arguments are bound into the returned callable (e.g. ``gamma``).
    """
    if callable(kernel):
        if kwargs:
            return lambda X, Y: kernel(X, Y, **kwargs)  # type: ignore[misc]
        return kernel
    registry: dict[str, KernelFunction] = {
        "linear": linear_kernel,
        "identity": linear_kernel,
        "rbf": rbf_kernel,
        "poly": polynomial_kernel,
        "polynomial": polynomial_kernel,
    }
    if kernel not in registry:
        raise ValueError(f"unknown kernel {kernel!r}; available: {sorted(registry)}")
    base = registry[kernel]
    if kwargs:
        return lambda X, Y: base(X, Y, **kwargs)
    return base
