"""Linear support vector machine trained on the hinge loss.

The SVM baseline in Table VI.  The classifier minimises the standard
L2-regularised hinge loss with full-batch sub-gradient descent and a
decreasing step size, which converges reliably on the paper's small,
standardised feature matrices while remaining dependency-free.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier
from repro.utils.validation import check_positive


class LinearSVMClassifier(BaseClassifier):
    """Binary linear SVM (hinge loss + L2 regularisation).

    Parameters
    ----------
    C:
        Inverse regularisation strength; larger values fit the data harder.
    n_iterations:
        Number of full-batch sub-gradient steps.
    learning_rate:
        Initial step size (decayed as ``1 / (1 + t * decay)``).
    fit_intercept:
        Whether to learn an unpenalised bias term.
    """

    def __init__(
        self,
        C: float = 1.0,
        n_iterations: int = 800,
        learning_rate: float = 0.05,
        fit_intercept: bool = True,
    ) -> None:
        self.C = C
        self.n_iterations = n_iterations
        self.learning_rate = learning_rate
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_features_in_: int | None = None
        self.loss_history_: list[float] = []

    def _loss(self, X: np.ndarray, targets: np.ndarray, weights: np.ndarray, bias: float) -> float:
        margins = targets * (X @ weights + bias)
        hinge = np.maximum(0.0, 1.0 - margins)
        return float(0.5 * np.dot(weights, weights) + self.C * np.sum(hinge))

    def fit(self, X: Any, y: Any) -> "LinearSVMClassifier":
        """Fit the SVM by sub-gradient descent on the primal objective."""
        check_positive(self.C, "C")
        check_positive(self.learning_rate, "learning_rate")
        if self.n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {self.n_iterations}")
        X, y = self._validate_fit_inputs(X, y)
        targets = self._encode_binary(y)
        self.n_features_in_ = X.shape[1]
        n_samples = len(X)
        weights = np.zeros(X.shape[1])
        bias = 0.0
        self.loss_history_ = []
        for iteration in range(self.n_iterations):
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            margins = targets * (X @ weights + bias)
            violators = margins < 1.0
            # The hinge term is normalised by the sample count so the step
            # size is insensitive to the training-set size.
            gradient_w = weights - self.C * (
                (targets[violators, np.newaxis] * X[violators]).sum(axis=0) / n_samples
            )
            weights -= step * gradient_w
            if self.fit_intercept:
                gradient_b = -self.C * targets[violators].sum() / n_samples
                bias -= step * gradient_b
            if iteration % 50 == 0 or iteration == self.n_iterations - 1:
                self.loss_history_.append(self._loss(X, targets, weights, bias))
        self.coef_ = weights
        self.intercept_ = float(bias)
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Signed margin ``w . x + b`` for every row of *X*."""
        X = self._validate_predict_inputs(X)
        assert self.coef_ is not None
        # einsum keeps each row's accumulation independent of the batch
        # size, so batched and per-window scores match bit-for-bit.
        return np.einsum("ij,j->i", X, self.coef_) + self.intercept_

    def predict(self, X: Any) -> np.ndarray:
        """Predict the class label for every row of *X*."""
        return self._decode_binary(self.decision_function(X))

    def predict_from_decision(self, raw_scores: np.ndarray) -> np.ndarray:
        """Labels from precomputed decision values (same threshold as predict)."""
        return self._decode_binary(np.asarray(raw_scores))

    def decision_projection(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        """``(0, coef_, intercept_)``: the margin is already affine.

        Subtracting an all-zero offset is bitwise exact for every float, so
        the shared fused-projection expression reproduces
        :meth:`decision_function` bit-for-bit.
        """
        if self.coef_ is None:
            return None
        return np.zeros_like(self.coef_), self.coef_, self.intercept_
