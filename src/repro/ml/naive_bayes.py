"""Gaussian naive Bayes baseline (Table VI)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier
from repro.utils.validation import check_positive


class GaussianNaiveBayes(BaseClassifier):
    """Naive Bayes with per-class, per-feature Gaussian likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance,
        preventing degenerate zero-variance likelihoods.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None   # per-class means
        self.var_: np.ndarray | None = None     # per-class variances
        self.class_prior_: np.ndarray | None = None
        self.n_features_in_: int | None = None

    def fit(self, X: Any, y: Any) -> "GaussianNaiveBayes":
        """Estimate per-class means, variances and priors."""
        check_positive(self.var_smoothing, "var_smoothing", strict=False)
        X, y = self._validate_fit_inputs(X, y)
        self.n_features_in_ = X.shape[1]
        n_classes = len(self.classes_)
        self.theta_ = np.zeros((n_classes, X.shape[1]))
        self.var_ = np.zeros((n_classes, X.shape[1]))
        self.class_prior_ = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(np.max(np.var(X, axis=0)) or 1.0)
        for index, cls in enumerate(self.classes_):
            rows = X[y == cls]
            self.theta_[index] = np.mean(rows, axis=0)
            self.var_[index] = np.var(rows, axis=0) + epsilon
            self.class_prior_[index] = len(rows) / len(X)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        """Log P(class) + sum_j log N(x_j | theta, var) for every class."""
        assert self.theta_ is not None and self.var_ is not None
        assert self.class_prior_ is not None
        log_likelihoods = []
        for index in range(len(self.classes_)):
            prior = np.log(self.class_prior_[index])
            normaliser = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[index]))
            quadratic = -0.5 * np.sum(
                (X - self.theta_[index]) ** 2 / self.var_[index], axis=1
            )
            log_likelihoods.append(prior + normaliser + quadratic)
        return np.column_stack(log_likelihoods)

    def predict_log_proba(self, X: Any) -> np.ndarray:
        """Normalised log posterior probability per class."""
        X = self._validate_predict_inputs(X)
        joint = self._joint_log_likelihood(X)
        log_norm = np.logaddexp.reduce(joint, axis=1, keepdims=True)
        return joint - log_norm

    def predict_proba(self, X: Any) -> np.ndarray:
        """Posterior probability per class."""
        return np.exp(self.predict_log_proba(X))

    def decision_function(self, X: Any) -> np.ndarray:
        """Binary-only score: log-odds of the positive class."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError("decision_function is only defined for binary problems")
        log_proba = self.predict_log_proba(X)
        return log_proba[:, 1] - log_proba[:, 0]

    def predict(self, X: Any) -> np.ndarray:
        """Predict the most probable class per row."""
        X = self._validate_predict_inputs(X)
        joint = self._joint_log_likelihood(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(joint, axis=1)]
