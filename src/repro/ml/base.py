"""Estimator base classes and shared plumbing for the ML substrate."""

from __future__ import annotations

import copy
import inspect
from typing import Any, NamedTuple

import numpy as np

from repro.utils.validation import check_array, check_same_length


class NotFittedError(RuntimeError):
    """Raised when predict/transform is called before fit."""


class LinearDecisionRule(NamedTuple):
    """A scaled classifier's full scoring pass reduced to affine parameters.

    Describes ``standardise → decision_function → sign-adjust → threshold``
    for a :class:`~repro.ml.preprocessing.StandardScaler` followed by a
    classifier whose :meth:`BaseClassifier.decision_projection` is defined.
    Batched serving fuses many such rules into one gather-and-einsum pass;
    the contract is that evaluating the rule reproduces the unfused pass
    bit-for-bit:

    ``raw = einsum("ij,j->i", (X - mean) / scale - x_offset, coef) + y_offset``

    with the adjusted confidence score ``sign * raw`` and the accept
    decision ``raw >= 0`` when ``accept_on_nonnegative`` else ``raw < 0``.
    """

    mean: np.ndarray
    scale: np.ndarray
    x_offset: np.ndarray
    coef: np.ndarray
    y_offset: float
    sign: float
    accept_on_nonnegative: bool


class BaseEstimator:
    """Minimal parameter-introspection base, modelled on the sklearn contract.

    Subclasses store every constructor argument on an attribute with the same
    name; :meth:`get_params` and :func:`clone` rely on that convention.
    """

    def get_params(self) -> dict[str, Any]:
        """Return the constructor parameters of this estimator."""
        signature = inspect.signature(type(self).__init__)
        names = [name for name in signature.parameters if name != "self"]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor parameters in place and return ``self``."""
        valid = self.get_params()
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"unknown parameter {key!r} for {type(self).__name__}")
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{key}={value!r}" for key, value in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of *estimator* with the same parameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))


class BaseClassifier(BaseEstimator):
    """Shared input validation and label bookkeeping for classifiers."""

    classes_: np.ndarray | None = None

    def _validate_fit_inputs(
        self, X: Any, y: Any, min_classes: int = 2
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate and canonicalise training inputs.

        *min_classes* is 2 for ordinary classifiers; tree learners inside a
        bagging ensemble pass 1 because a bootstrap resample may contain a
        single class.
        """
        X = check_array(X, "X", ndim=2)
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValueError(f"y must be one-dimensional, got shape {y.shape}")
        check_same_length(X, y)
        classes = np.unique(y)
        if len(classes) < min_classes:
            raise ValueError(
                f"training data must contain at least {min_classes} classes"
            )
        self.classes_ = classes
        return X, y

    def _validate_predict_inputs(self, X: Any) -> np.ndarray:
        """Validate prediction inputs and confirm the estimator is fitted."""
        if self.classes_ is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )
        X = check_array(X, "X", ndim=2)
        expected = getattr(self, "n_features_in_", None)
        if expected is not None and X.shape[1] != expected:
            raise ValueError(
                f"X has {X.shape[1]} features but the model was fitted with {expected}"
            )
        return X

    def _encode_binary(self, y: np.ndarray) -> np.ndarray:
        """Encode a two-class label vector to ``-1/+1`` (positive = classes_[1])."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError(f"{type(self).__name__} supports binary problems only")
        return np.where(y == self.classes_[1], 1.0, -1.0)

    def _decode_binary(self, scores: np.ndarray) -> np.ndarray:
        """Map real-valued scores back to the original two labels."""
        assert self.classes_ is not None
        return np.where(scores >= 0.0, self.classes_[1], self.classes_[0])

    def predict_from_decision(self, raw_scores: np.ndarray) -> np.ndarray | None:
        """Labels implied by already-computed decision scores, or ``None``.

        Classifiers whose :meth:`predict` is exactly a threshold on
        :meth:`decision_function` override this so batched callers can reuse
        the scores they already hold instead of projecting twice.  The
        contract: an override MUST return exactly what ``predict`` would for
        the same rows — classifiers with different prediction semantics
        (e.g. probability votes), and subclasses that override ``predict``,
        must leave or reset this to ``None``.
        """
        return None

    def decision_projection(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        """Affine form of :meth:`decision_function`, or ``None``.

        Classifiers whose decision function is exactly

        ``einsum("ij,j->i", X - x_offset, coef) + y_offset``

        override this to return ``(x_offset, coef, y_offset)`` so batched
        serving can fuse many models into one projection.  The contract is
        bit-for-bit: evaluating the returned parameters with the expression
        above MUST reproduce ``decision_function(X)`` exactly, including the
        einsum accumulation order — classifiers computing their score any
        other way (kernel expansions, intercept columns, votes) must leave
        this as ``None``.
        """
        return None

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy of ``predict(X)`` against *y*."""
        predictions = self.predict(X)  # type: ignore[attr-defined]
        y = np.asarray(y)
        check_same_length(predictions, y, "predictions, y")
        return float(np.mean(predictions == y))
