"""Machine-learning substrate implemented from scratch on NumPy.

The paper compares kernel ridge regression (its chosen classifier), SVM,
linear regression and naive Bayes for authentication (Table VI), and uses a
random forest for user-agnostic context detection (Table V).  None of these
may be imported from scikit-learn in this environment, so the package
provides complete implementations with a small, sklearn-like API:
``fit(X, y)``, ``predict(X)``, ``decision_function(X)`` /
``predict_proba(X)`` where meaningful.
"""

from repro.ml.base import BaseClassifier, NotFittedError, clone
from repro.ml.preprocessing import StandardScaler, MinMaxScaler, LabelEncoder
from repro.ml.kernels import linear_kernel, rbf_kernel, polynomial_kernel, resolve_kernel
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.linear import LinearRegressionClassifier, LogisticRegressionClassifier
from repro.ml.svm import LinearSVMClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.model_selection import KFold, StratifiedKFold, cross_validate, train_test_split
from repro.ml.metrics import (
    AuthenticationMetrics,
    accuracy_score,
    confusion_matrix,
    equal_error_rate,
    false_accept_rate,
    false_reject_rate,
    authentication_metrics,
    roc_curve,
)

__all__ = [
    "BaseClassifier",
    "NotFittedError",
    "clone",
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "linear_kernel",
    "rbf_kernel",
    "polynomial_kernel",
    "resolve_kernel",
    "KernelRidgeClassifier",
    "LinearRegressionClassifier",
    "LogisticRegressionClassifier",
    "LinearSVMClassifier",
    "GaussianNaiveBayes",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "KFold",
    "StratifiedKFold",
    "cross_validate",
    "train_test_split",
    "AuthenticationMetrics",
    "accuracy_score",
    "confusion_matrix",
    "equal_error_rate",
    "false_accept_rate",
    "false_reject_rate",
    "authentication_metrics",
    "roc_curve",
]
