"""CART decision tree, the building block of the context-detection forest."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class _Node:
    """One node of the decision tree.

    A leaf stores the class-probability vector; an internal node stores the
    split feature/threshold and its two children.
    """

    prediction: np.ndarray | None = None
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.prediction is not None


def _gini(class_counts: np.ndarray) -> float:
    """Gini impurity of a node with the given per-class counts."""
    total = class_counts.sum()
    if total == 0:
        return 0.0
    proportions = class_counts / total
    return float(1.0 - np.sum(proportions**2))


class DecisionTreeClassifier(BaseClassifier):
    """Classification tree grown with greedy Gini-impurity splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` grows until pure or *min_samples_split*).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples allowed in a leaf.
    max_features:
        Number of features examined per split: ``None`` (all), ``"sqrt"`` or
        an integer.  Randomised selection is what decorrelates forest members.
    random_state:
        Seed for the feature sub-sampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: _Node | None = None
        self.n_features_in_: int | None = None
        self.n_nodes_: int = 0

    # ------------------------------------------------------------------ #

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, (int, np.integer)):
            if not 1 <= int(self.max_features) <= n_features:
                raise ValueError(
                    f"max_features must be in [1, {n_features}], got {self.max_features}"
                )
            return int(self.max_features)
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def _class_counts(self, y_codes: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return np.bincount(y_codes, minlength=len(self.classes_)).astype(float)

    def _best_split(
        self, X: np.ndarray, y_codes: np.ndarray, feature_indices: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Find the (feature, threshold) pair with the lowest weighted Gini."""
        parent_counts = self._class_counts(y_codes)
        parent_impurity = _gini(parent_counts)
        n_samples = len(y_codes)
        best: tuple[int, float, float] | None = None
        best_score = parent_impurity - 1e-12
        for feature in feature_indices:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_codes = y_codes[order]
            left_counts = np.zeros_like(parent_counts)
            right_counts = parent_counts.copy()
            for index in range(1, n_samples):
                code = sorted_codes[index - 1]
                left_counts[code] += 1
                right_counts[code] -= 1
                if sorted_values[index] == sorted_values[index - 1]:
                    continue
                n_left, n_right = index, n_samples - index
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                score = (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n_samples
                if score < best_score:
                    best_score = score
                    threshold = 0.5 * (sorted_values[index] + sorted_values[index - 1])
                    best = (int(feature), float(threshold), float(score))
        return best

    def _grow(
        self,
        X: np.ndarray,
        y_codes: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        self.n_nodes_ += 1
        counts = self._class_counts(y_codes)
        probabilities = counts / counts.sum()
        should_stop = (
            len(y_codes) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.max(probabilities) == 1.0
        )
        if should_stop:
            return _Node(prediction=probabilities)
        n_features = X.shape[1]
        n_candidates = self._resolve_max_features(n_features)
        if n_candidates < n_features:
            feature_indices = rng.choice(n_features, size=n_candidates, replace=False)
        else:
            feature_indices = np.arange(n_features)
        split = self._best_split(X, y_codes, feature_indices)
        if split is None:
            return _Node(prediction=probabilities)
        feature, threshold, _ = split
        left_mask = X[:, feature] <= threshold
        right_mask = ~left_mask
        if not left_mask.any() or not right_mask.any():
            return _Node(prediction=probabilities)
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._grow(X[left_mask], y_codes[left_mask], depth + 1, rng),
            right=self._grow(X[right_mask], y_codes[right_mask], depth + 1, rng),
        )

    # ------------------------------------------------------------------ #

    def fit(self, X: Any, y: Any) -> "DecisionTreeClassifier":
        """Grow the tree on the training data."""
        if self.min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {self.min_samples_split}")
        if self.min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}")
        # A tree inside a bagging ensemble may legitimately see a single class
        # in its bootstrap resample, so only one class is required here.
        X, y = self._validate_fit_inputs(X, y, min_classes=1)
        self.n_features_in_ = X.shape[1]
        assert self.classes_ is not None
        code_lookup = {cls: index for index, cls in enumerate(self.classes_)}
        y_codes = np.array([code_lookup[label] for label in y], dtype=int)
        rng = ensure_rng(self.random_state)
        self.n_nodes_ = 0
        self.root_ = self._grow(X, y_codes, depth=0, rng=rng)
        return self

    def _traverse(self, row: np.ndarray) -> np.ndarray:
        node = self.root_
        assert node is not None
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        assert node.prediction is not None
        return node.prediction

    def predict_proba(self, X: Any) -> np.ndarray:
        """Leaf class-probability vector for every row of *X*."""
        X = self._validate_predict_inputs(X)
        if self.root_ is None:
            raise RuntimeError("tree has no root; fit() must be called first")
        return np.vstack([self._traverse(row) for row in X])

    def predict(self, X: Any) -> np.ndarray:
        """Predict the majority class of the reached leaf per row."""
        probabilities = self.predict_proba(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probabilities, axis=1)]
