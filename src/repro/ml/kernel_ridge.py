"""Kernel ridge regression classifier — the paper's chosen algorithm.

Section V-F2 trains a binary ridge-regression classifier on ±1 labels:

.. math::

    w^* = \\arg\\min_w \\; \\rho \\lVert w \\rVert^2
          + \\sum_{k=1}^{N} (w^T x_k - y_k)^2

whose analytic solution is (Eq. 6, dual form)

.. math::    w^* = \\Phi [K + \\rho I_N]^{-1} y

or equivalently (Eq. 7, primal form)

.. math::    w^* = [S + \\rho I_J]^{-1} \\Phi y, \\qquad S = \\Phi \\Phi^T .

With the identity kernel (:math:`\\Phi = X^T`) the primal form inverts an
``M x M`` matrix, M being the feature dimension (28), which is the complexity
reduction claimed in Section V-H1.  Both solvers are implemented and the test
suite checks that they coincide, which is exactly the Appendix's matrix
identity.  The decision value :math:`w^{*T} x` doubles as the paper's
confidence score (Section V-I).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.ml.base import BaseClassifier
from repro.ml.kernels import linear_kernel, resolve_kernel
from repro.utils.validation import check_positive


class KernelRidgeClassifier(BaseClassifier):
    """Binary classifier based on (kernel) ridge regression on ±1 targets.

    Parameters
    ----------
    ridge:
        Regularisation strength :math:`\\rho` (must be positive).
    kernel:
        ``"linear"`` (the paper's identity kernel), ``"rbf"``, ``"poly"`` or a
        callable ``kernel(X, Y) -> Gram``.
    solver:
        ``"auto"`` (primal for the linear kernel when it is cheaper, dual
        otherwise), ``"primal"`` (Eq. 7; linear kernel only) or ``"dual"``
        (Eq. 6; any kernel).
    gamma:
        RBF kernel width, ignored for other kernels.
    fit_intercept:
        When true (default) a constant feature is appended so the decision
        boundary is not forced through the origin.  The paper's formulation
        omits the intercept because its features are standardised; keeping it
        makes the classifier robust to uncentred inputs.

    Attributes
    ----------
    coef_:
        Primal weight vector ``w*`` (only for the linear kernel).
    dual_coef_:
        Dual coefficients ``[K + rho I]^{-1} y`` (dual solver).
    classes_:
        The two class labels; ``classes_[1]`` is the positive (+1) class.
    """

    def __init__(
        self,
        ridge: float = 1.0,
        kernel: str = "linear",
        solver: str = "auto",
        gamma: float = 0.5,
        fit_intercept: bool = True,
    ) -> None:
        self.ridge = ridge
        self.kernel = kernel
        self.solver = solver
        self.gamma = gamma
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.X_fit_: np.ndarray | None = None
        self.n_features_in_: int | None = None
        self.solver_used_: str | None = None
        self._x_offset: np.ndarray | None = None
        self._y_offset: float = 0.0

    # ------------------------------------------------------------------ #

    def _kernel_function(self):
        if self.kernel in ("linear", "identity"):
            return linear_kernel
        if self.kernel == "rbf":
            return resolve_kernel("rbf", gamma=self.gamma)
        return resolve_kernel(self.kernel)

    def _choose_solver(self, n_samples: int, n_features: int) -> str:
        if self.solver not in ("auto", "primal", "dual"):
            raise ValueError(f"unknown solver {self.solver!r}")
        linear = self.kernel in ("linear", "identity")
        if self.solver == "primal":
            if not linear:
                raise ValueError("the primal solver requires the linear/identity kernel")
            return "primal"
        if self.solver == "dual":
            return "dual"
        # auto: use the cheaper inversion, as argued in Section V-H1.
        if linear and n_features <= n_samples:
            return "primal"
        return "dual"

    def fit(self, X: Any, y: Any) -> "KernelRidgeClassifier":
        """Fit the classifier on feature matrix *X* and binary labels *y*.

        When ``fit_intercept`` is enabled, the features and the ±1 targets are
        centred before solving (the standard ridge-with-intercept treatment);
        the stored offsets are re-applied in :meth:`decision_function`.  This
        keeps the intercept unpenalised without changing Eq. 6/7.
        """
        check_positive(self.ridge, "ridge")
        X, y = self._validate_fit_inputs(X, y)
        targets = self._encode_binary(y)
        self.n_features_in_ = X.shape[1]
        if self.fit_intercept:
            self._x_offset = X.mean(axis=0)
            self._y_offset = float(targets.mean())
        else:
            self._x_offset = np.zeros(X.shape[1])
            self._y_offset = 0.0
        X = X - self._x_offset
        targets = targets - self._y_offset
        n_samples, n_features = X.shape
        solver = self._choose_solver(n_samples, n_features)
        self.solver_used_ = solver
        if solver == "primal":
            # Eq. 7: w* = [X^T X + rho I_M]^{-1} X^T y  (Phi = X^T, S = X^T X).
            gram = X.T @ X
            self.coef_ = np.linalg.solve(
                gram + self.ridge * np.eye(n_features), X.T @ targets
            )
            self.dual_coef_ = None
            self.X_fit_ = None
        else:
            # Eq. 6: w* = Phi [K + rho I_N]^{-1} y, applied via the kernel trick.
            kernel_function = self._kernel_function()
            K = kernel_function(X, X)
            self.dual_coef_ = np.linalg.solve(K + self.ridge * np.eye(n_samples), targets)
            self.X_fit_ = X
            if self.kernel in ("linear", "identity"):
                # Materialise w* = X^T alpha so the confidence score is cheap.
                self.coef_ = X.T @ self.dual_coef_
            else:
                self.coef_ = None
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Real-valued score ``w*^T x``; positive means the positive class.

        This is the quantity the paper calls the confidence score ``CS(k)``.

        The projection uses ``einsum`` rather than BLAS ``@`` because einsum
        accumulates each row independently of the batch size: with the
        linear/primal path (``coef_`` set — the paper's configuration),
        scoring a window alone or inside a 1000-row batch yields bit-for-bit
        the same value, which the batched serving layer relies on.  On the
        dual path the kernel matrix itself is still a BLAS product, so
        non-linear kernels are only batch-size invariant up to float
        rounding in the last ulps.
        """
        X = self._validate_predict_inputs(X)
        X = X - self._x_offset
        if self.coef_ is not None:
            return np.einsum("ij,j->i", X, self.coef_) + self._y_offset
        assert self.dual_coef_ is not None and self.X_fit_ is not None
        kernel_function = self._kernel_function()
        # BLAS '@' is fine here: the kernel matrix itself is already a
        # batch-size-dependent BLAS product, so einsum could not make the
        # dual path invariant anyway — keep the faster projection.
        return kernel_function(X, self.X_fit_) @ self.dual_coef_ + self._y_offset

    def predict(self, X: Any) -> np.ndarray:
        """Predict the class label for every row of *X*."""
        return self._decode_binary(self.decision_function(X))

    def predict_from_decision(self, raw_scores: np.ndarray) -> np.ndarray:
        """Labels from precomputed decision values (same threshold as predict)."""
        return self._decode_binary(np.asarray(raw_scores))

    def decision_projection(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        """``(x_offset, coef, y_offset)`` whenever ``w*`` is materialised.

        Both linear-kernel solvers set ``coef_``, and
        :meth:`decision_function` then computes exactly
        ``einsum(X - _x_offset, coef_) + _y_offset`` — the bit-for-bit
        contract the fused serving pass requires.  Non-linear kernels
        (``coef_ is None``) cannot be expressed this way.
        """
        if self.coef_ is None or self._x_offset is None:
            return None
        return self._x_offset, self.coef_, self._y_offset

    def predict_proba(self, X: Any) -> np.ndarray:
        """Pseudo-probabilities via a logistic squashing of the decision value."""
        scores = self.decision_function(X)
        positive = 1.0 / (1.0 + np.exp(-2.0 * scores))
        return np.column_stack([1.0 - positive, positive])

    def confidence_scores(self, X: Any) -> np.ndarray:
        """Alias for :meth:`decision_function`, using the paper's terminology."""
        return self.decision_function(X)
