"""Cross-validation and data-splitting utilities.

The paper evaluates every configuration with 10-fold cross-validation
repeated many times and averaged (Section V-A); these helpers provide the
splitting machinery for that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.ml.base import BaseClassifier, clone
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_array, check_same_length


class KFold:
    """Plain k-fold splitter with optional shuffling.

    Parameters
    ----------
    n_splits:
        Number of folds (the paper uses 10).
    shuffle:
        Whether to shuffle sample indices before splitting.
    random_state:
        Seed for the shuffle.
    """

    def __init__(self, n_splits: int = 10, shuffle: bool = True, random_state: RandomState = None) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X: Sequence[Any]) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` for each fold."""
        n_samples = len(X)
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            ensure_rng(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        current = 0
        for fold_size in fold_sizes:
            test_indices = indices[current : current + fold_size]
            train_indices = np.concatenate(
                [indices[:current], indices[current + fold_size :]]
            )
            yield train_indices, test_indices
            current += fold_size


class StratifiedKFold:
    """k-fold splitter that preserves the class balance in every fold."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, random_state: RandomState = None) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(
        self, X: Sequence[Any], y: Sequence[Any]
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield stratified ``(train_indices, test_indices)`` pairs."""
        check_same_length(X, y)
        y = np.asarray(y)
        rng = ensure_rng(self.random_state)
        classes = np.unique(y)
        smallest = min(int(np.sum(y == cls)) for cls in classes)
        if smallest < self.n_splits:
            raise ValueError(
                f"the smallest class has {smallest} samples which is fewer than "
                f"n_splits={self.n_splits}"
            )
        # Assign each sample of each class a fold id in round-robin order.
        fold_of = np.empty(len(y), dtype=int)
        for cls in classes:
            class_indices = np.flatnonzero(y == cls)
            if self.shuffle:
                rng.shuffle(class_indices)
            fold_of[class_indices] = np.arange(len(class_indices)) % self.n_splits
        all_indices = np.arange(len(y))
        for fold in range(self.n_splits):
            test_mask = fold_of == fold
            yield all_indices[~test_mask], all_indices[test_mask]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_size: float = 0.1,
    stratify: bool = True,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    X, y:
        Features and labels of equal length.
    test_size:
        Fraction of samples placed in the test split (0 < test_size < 1).
    stratify:
        Whether to keep the class proportions equal in both splits.
    random_state:
        Seed for the shuffling.
    """
    X = check_array(X, "X", ndim=2)
    y = np.asarray(y)
    check_same_length(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    rng = ensure_rng(random_state)
    if stratify:
        test_indices_parts = []
        for cls in np.unique(y):
            class_indices = np.flatnonzero(y == cls)
            rng.shuffle(class_indices)
            n_test = max(1, int(round(test_size * len(class_indices))))
            test_indices_parts.append(class_indices[:n_test])
        test_indices = np.concatenate(test_indices_parts)
    else:
        indices = np.arange(len(y))
        rng.shuffle(indices)
        n_test = max(1, int(round(test_size * len(y))))
        test_indices = indices[:n_test]
    test_mask = np.zeros(len(y), dtype=bool)
    test_mask[test_indices] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


@dataclass
class CrossValidationResult:
    """Aggregated scores of one cross-validation run.

    Attributes
    ----------
    fold_scores:
        Mapping from metric name to the per-fold values.
    """

    fold_scores: dict[str, list[float]] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        """Mean of *metric* over all folds."""
        return float(np.mean(self.fold_scores[metric]))

    def std(self, metric: str) -> float:
        """Standard deviation of *metric* over all folds."""
        return float(np.std(self.fold_scores[metric]))

    def summary(self) -> dict[str, float]:
        """Mean of every recorded metric."""
        return {metric: self.mean(metric) for metric in self.fold_scores}


def cross_validate(
    estimator: BaseClassifier,
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 10,
    n_repeats: int = 1,
    scorers: dict[str, Callable[[np.ndarray, np.ndarray], float]] | None = None,
    random_state: RandomState = None,
) -> CrossValidationResult:
    """Repeated stratified k-fold cross-validation of a classifier.

    Parameters
    ----------
    estimator:
        An unfitted classifier; it is cloned for every fold.
    X, y:
        Feature matrix and labels.
    n_splits:
        Folds per repetition (paper default 10).
    n_repeats:
        Number of repetitions with different shuffles (the paper repeats the
        10-fold protocol and averages).
    scorers:
        Mapping from metric name to ``scorer(y_true, y_pred) -> float``;
        defaults to accuracy only.
    random_state:
        Seed controlling all shuffles.
    """
    from repro.ml.metrics import accuracy_score  # local import to avoid a cycle

    X = check_array(X, "X", ndim=2)
    y = np.asarray(y)
    check_same_length(X, y)
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    scorers = scorers or {"accuracy": accuracy_score}
    result = CrossValidationResult(fold_scores={name: [] for name in scorers})
    rng = ensure_rng(random_state)
    for _ in range(n_repeats):
        splitter = StratifiedKFold(
            n_splits=n_splits, shuffle=True, random_state=int(rng.integers(0, 2**31 - 1))
        )
        for train_indices, test_indices in splitter.split(X, y):
            model = clone(estimator)
            model.fit(X[train_indices], y[train_indices])
            predictions = model.predict(X[test_indices])
            for name, scorer in scorers.items():
                result.fold_scores[name].append(float(scorer(y[test_indices], predictions)))
    return result
