"""Evaluation metrics, including the paper's FAR / FRR / accuracy triple.

Terminology follows Section V-F3:

* **FRR** (false reject rate) — fraction of the *legitimate user's* windows
  misclassified as someone else;
* **FAR** (false accept rate) — fraction of *other users'* windows
  misclassified as the legitimate user;
* **accuracy** — overall fraction of correctly classified windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.utils.validation import check_same_length


def accuracy_score(y_true: Sequence[Any], y_pred: Sequence[Any]) -> float:
    """Fraction of predictions that match the true labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_same_length(y_true, y_pred, "y_true, y_pred")
    if len(y_true) == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: Sequence[Any], y_pred: Sequence[Any], labels: Sequence[Any] | None = None
) -> tuple[np.ndarray, list[Any]]:
    """Confusion matrix with rows = true labels, columns = predictions.

    Returns the matrix together with the label order used for its axes.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_same_length(y_true, y_pred, "y_true, y_pred")
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=str)
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true, pred in zip(y_true, y_pred):
        matrix[index[true], index[pred]] += 1
    return matrix, labels


def false_reject_rate(
    y_true: Sequence[Any], y_pred: Sequence[Any], positive_label: Any
) -> float:
    """Fraction of genuine (positive) samples rejected as impostors."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_same_length(y_true, y_pred, "y_true, y_pred")
    genuine = y_true == positive_label
    if not genuine.any():
        raise ValueError("no genuine samples present; FRR is undefined")
    return float(np.mean(y_pred[genuine] != positive_label))


def false_accept_rate(
    y_true: Sequence[Any], y_pred: Sequence[Any], positive_label: Any
) -> float:
    """Fraction of impostor (negative) samples accepted as genuine."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_same_length(y_true, y_pred, "y_true, y_pred")
    impostor = y_true != positive_label
    if not impostor.any():
        raise ValueError("no impostor samples present; FAR is undefined")
    return float(np.mean(y_pred[impostor] == positive_label))


@dataclass(frozen=True)
class AuthenticationMetrics:
    """The FRR / FAR / accuracy triple reported throughout the paper.

    Attributes
    ----------
    frr:
        False reject rate in ``[0, 1]``.
    far:
        False accept rate in ``[0, 1]``.
    accuracy:
        Overall accuracy in ``[0, 1]``.
    n_genuine / n_impostor:
        Sample counts behind the estimates.
    """

    frr: float
    far: float
    accuracy: float
    n_genuine: int
    n_impostor: int

    def as_percentages(self) -> dict[str, float]:
        """The three headline numbers expressed as percentages."""
        return {
            "FRR%": 100.0 * self.frr,
            "FAR%": 100.0 * self.far,
            "Accuracy%": 100.0 * self.accuracy,
        }

    def __str__(self) -> str:
        return (
            f"FRR {100.0 * self.frr:.1f}%  FAR {100.0 * self.far:.1f}%  "
            f"accuracy {100.0 * self.accuracy:.1f}%"
        )


def authentication_metrics(
    y_true: Sequence[Any], y_pred: Sequence[Any], positive_label: Any
) -> AuthenticationMetrics:
    """Compute the FRR / FAR / accuracy triple for one evaluation."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return AuthenticationMetrics(
        frr=false_reject_rate(y_true, y_pred, positive_label),
        far=false_accept_rate(y_true, y_pred, positive_label),
        accuracy=accuracy_score(y_true, y_pred),
        n_genuine=int(np.sum(y_true == positive_label)),
        n_impostor=int(np.sum(y_true != positive_label)),
    )


def roc_curve(
    y_true: Sequence[Any], scores: Sequence[float], positive_label: Any
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve from continuous decision scores.

    Returns
    -------
    (far, tpr, thresholds):
        False-accept rates, true-accept rates and the score thresholds, sorted
        by decreasing threshold.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    check_same_length(y_true, scores, "y_true, scores")
    genuine = y_true == positive_label
    n_genuine = int(genuine.sum())
    n_impostor = int((~genuine).sum())
    if n_genuine == 0 or n_impostor == 0:
        raise ValueError("ROC requires both genuine and impostor samples")
    order = np.argsort(scores)[::-1]
    sorted_genuine = genuine[order]
    thresholds = scores[order]
    true_accepts = np.cumsum(sorted_genuine)
    false_accepts = np.cumsum(~sorted_genuine)
    tpr = true_accepts / n_genuine
    far = false_accepts / n_impostor
    return far, tpr, thresholds


def equal_error_rate(
    y_true: Sequence[Any], scores: Sequence[float], positive_label: Any
) -> float:
    """Equal error rate: the operating point where FAR equals FRR."""
    far, tpr, _ = roc_curve(y_true, scores, positive_label)
    frr = 1.0 - tpr
    gap = np.abs(far - frr)
    best = int(np.argmin(gap))
    return float(0.5 * (far[best] + frr[best]))


def area_under_curve(x: Sequence[float], y: Sequence[float]) -> float:
    """Trapezoidal area under a curve given by sorted x and y values."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    check_same_length(x, y, "x, y")
    order = np.argsort(x)
    return float(np.trapezoid(y[order], x[order]))
