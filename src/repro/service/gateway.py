"""Request-level authentication service API (enroll / authenticate / drift).

The :class:`AuthenticationGateway` is the service's backend dispatcher: it
owns the cloud :class:`~repro.devices.cloud.AuthenticationServer` (whose
windows live in a sharded :class:`~repro.devices.store.FeatureStore`), a
versioned :class:`~repro.service.registry.ModelRegistry`, per-user cached
:class:`~repro.core.scoring.BatchScorer`\\ s and a
:class:`~repro.service.telemetry.TelemetryHub`.  Every operation is a typed
:mod:`repro.service.protocol` request routed through :meth:`handle` — the
convenience methods (:meth:`enroll`, :meth:`authenticate`, …) are thin
wrappers that build the protocol request and dispatch it, so the
per-method API, the micro-batching
:class:`~repro.service.frontend.ServiceFrontend` and the HTTP transport
(:mod:`repro.service.transport`) all share one front door.
"""

from __future__ import annotations

import copy
from typing import Callable, Sequence

import numpy as np

from repro.core.context import ContextDetector
from repro.core.scoring import (
    BatchScorer,
    BatchScoreResult,
    canonicalize_rows,
    decode_contexts,
    encode_contexts,
)
from repro.devices.cloud import MIN_WINDOWS_PER_CONTEXT, AuthenticationServer
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DetectorTrainRequest,
    DetectorTrainResponse,
    DrainShardRequest,
    DriftReport,
    DriftResponse,
    EnrollRequest,
    EnrollResponse,
    EvictRequest,
    EvictResponse,
    Request,
    Response,
    RollbackRequest,
    RollbackResponse,
    SnapshotRequest,
    SnapshotResponse,
    request_kind,
)
from repro.service.registry import ModelRegistry
from repro.service.telemetry import TelemetryHub

__all__ = [
    "AuthenticationGateway",
    "ControlPlane",
    "DataPlane",
    "PlaneMismatchError",
    # Response types historically lived here; re-exported for compatibility.
    "EnrollResponse",
    "AuthenticationResponse",
    "DriftResponse",
]


class PlaneMismatchError(TypeError):
    """A protocol request was dispatched to the wrong plane.

    Raised when a control-plane operation (rollback, snapshot, eviction,
    detector training) reaches the :class:`DataPlane` — or a hot-path
    operation reaches the :class:`ControlPlane`.  Carries the typed wire
    error code the transport maps to an HTTP status.
    """

    #: Typed error code surfaced on the wire.
    code = "wrong-plane"

    def __init__(self, request: Request, plane: str, expected: str) -> None:
        super().__init__(
            f"{type(request).__name__} ({request_kind(request)!r}) is a "
            f"{expected}-plane operation and is unreachable from the "
            f"{plane} plane"
        )


class Plane:
    """One dispatch plane: a named, typed subset of the gateway's API.

    A request of the *other* plane dispatched here raises
    :class:`PlaneMismatchError` — the planes are structurally sealed off
    from each other.
    """

    #: This plane's name ("data" / "control").
    name: str
    #: The other plane's name (for the mismatch error message).
    other: str

    def __init__(
        self,
        gateway: "AuthenticationGateway",
        handlers: dict[type, Callable[[Request], Response]],
    ) -> None:
        self.gateway = gateway
        self._handlers = handlers

    @property
    def request_types(self) -> tuple[type, ...]:
        """The typed request set this plane serves."""
        return tuple(self._handlers)

    def handle(self, request: Request) -> Response:
        """Dispatch one of this plane's requests.

        Raises
        ------
        PlaneMismatchError
            If *request* belongs to the other plane (or is any protocol
            request this plane does not serve).
        TypeError
            If *request* is not a protocol request at all.
        """
        handler = self._handlers.get(type(request))
        if handler is None:
            raise PlaneMismatchError(request, plane=self.name, expected=self.other)
        return handler(request)


class DataPlane(Plane):
    """The hot-path dispatcher: enroll / authenticate / drift-report only.

    The only operations the micro-batching frontend coalesces, the
    micro-batch queue admits, and ``POST /v2/requests`` accepts.
    """

    name = "data"
    other = "control"

    def __init__(self, gateway: "AuthenticationGateway") -> None:
        super().__init__(
            gateway,
            {
                EnrollRequest: gateway._handle_enroll,
                AuthenticateRequest: gateway._handle_authenticate,
                DriftReport: gateway._handle_drift,
            },
        )


class ControlPlane(Plane):
    """The admin dispatcher: rollback / snapshot / evict / detector training.

    Rare, operator-initiated operations with their own typed request set
    and the ``admin`` caller scope; served at ``POST /v2/admin``, never
    coalesced and never admitted by the micro-batch queue.
    """

    name = "control"
    other = "data"

    def __init__(self, gateway: "AuthenticationGateway") -> None:
        super().__init__(
            gateway,
            {
                RollbackRequest: gateway._handle_rollback,
                SnapshotRequest: gateway._handle_snapshot,
                EvictRequest: gateway._handle_evict,
                DetectorTrainRequest: gateway._handle_train_detector,
                DrainShardRequest: gateway._handle_drain_shard,
            },
        )


class AuthenticationGateway:
    """Fleet-facing facade over storage, training, registry and scoring.

    Parameters
    ----------
    server:
        Optional pre-configured cloud server.  When omitted, one is created
        with a fresh :class:`~repro.devices.store.FeatureStore`; either way
        the gateway wires its registry into the server so every training
        round is published automatically.
    registry:
        Optional pre-configured model registry.  When omitted, a server
        that already has a registry keeps it (published versions stay
        servable); otherwise a fresh in-memory registry is created.  An
        explicitly passed registry always wins and is wired into the
        server.
    telemetry:
        Optional shared telemetry hub.
    min_windows_to_train:
        :meth:`enroll` with ``train=None`` automatically trains once the
        user has at least this many stored windows (and at least one other
        enrolled user to provide negatives).
    use_context:
        Whether scoring selects per-context models (the paper's default).
    """

    def __init__(
        self,
        server: AuthenticationServer | None = None,
        registry: ModelRegistry | None = None,
        telemetry: TelemetryHub | None = None,
        min_windows_to_train: int = 20,
        use_context: bool = True,
    ) -> None:
        if min_windows_to_train < 1:
            raise ValueError("min_windows_to_train must be >= 1")
        self.server = server if server is not None else AuthenticationServer()
        if registry is not None:
            self.registry = registry
        elif self.server.registry is not None:
            # Keep the server's registry: it may already hold published
            # versions the fleet expects to keep serving.
            self.registry = self.server.registry
        else:
            self.registry = ModelRegistry()
        self.server.registry = self.registry
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self.min_windows_to_train = min_windows_to_train
        self.use_context = use_context
        # One cached scorer per user, keyed by the (version, use_context)
        # it was built for, so memory stays bounded by fleet size and a
        # mode flip or retrain invalidates stale entries.
        self._scorers: dict[str, tuple[int, bool, BatchScorer]] = {}
        # The two dispatch planes: the hot device path and the rare admin
        # path, each with its own typed request set.  Versioned (v2)
        # callers reach exactly one of them per endpoint; handle() below
        # remains the plane-agnostic in-process facade.
        self.data_plane = DataPlane(self)
        self.control_plane = ControlPlane(self)
        # Set by the transport / fleet when request tracing is enabled;
        # ``None`` keeps dispatch byte-identical to the untraced path.
        self.tracer = None

    # ------------------------------------------------------------------ #
    # protocol dispatch
    # ------------------------------------------------------------------ #

    def plane_for(self, request: Request) -> DataPlane | ControlPlane:
        """The plane serving *request*'s operation.

        Raises
        ------
        TypeError
            If *request* is not a protocol request.
        """
        if type(request) in self.data_plane._handlers:
            return self.data_plane
        if type(request) in self.control_plane._handlers:
            return self.control_plane
        raise TypeError(
            f"not a protocol request: {type(request).__name__!r}; expected "
            "one of EnrollRequest, AuthenticateRequest, DriftReport, "
            "RollbackRequest, SnapshotRequest, EvictRequest, "
            "DetectorTrainRequest, DrainShardRequest"
        )

    def handle(self, request: Request) -> Response:
        """Route one typed protocol request to its operation.

        This is the gateway's plane-agnostic in-process entry point: the
        convenience methods below and the micro-batching frontend dispatch
        through it, and it routes to whichever plane serves the request.
        (Versioned API callers go through the planes directly — a data
        endpoint can never reach a control operation.)  Errors propagate as
        exceptions; mapping them to
        :class:`~repro.service.protocol.ErrorResponse` is the frontend
        middleware's job.
        """
        tracer = self.tracer
        if tracer is not None:
            trace = tracer.trace_for(request)
            if trace is not None:
                with trace.span("gateway", kind=request_kind(request)):
                    return self.plane_for(request).handle(request)
        return self.plane_for(request).handle(request)

    # ------------------------------------------------------------------ #
    # enrollment
    # ------------------------------------------------------------------ #

    def enroll(
        self, user_id: str, matrix: FeatureMatrix, train: bool | None = None
    ) -> EnrollResponse:
        """Store a user's feature windows, optionally training their models.

        Parameters
        ----------
        train:
            ``True`` forces a training round, ``False`` only buffers the
            windows, ``None`` (default) trains automatically once
            ``min_windows_to_train`` windows are stored and another user is
            enrolled to provide negatives.
        """
        return self.handle(EnrollRequest(user_id=user_id, matrix=matrix, train=train))

    def _handle_enroll(self, request: EnrollRequest) -> EnrollResponse:
        user_id, matrix, train = request.user_id, request.matrix, request.train
        with self.telemetry.timer("enroll"):
            self.server.upload_features(user_id, matrix)
            self.telemetry.increment("enroll.windows", len(matrix))
            stored = self.server.stored_window_count(user_id)
            if train is not None:
                should_train = train
            else:
                # Auto-train only once a round can actually succeed,
                # mirroring train(): at least one context meets the
                # per-context minimum and has other-user negatives.  The
                # cheap aggregate checks run first; the negative-pool scan
                # only happens once this user is otherwise ready.
                should_train = (
                    stored >= self.min_windows_to_train
                    and len(self.server.enrolled_users()) >= 2
                )
                if should_train:
                    qualifying = self._qualifying_contexts(user_id)
                    should_train = bool(qualifying)
                if should_train:
                    negatives = self.server.negative_window_counts(user_id)
                    should_train = all(
                        negatives.get(context, 0) > 0 for context in qualifying
                    )
            if not should_train:
                return EnrollResponse(
                    user_id=user_id, status="buffered", windows_stored=stored
                )
            version = self.train(user_id)
        return EnrollResponse(
            user_id=user_id,
            status="trained",
            windows_stored=stored,
            model_version=version,
        )

    def _qualifying_contexts(self, user_id: str) -> tuple[CoarseContext, ...]:
        """Contexts whose stored windows meet the server's training minimum."""
        return tuple(
            context
            for context, count in self.server.context_window_counts(user_id).items()
            if count >= MIN_WINDOWS_PER_CONTEXT
        )

    def train(self, user_id: str) -> int:
        """Run one training round for *user_id*; returns the new version.

        Only contexts meeting the server's per-context window minimum are
        trained (a few unlabelled windows must not make an otherwise
        data-poor context abort the whole round); if no context qualifies,
        the server raises its usual informative error.
        """
        with self.telemetry.timer("train"):
            contexts = self._qualifying_contexts(user_id)
            if not contexts:
                contexts = self.server.contexts_for(user_id) or tuple(CoarseContext)
            bundle = self.server.train_authentication_models(user_id, contexts=contexts)
            self.telemetry.increment("train.rounds")
        return bundle.version

    # ------------------------------------------------------------------ #
    # context detection (registry-served, user-agnostic)
    # ------------------------------------------------------------------ #

    def train_context_detector(
        self,
        matrix: FeatureMatrix | None = None,
        exclude_user: str | None = None,
        detector: ContextDetector | None = None,
    ) -> int:
        """Train (or adopt) the user-agnostic context detector and publish it.

        Training runs through the single shared entry point
        (:func:`repro.devices.cloud.fit_context_detector`) the paper-path
        :class:`~repro.core.context.ContextDetector` uses, so what the
        registry serves is exactly what the phone-side reproduction would
        run.  The trained ``(scaler, classifier)`` pair is installed on the
        cloud server and published to the model registry, versioned exactly
        like authentication bundles, so every serving path — gateway and
        micro-batching frontend alike — scores detection from the registry
        instead of trusting device-reported contexts.

        Parameters
        ----------
        matrix:
            Labelled context windows to train from (required unless a
            pre-fitted *detector* is supplied).
        exclude_user:
            Optionally leave one user's rows out of training.
        detector:
            A pre-fitted paper-path detector to publish verbatim instead
            of training a new one.

        Returns
        -------
        int
            The published detector version.

        Raises
        ------
        ValueError
            If neither *matrix* nor a fitted *detector* is supplied (or
            both are), or training data is unusable.
        """
        if (matrix is None) == (detector is None):
            raise ValueError(
                "pass exactly one of matrix (train a detector) or detector "
                "(publish a pre-fitted one)"
            )
        with self.telemetry.timer("train_context_detector"):
            if detector is not None:
                if not detector._fitted:
                    raise ValueError("detector must be fitted before publication")
                # Publish a snapshot, not the live objects: refitting the
                # caller's detector later must not mutate the immutable
                # published version (fit_context_detector refits the SAME
                # classifier instance in place).
                scaler = copy.deepcopy(detector.scaler)
                classifier = copy.deepcopy(detector.classifier)
                self.server.install_context_detector(scaler, classifier)
            else:
                self.server.train_context_detector(matrix, exclude_user=exclude_user)
                scaler, classifier = self.server.download_context_detector()
            version = self.registry.publish_context_detector(scaler, classifier)
        self.telemetry.increment("context.detector_versions")
        return version

    def context_detector(self, version: int | None = None) -> ContextDetector:
        """The served detector, rehydrated as a paper-path object.

        The returned detector holds *copies* of the published parts, so
        refitting it (e.g. to experiment on a phone-side variant) can
        never mutate the immutable registry version it came from.

        Parameters
        ----------
        version:
            A specific published detector version (default: the newest).

        Raises
        ------
        KeyError
            If no context detector has been published.
        """
        scaler, classifier = self.registry.context_detector(version)
        return ContextDetector.from_parts(
            copy.deepcopy(scaler), copy.deepcopy(classifier)
        )

    def detect_context_codes(self, features: np.ndarray) -> np.ndarray:
        """Detect each row's context as int codes, fully vectorized.

        The serving hot path's form of :meth:`detect_contexts`: predictions
        translate to canonical ``int8`` context codes in one array pass
        (:func:`repro.core.scoring.encode_contexts`), so coalesced scoring
        never touches per-row Python.

        Raises
        ------
        KeyError
            If no context detector has been published.
        """
        scaler, classifier = self.registry.context_detector()
        features = canonicalize_rows(features)
        if len(features) == 0:
            return np.empty(0, dtype=np.int8)
        with self.telemetry.timer("detect_contexts"):
            predictions = classifier.predict(scaler.transform(features))
        self.telemetry.increment("context.detections", len(features))
        return encode_contexts(np.asarray(predictions).astype(str))

    def detect_contexts(self, features: np.ndarray) -> tuple[CoarseContext, ...]:
        """Detect each row's coarse context with the registry-served detector.

        Raises
        ------
        KeyError
            If no context detector has been published.
        """
        return decode_contexts(self.detect_context_codes(features))

    # ------------------------------------------------------------------ #
    # authentication
    # ------------------------------------------------------------------ #

    def scorer_for(self, user_id: str, version: int | None = None) -> BatchScorer:
        """The cached batch scorer serving *user_id* (rebuilt when stale).

        Raises
        ------
        KeyError
            If the user has no published model version.
        """
        resolved = (
            version if version is not None else self.registry.latest_version(user_id)
        )
        cached = self._scorers.get(user_id)
        if cached is not None and cached[0] == resolved and cached[1] == self.use_context:
            return cached[2]
        scorer = BatchScorer(
            self.registry.bundle_for(user_id, resolved), use_context=self.use_context
        )
        # Cache replaces any previous entry: retrain, rollback and
        # use_context flips each change the key, so stale scorers never
        # linger.
        self._scorers[user_id] = (resolved, self.use_context, scorer)
        return scorer

    def record_authentication(self, result: BatchScoreResult) -> None:
        """Fold one batch's decisions into the service counters.

        Shared by the per-request path below and the frontend's coalesced
        path, so ``auth.*`` counters stay consistent no matter which door a
        request came through.
        """
        self.record_decision_counts(len(result), result.n_accepted)

    def record_decision_counts(self, n_windows: int, n_accepted: int) -> None:
        """Fold raw decision totals into the ``auth.*`` counters.

        The columnar serving path counts accepts straight off its decision
        block and folds the totals in here — same counters, no per-request
        result objects.
        """
        self.telemetry.increment("auth.windows", n_windows)
        self.telemetry.increment("auth.accepted", n_accepted)
        self.telemetry.increment("auth.rejected", n_windows - n_accepted)

    def authenticate(
        self,
        user_id: str,
        features: np.ndarray,
        contexts: Sequence[CoarseContext] | None = None,
        version: int | None = None,
    ) -> AuthenticationResponse:
        """Score a batch of windows for *user_id* against their served model.

        With ``contexts=None`` the registry-published context detector
        labels the windows server-side (raising ``KeyError`` if none has
        been published); otherwise the supplied device-reported contexts
        are used.

        Raises
        ------
        KeyError
            If the user has no published model version.
        """
        return self.handle(
            AuthenticateRequest(
                user_id=user_id,
                features=features,
                contexts=None if contexts is None else tuple(contexts),
                version=version,
            )
        )

    def _handle_authenticate(self, request: AuthenticateRequest) -> AuthenticationResponse:
        codes = request.context_codes
        if codes is None:
            # Detection runs outside the "authenticate" timer (it has its
            # own "detect_contexts" recorder) so that recorder measures
            # scoring alone on this door and the coalescing frontend alike.
            codes = self.detect_context_codes(request.features)
        with self.telemetry.timer("authenticate"):
            result = self.scorer_for(request.user_id, request.version).score(
                request.features, codes
            )
        self.record_authentication(result)
        return AuthenticationResponse(user_id=request.user_id, result=result)

    # ------------------------------------------------------------------ #
    # drift and rollback
    # ------------------------------------------------------------------ #

    def report_drift(self, user_id: str, fresh_matrix: FeatureMatrix) -> DriftResponse:
        """Accept fresh post-drift windows and retrain the user's models.

        The windows are stored before the serving-version lookup, so a
        drift report for a never-trained user still preserves its data
        (the KeyError it raises is then purely informational).
        """
        return self.handle(DriftReport(user_id=user_id, matrix=fresh_matrix))

    def _handle_drift(self, request: DriftReport) -> DriftResponse:
        with self.telemetry.timer("retrain"):
            self.server.upload_features(request.user_id, request.matrix)
            previous = self.registry.latest_version(request.user_id)
            new_version = self.train(request.user_id)
        self.telemetry.increment("drift.reports")
        return DriftResponse(
            user_id=request.user_id, previous_version=previous, new_version=new_version
        )

    def rollback(self, user_id: str) -> int:
        """Retire the newest model version; returns the now-serving version."""
        return self.handle(RollbackRequest(user_id=user_id)).serving_version

    def _handle_rollback(self, request: RollbackRequest) -> RollbackResponse:
        record = self.registry.rollback(request.user_id)
        self.telemetry.increment("rollback.count")
        return RollbackResponse(user_id=request.user_id, serving_version=record.version)

    # ------------------------------------------------------------------ #
    # registry eviction
    # ------------------------------------------------------------------ #

    def evict(
        self,
        policy: str = "max_versions",
        max_versions: int = 4,
        user_id: str | None = None,
    ) -> EvictResponse:
        """Evict old registry versions (see :meth:`ModelRegistry.evict`)."""
        return self.handle(
            EvictRequest(policy=policy, max_versions=max_versions, user_id=user_id)
        )

    def _handle_evict(self, request: EvictRequest) -> EvictResponse:
        with self.telemetry.timer("evict"):
            evicted = self.registry.evict(
                policy=request.policy,
                max_versions=request.max_versions,
                user_id=request.user_id,
            )
        self.telemetry.increment(
            "registry.evicted", sum(len(versions) for versions in evicted.values())
        )
        return EvictResponse(policy=request.policy, evicted=evicted)

    def _handle_train_detector(
        self, request: DetectorTrainRequest
    ) -> DetectorTrainResponse:
        version = self.train_context_detector(
            matrix=request.matrix, exclude_user=request.exclude_user
        )
        return DetectorTrainResponse(version=version)

    def _handle_drain_shard(self, request: DrainShardRequest) -> Response:
        # Draining rebalances a consistent-hash ring; a standalone server
        # has none.  The shard router answers this operation itself and
        # never forwards it, so reaching here means the envelope was sent
        # to a worker (or single-process deployment) directly.
        raise ValueError(
            f"drain-shard (shard={request.shard}) is a shard-router "
            "operation; this server has no ring to rebalance — send it to "
            "the router's /v2/admin endpoint"
        )

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Telemetry plus storage statistics, as plain types."""
        return self.handle(SnapshotRequest()).snapshot

    def _handle_snapshot(self, request: SnapshotRequest) -> SnapshotResponse:
        stats = self.server.store.stats()
        snapshot = self.telemetry.snapshot()
        snapshot["store"] = {
            "n_users": stats.n_users,
            "n_windows": stats.n_windows,
            "n_buffers": stats.n_buffers,
            "total_evicted": stats.total_evicted,
        }
        return SnapshotResponse(snapshot=snapshot)
