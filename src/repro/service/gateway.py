"""Request-level authentication service API (enroll / authenticate / drift).

The :class:`AuthenticationGateway` is the front door of the service layer:
it owns the cloud :class:`~repro.devices.cloud.AuthenticationServer` (whose
windows live in a sharded :class:`~repro.service.store.FeatureStore`), a
versioned :class:`~repro.service.registry.ModelRegistry`, per-user cached
:class:`~repro.service.batch.BatchScorer`\\ s and a
:class:`~repro.service.telemetry.TelemetryHub`, and exposes the three
operations a device fleet issues: enroll feature windows, authenticate a
batch of windows, and report behavioural drift (triggering retraining).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.devices.cloud import MIN_WINDOWS_PER_CONTEXT, AuthenticationServer
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.batch import BatchScorer, BatchScoreResult
from repro.service.registry import ModelRegistry
from repro.service.telemetry import TelemetryHub


@dataclass(frozen=True)
class EnrollResponse:
    """Outcome of one enrollment upload."""

    user_id: str
    status: str  # "buffered" or "trained"
    windows_stored: int
    model_version: int | None = None


@dataclass(frozen=True)
class AuthenticationResponse:
    """Outcome of one batched authentication request."""

    user_id: str
    result: BatchScoreResult

    @property
    def accepted(self) -> np.ndarray:
        return self.result.accepted

    @property
    def scores(self) -> np.ndarray:
        return self.result.scores

    @property
    def accept_rate(self) -> float:
        return self.result.accept_rate

    @property
    def model_version(self) -> int:
        return self.result.model_version


@dataclass(frozen=True)
class DriftResponse:
    """Outcome of a drift report (always retrains)."""

    user_id: str
    previous_version: int
    new_version: int


class AuthenticationGateway:
    """Fleet-facing facade over storage, training, registry and scoring.

    Parameters
    ----------
    server:
        Optional pre-configured cloud server.  When omitted, one is created
        with a fresh :class:`~repro.service.store.FeatureStore`; either way
        the gateway wires its registry into the server so every training
        round is published automatically.
    registry:
        Optional pre-configured model registry.  When omitted, a server
        that already has a registry keeps it (published versions stay
        servable); otherwise a fresh in-memory registry is created.  An
        explicitly passed registry always wins and is wired into the
        server.
    telemetry:
        Optional shared telemetry hub.
    min_windows_to_train:
        :meth:`enroll` with ``train=None`` automatically trains once the
        user has at least this many stored windows (and at least one other
        enrolled user to provide negatives).
    use_context:
        Whether scoring selects per-context models (the paper's default).
    """

    def __init__(
        self,
        server: AuthenticationServer | None = None,
        registry: ModelRegistry | None = None,
        telemetry: TelemetryHub | None = None,
        min_windows_to_train: int = 20,
        use_context: bool = True,
    ) -> None:
        if min_windows_to_train < 1:
            raise ValueError("min_windows_to_train must be >= 1")
        self.server = server if server is not None else AuthenticationServer()
        if registry is not None:
            self.registry = registry
        elif self.server.registry is not None:
            # Keep the server's registry: it may already hold published
            # versions the fleet expects to keep serving.
            self.registry = self.server.registry
        else:
            self.registry = ModelRegistry()
        self.server.registry = self.registry
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self.min_windows_to_train = min_windows_to_train
        self.use_context = use_context
        # One cached scorer per user, keyed by the (version, use_context)
        # it was built for, so memory stays bounded by fleet size and a
        # mode flip or retrain invalidates stale entries.
        self._scorers: dict[str, tuple[int, bool, BatchScorer]] = {}

    # ------------------------------------------------------------------ #
    # enrollment
    # ------------------------------------------------------------------ #

    def enroll(
        self, user_id: str, matrix: FeatureMatrix, train: bool | None = None
    ) -> EnrollResponse:
        """Store a user's feature windows, optionally training their models.

        Parameters
        ----------
        train:
            ``True`` forces a training round, ``False`` only buffers the
            windows, ``None`` (default) trains automatically once
            ``min_windows_to_train`` windows are stored and another user is
            enrolled to provide negatives.
        """
        with self.telemetry.timer("enroll"):
            self.server.upload_features(user_id, matrix)
            self.telemetry.increment("enroll.windows", len(matrix))
            stored = self.server.stored_window_count(user_id)
            if train is not None:
                should_train = train
            else:
                # Auto-train only once a round can actually succeed,
                # mirroring train(): at least one context meets the
                # per-context minimum and has other-user negatives.  The
                # cheap aggregate checks run first; the negative-pool scan
                # only happens once this user is otherwise ready.
                should_train = (
                    stored >= self.min_windows_to_train
                    and len(self.server.enrolled_users()) >= 2
                )
                if should_train:
                    qualifying = self._qualifying_contexts(user_id)
                    should_train = bool(qualifying)
                if should_train:
                    negatives = self.server.negative_window_counts(user_id)
                    should_train = all(
                        negatives.get(context, 0) > 0 for context in qualifying
                    )
            if not should_train:
                return EnrollResponse(
                    user_id=user_id, status="buffered", windows_stored=stored
                )
            version = self.train(user_id)
        return EnrollResponse(
            user_id=user_id,
            status="trained",
            windows_stored=stored,
            model_version=version,
        )

    def _qualifying_contexts(self, user_id: str) -> tuple[CoarseContext, ...]:
        """Contexts whose stored windows meet the server's training minimum."""
        return tuple(
            context
            for context, count in self.server.context_window_counts(user_id).items()
            if count >= MIN_WINDOWS_PER_CONTEXT
        )

    def train(self, user_id: str) -> int:
        """Run one training round for *user_id*; returns the new version.

        Only contexts meeting the server's per-context window minimum are
        trained (a few unlabelled windows must not make an otherwise
        data-poor context abort the whole round); if no context qualifies,
        the server raises its usual informative error.
        """
        with self.telemetry.timer("train"):
            contexts = self._qualifying_contexts(user_id)
            if not contexts:
                contexts = self.server.contexts_for(user_id) or tuple(CoarseContext)
            bundle = self.server.train_authentication_models(user_id, contexts=contexts)
            self.telemetry.increment("train.rounds")
        return bundle.version

    # ------------------------------------------------------------------ #
    # authentication
    # ------------------------------------------------------------------ #

    def _scorer_for(self, user_id: str, version: int | None = None) -> BatchScorer:
        resolved = (
            version if version is not None else self.registry.latest_version(user_id)
        )
        cached = self._scorers.get(user_id)
        if cached is not None and cached[0] == resolved and cached[1] == self.use_context:
            return cached[2]
        scorer = BatchScorer(
            self.registry.bundle_for(user_id, resolved), use_context=self.use_context
        )
        # Cache replaces any previous entry: retrain, rollback and
        # use_context flips each change the key, so stale scorers never
        # linger.
        self._scorers[user_id] = (resolved, self.use_context, scorer)
        return scorer

    def authenticate(
        self,
        user_id: str,
        features: np.ndarray,
        contexts: Sequence[CoarseContext],
        version: int | None = None,
    ) -> AuthenticationResponse:
        """Score a batch of windows for *user_id* against their served model.

        Raises
        ------
        KeyError
            If the user has no published model version.
        """
        with self.telemetry.timer("authenticate"):
            result = self._scorer_for(user_id, version).score(features, contexts)
        self.telemetry.increment("auth.windows", len(result))
        self.telemetry.increment("auth.accepted", result.n_accepted)
        self.telemetry.increment("auth.rejected", len(result) - result.n_accepted)
        return AuthenticationResponse(user_id=user_id, result=result)

    # ------------------------------------------------------------------ #
    # drift and rollback
    # ------------------------------------------------------------------ #

    def report_drift(self, user_id: str, fresh_matrix: FeatureMatrix) -> DriftResponse:
        """Accept fresh post-drift windows and retrain the user's models.

        The windows are stored before the serving-version lookup, so a
        drift report for a never-trained user still preserves its data
        (the KeyError it raises is then purely informational).
        """
        with self.telemetry.timer("retrain"):
            self.server.upload_features(user_id, fresh_matrix)
            previous = self.registry.latest_version(user_id)
            new_version = self.train(user_id)
        self.telemetry.increment("drift.reports")
        return DriftResponse(
            user_id=user_id, previous_version=previous, new_version=new_version
        )

    def rollback(self, user_id: str) -> int:
        """Retire the newest model version; returns the now-serving version."""
        record = self.registry.rollback(user_id)
        self.telemetry.increment("rollback.count")
        return record.version

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Telemetry plus storage statistics, as plain types."""
        stats = self.server.store.stats()
        snapshot = self.telemetry.snapshot()
        snapshot["store"] = {
            "n_users": stats.n_users,
            "n_windows": stats.n_windows,
            "n_buffers": stats.n_buffers,
            "total_evicted": stats.total_evicted,
        }
        return snapshot
