"""Typed request/response protocol of the authentication service.

The service's front door speaks a small set of frozen-dataclass request
types — one per operation a device fleet can issue — plus matching response
types, with a lossless JSON wire codec mirroring the model registry's
bundle format (NumPy arrays tagged with their dtype, enums stored by
value).  Keeping the protocol transport-agnostic means the in-process
:class:`~repro.service.frontend.ServiceFrontend`, the HTTP transport
(:mod:`repro.service.transport`), and the test-suite all share one
contract:

The operations split into two *planes* (the v2 API serves them on separate
endpoints with separate caller scopes; see :mod:`repro.service.envelope`):

**Data plane** — the high-traffic device path (scope ``data:write``):

* :class:`EnrollRequest` — upload feature windows (optionally training);
* :class:`AuthenticateRequest` — score windows against the served model;
  ``contexts=None`` asks the server to detect contexts itself with the
  registry-published context detector instead of trusting the device;
* :class:`DriftReport` — report behavioural drift with fresh windows.

**Control plane** — rare operator/admin actions (scope ``admin``):

* :class:`RollbackRequest` — retire the newest model version;
* :class:`SnapshotRequest` — fetch telemetry and storage statistics;
* :class:`EvictRequest` — evict old registry versions (long-lived fleets);
* :class:`DetectorTrainRequest` — train + publish the context detector.

Every request/response round-trips losslessly through
:func:`dumps_request`/:func:`loads_request` and
:func:`dumps_response`/:func:`loads_response`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.scoring import (
    BatchScoreResult,
    canonicalize_rows,
    decode_contexts,
    encode_contexts,
    offsets_from_lengths,
)
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.utils import serialization

# --------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------- #


def _check_user_id(user_id: str) -> None:
    if not isinstance(user_id, str) or not user_id:
        raise ValueError(f"user_id must be a non-empty string, got {user_id!r}")


@dataclass(frozen=True, eq=False)
class EnrollRequest:
    """Upload a user's feature windows, optionally training their models.

    ``train=True`` forces a training round, ``False`` only buffers the
    windows, ``None`` (default) lets the service train automatically once
    its enrollment threshold is met.

    ``eq=False`` (identity comparison) because the payload holds NumPy
    arrays, whose elementwise ``==`` would make the generated dataclass
    equality raise; compare via the wire payloads instead.
    """

    user_id: str
    matrix: FeatureMatrix
    train: bool | None = None

    def __post_init__(self) -> None:
        _check_user_id(self.user_id)
        if not isinstance(self.matrix, FeatureMatrix):
            raise ValueError("matrix must be a FeatureMatrix")


@dataclass(frozen=True, eq=False)
class AuthenticateRequest:
    """Score a batch of windows for *user_id* against their served model.

    ``eq=False`` for the same array-field reason as :class:`EnrollRequest`.
    The feature rows are snapshotted (copied, marked read-only) at
    construction, so a caller mutating its source array afterwards cannot
    change what gets scored.

    Attributes
    ----------
    features:
        Window feature rows, shape ``(n_windows, n_features)`` (a single
        1-D vector is promoted to one row).
    contexts:
        Device-reported coarse context per window — or ``None`` to have the
        service detect contexts itself from the same feature rows, using
        the registry-published user-agnostic detector.
    version:
        Optional pinned model version (default: the newest active one).
    context_codes:
        Derived, not a constructor argument: the int-encoded form of
        ``contexts`` (``None`` when contexts are server-detected), computed
        once at construction so the serving hot path buckets windows with
        pure array gathers (:func:`repro.core.scoring.encode_contexts`).
    """

    user_id: str
    features: np.ndarray
    contexts: tuple[CoarseContext, ...] | None = None
    version: int | None = None
    context_codes: np.ndarray | None = field(
        init=False, default=None, repr=False
    )

    def __post_init__(self) -> None:
        _check_user_id(self.user_id)
        features = canonicalize_rows(self.features).copy()
        features.setflags(write=False)
        object.__setattr__(self, "features", features)
        if self.contexts is not None:
            contexts = tuple(CoarseContext(context) for context in self.contexts)
            if len(contexts) != len(features):
                raise ValueError(
                    f"got {len(features)} feature rows but {len(contexts)} "
                    "context labels"
                )
            object.__setattr__(self, "contexts", contexts)
            codes = encode_contexts(contexts)
            codes.setflags(write=False)
            object.__setattr__(self, "context_codes", codes)


@dataclass(frozen=True, eq=False)
class DriftReport:
    """Report behavioural drift with fresh windows, triggering retraining.

    ``eq=False`` for the same array-field reason as :class:`EnrollRequest`.
    """

    user_id: str
    matrix: FeatureMatrix

    def __post_init__(self) -> None:
        _check_user_id(self.user_id)
        if not isinstance(self.matrix, FeatureMatrix):
            raise ValueError("matrix must be a FeatureMatrix")


@dataclass(frozen=True)
class RollbackRequest:
    """Retire the newest model version and serve the previous one."""

    user_id: str

    def __post_init__(self) -> None:
        _check_user_id(self.user_id)


@dataclass(frozen=True)
class SnapshotRequest:
    """Fetch the service's telemetry counters and storage statistics."""


#: Eviction policies :class:`EvictRequest` accepts.
EVICTION_POLICIES = ("max_versions", "lru")


@dataclass(frozen=True)
class EvictRequest:
    """Evict old model versions from the registry (long-lived fleets).

    A control-plane operation: long-lived fleets accumulate one bundle per
    retrain per user, and without eviction registry memory (and on-disk
    payloads) grow without bound.  The serving bundle is never evicted.

    Attributes
    ----------
    policy:
        ``"max_versions"`` keeps each user's newest versions;
        ``"lru"`` keeps each user's most recently *served* versions.
    max_versions:
        How many versions each policy keeps per user (the serving version
        is always kept, even beyond this budget).
    user_id:
        Restrict eviction to one user (default: the whole registry).
    """

    policy: str = "max_versions"
    max_versions: int = 4
    user_id: str | None = None

    def __post_init__(self) -> None:
        if self.policy not in EVICTION_POLICIES:
            raise ValueError(
                f"policy must be one of {EVICTION_POLICIES}, got {self.policy!r}"
            )
        if not isinstance(self.max_versions, int) or self.max_versions < 1:
            raise ValueError(
                f"max_versions must be an int >= 1, got {self.max_versions!r}"
            )
        if self.user_id is not None:
            _check_user_id(self.user_id)


@dataclass(frozen=True, eq=False)
class DetectorTrainRequest:
    """Train the user-agnostic context detector and publish it.

    A control-plane operation: the labelled *matrix* trains the shared
    ``(scaler, classifier)`` detector through the paper-path entry point
    and publishes it to the model registry, versioned like bundles.

    ``eq=False`` for the same array-field reason as :class:`EnrollRequest`.
    """

    matrix: FeatureMatrix
    exclude_user: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.matrix, FeatureMatrix):
            raise ValueError("matrix must be a FeatureMatrix")
        if self.exclude_user is not None:
            _check_user_id(self.exclude_user)


@dataclass(frozen=True)
class DrainShardRequest:
    """Mark one shard draining (or restore it) for live resharding.

    A control-plane operation the **shard router** answers itself: workers
    have no ring to rebalance, so a drain envelope reaching a standalone
    server fails typed (``ValueError``).  While a shard drains, the router
    routes no new sub-frames to it — its users rebalance deterministically
    to the remaining shards along the consistent-hash ring — while requests
    already in flight complete normally.  ``undrain=True`` reverses the
    move, restoring the exact pre-drain routing.

    Attributes
    ----------
    shard:
        The shard index to drain (or restore).
    undrain:
        ``True`` returns the shard to rotation instead of draining it.
    """

    shard: int
    undrain: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.shard, int) or isinstance(self.shard, bool):
            raise ValueError(f"shard must be an int, got {self.shard!r}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if not isinstance(self.undrain, bool):
            raise ValueError(f"undrain must be a bool, got {self.undrain!r}")


Request = (
    EnrollRequest
    | AuthenticateRequest
    | DriftReport
    | RollbackRequest
    | SnapshotRequest
    | EvictRequest
    | DetectorTrainRequest
    | DrainShardRequest
)


# --------------------------------------------------------------------- #
# columnar batches (the zero-copy serving form)
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class AuthenticateColumns:
    """A batch of authenticate requests in columnar (struct-of-arrays) form.

    The binary wire codec decodes a batch frame straight into this shape —
    one contiguous feature block plus per-request metadata columns — and
    :meth:`~repro.service.frontend.ServiceFrontend.submit_columns` hands it
    to the fused scoring pass without ever materializing per-request
    :class:`AuthenticateRequest` objects.  Unlike the per-request type, the
    feature block is **not** defensively copied: the serving path builds it
    from immutable wire bytes (:func:`np.frombuffer` views are read-only),
    and copying a 100k-window block would defeat the zero-copy decode.

    ``eq=False`` for the usual array-field reason.

    Attributes
    ----------
    user_ids:
        One user id per request.
    features:
        The combined ``(total_windows, n_features)`` feature block, request
        slices back to back.
    lengths:
        Windows per request; must sum to ``len(features)``.
    context_codes:
        Per-window ``int8`` context codes — or ``None`` to have the service
        detect every window's context server-side in one vectorized pass.
    versions:
        Optional pinned model version per request (``None`` entries select
        the newest active version; ``versions=None`` means no pins at all).
    trace_id:
        Optional trace id threaded from the transport door.  The batch is
        rebuilt from wire bytes inside the worker thread, so the id field
        (resolved via :meth:`repro.service.tracing.Tracer.lookup`) is the
        only way the frontend can attach fused-pass spans to the frame's
        trace — object-identity binding cannot survive the re-decode.
    """

    user_ids: tuple[str, ...]
    features: np.ndarray
    lengths: np.ndarray
    context_codes: np.ndarray | None = None
    versions: tuple[int | None, ...] | None = None
    trace_id: str | None = None

    def __post_init__(self) -> None:
        for user_id in self.user_ids:
            _check_user_id(user_id)
        features = canonicalize_rows(self.features)
        object.__setattr__(self, "features", features)
        lengths = np.asarray(self.lengths, dtype=np.intp)
        object.__setattr__(self, "lengths", lengths)
        if len(lengths) != len(self.user_ids):
            raise ValueError(
                f"got {len(self.user_ids)} user ids but {len(lengths)} "
                "request lengths"
            )
        if len(lengths) and int(lengths.min()) < 0:
            raise ValueError("request lengths must be non-negative")
        total = int(lengths.sum())
        if total != len(features):
            raise ValueError(
                f"request lengths sum to {total} but the feature block has "
                f"{len(features)} rows"
            )
        if self.context_codes is not None:
            codes = encode_contexts(np.asarray(self.context_codes))
            if len(codes) != total:
                raise ValueError(
                    f"got {total} feature rows but {len(codes)} context codes"
                )
            object.__setattr__(self, "context_codes", codes)
        if self.versions is not None and len(self.versions) != len(self.user_ids):
            raise ValueError(
                f"got {len(self.user_ids)} user ids but {len(self.versions)} "
                "version pins"
            )

    @property
    def n_requests(self) -> int:
        return len(self.user_ids)

    @property
    def n_windows(self) -> int:
        return len(self.features)

    def version_for(self, index: int) -> int | None:
        """Request *index*'s pinned model version (``None`` = newest)."""
        return None if self.versions is None else self.versions[index]


@dataclass(frozen=True, eq=False)
class ColumnarAuthResult:
    """Columnar outcome of one :class:`AuthenticateColumns` dispatch.

    Mirrors the input shape: scored windows stay in contiguous blocks
    (request slices back to back, **errored requests contributing zero
    rows**) so the binary codec frames them without per-request objects.
    ``eq=False`` for the usual array-field reason.

    Attributes
    ----------
    user_ids:
        One user id per request (echo of the batch).
    scores, accepted, model_context_codes:
        One entry per *scored* window, in request order.
    lengths:
        Scored windows per request (``0`` for errored requests).
    model_versions:
        Served bundle version per request (``0`` for errored requests —
        consult :attr:`errors`).
    errors:
        Sparse map of request index to its typed
        :class:`ErrorResponse`; requests present here contributed no rows.
    """

    user_ids: tuple[str, ...]
    scores: np.ndarray
    accepted: np.ndarray
    model_context_codes: np.ndarray
    lengths: np.ndarray
    model_versions: np.ndarray
    errors: dict[int, "ErrorResponse"] = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return len(self.user_ids)

    def responses(self) -> list["Response"]:
        """Materialize one typed response per request, in request order.

        The compatibility bridge back to the per-request protocol: the
        binary client uses it so callers of ``submit_many`` see exactly the
        responses the JSON codec would have produced.
        """
        offsets = offsets_from_lengths(self.lengths)
        responses: list[Response] = []
        for index in range(self.n_requests):
            error = self.errors.get(index)
            if error is not None:
                responses.append(error)
                continue
            start, stop = int(offsets[index]), int(offsets[index + 1])
            responses.append(
                AuthenticationResponse(
                    user_id=self.user_ids[index],
                    result=BatchScoreResult(
                        scores=self.scores[start:stop],
                        accepted=self.accepted[start:stop],
                        model_contexts=decode_contexts(
                            self.model_context_codes[start:stop]
                        ),
                        model_version=int(self.model_versions[index]),
                    ),
                )
            )
        return responses

#: The hot-path operations: the only request types the data plane serves,
#: the micro-batch queue admits, and ``POST /v2/requests`` accepts.
DATA_PLANE_TYPES: tuple[type, ...] = (EnrollRequest, AuthenticateRequest, DriftReport)

#: The admin operations: served by the control plane at ``POST /v2/admin``,
#: requiring the ``admin`` caller scope.
CONTROL_PLANE_TYPES: tuple[type, ...] = (
    RollbackRequest,
    SnapshotRequest,
    EvictRequest,
    DetectorTrainRequest,
    DrainShardRequest,
)


def is_data_plane(request: Request) -> bool:
    """True when *request* is a hot-path (data-plane) operation."""
    return type(request) in DATA_PLANE_TYPES


def is_control_plane(request: Request) -> bool:
    """True when *request* is an admin (control-plane) operation."""
    return type(request) in CONTROL_PLANE_TYPES

# --------------------------------------------------------------------- #
# responses
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class EnrollResponse:
    """Outcome of one enrollment upload."""

    user_id: str
    status: str  # "buffered" or "trained"
    windows_stored: int
    model_version: int | None = None


@dataclass(frozen=True, eq=False)
class AuthenticationResponse:
    """Outcome of one batched authentication request.

    ``eq=False``: the result holds NumPy score/decision arrays (see
    :class:`EnrollRequest`); compare via the wire payloads instead.
    """

    user_id: str
    result: BatchScoreResult

    @property
    def accepted(self) -> np.ndarray:
        return self.result.accepted

    @property
    def scores(self) -> np.ndarray:
        return self.result.scores

    @property
    def accept_rate(self) -> float:
        return self.result.accept_rate

    @property
    def model_version(self) -> int:
        return self.result.model_version


@dataclass(frozen=True)
class DriftResponse:
    """Outcome of a drift report (always retrains)."""

    user_id: str
    previous_version: int
    new_version: int


@dataclass(frozen=True)
class RollbackResponse:
    """Outcome of a rollback: the version now serving."""

    user_id: str
    serving_version: int


@dataclass(frozen=True)
class SnapshotResponse:
    """Telemetry plus storage statistics, as plain types."""

    snapshot: dict = field(default_factory=dict)


@dataclass(frozen=True)
class EvictResponse:
    """Outcome of a registry eviction pass.

    Attributes
    ----------
    policy:
        The policy that ran (``"max_versions"`` or ``"lru"``).
    evicted:
        Mapping of user id to the version numbers evicted for that user
        (users with nothing to evict are omitted).
    versions_evicted:
        Total versions dropped across all users.
    """

    policy: str
    evicted: dict = field(default_factory=dict)

    @property
    def versions_evicted(self) -> int:
        return sum(len(versions) for versions in self.evicted.values())


@dataclass(frozen=True)
class DetectorTrainResponse:
    """Outcome of a detector training round: the published version."""

    version: int


@dataclass(frozen=True)
class DrainShardResponse:
    """Outcome of a drain (or undrain): the router's routing state.

    Attributes
    ----------
    shard:
        The shard the operation targeted.
    draining:
        Whether that shard is draining after the operation.
    active_shards:
        Shard indices still receiving new sub-frames, ascending.
    """

    shard: int
    draining: bool
    active_shards: tuple = ()


@dataclass(frozen=True)
class ThrottledResponse:
    """A request rejected by admission control before it was dispatched.

    Emitted by the micro-batching queue when its bounded depth is exhausted
    under the ``"reject"`` overflow policy, and mapped to HTTP 429 by the
    transport.  Unlike :class:`ErrorResponse` this is not a failure of the
    request itself: retrying after ``retry_after_s`` is expected to succeed
    once the backlog drains.

    Attributes
    ----------
    request_kind:
        The wire kind of the throttled request (e.g. ``"authenticate"``).
    reason:
        Why admission was refused (currently always ``"queue-full"``).
    queue_depth:
        Pending requests at the moment of rejection.
    max_depth:
        The queue's configured admission bound.
    retry_after_s:
        Suggested client back-off before retrying, in seconds.
    user_id:
        The requesting user, when the request carried one.
    """

    request_kind: str
    reason: str
    queue_depth: int
    max_depth: int
    retry_after_s: float = 0.0
    user_id: str | None = None


@dataclass(frozen=True)
class ErrorResponse:
    """A failed request, mapped from the exception that rejected it.

    Attributes
    ----------
    request_kind:
        The wire kind of the request that failed (e.g. ``"authenticate"``).
    error:
        The exception class name (``"KeyError"``, ``"ValueError"``, …).
    message:
        Human-readable failure description.
    user_id:
        The requesting user, when the request carried one.
    """

    request_kind: str
    error: str
    message: str
    user_id: str | None = None


Response = (
    EnrollResponse
    | AuthenticationResponse
    | DriftResponse
    | RollbackResponse
    | SnapshotResponse
    | EvictResponse
    | DetectorTrainResponse
    | DrainShardResponse
    | ThrottledResponse
    | ErrorResponse
)

# --------------------------------------------------------------------- #
# wire codec
# --------------------------------------------------------------------- #

_REQUEST_KINDS: dict[type, str] = {
    EnrollRequest: "enroll",
    AuthenticateRequest: "authenticate",
    DriftReport: "drift-report",
    RollbackRequest: "rollback",
    SnapshotRequest: "snapshot",
    EvictRequest: "evict",
    DetectorTrainRequest: "train-detector",
    DrainShardRequest: "drain-shard",
}

_RESPONSE_KINDS: dict[type, str] = {
    EnrollResponse: "enroll-response",
    AuthenticationResponse: "authenticate-response",
    DriftResponse: "drift-response",
    RollbackResponse: "rollback-response",
    SnapshotResponse: "snapshot-response",
    EvictResponse: "evict-response",
    DetectorTrainResponse: "train-detector-response",
    DrainShardResponse: "drain-shard-response",
    ThrottledResponse: "throttled-response",
    ErrorResponse: "error-response",
}


def request_kind(request: Request) -> str:
    """The wire kind tag of *request* (e.g. ``"authenticate"``)."""
    kind = _REQUEST_KINDS.get(type(request))
    if kind is None:
        raise TypeError(f"not a protocol request: {type(request).__name__}")
    return kind


def _matrix_to_payload(matrix: FeatureMatrix) -> dict[str, Any]:
    return {
        "values": matrix.values,
        "feature_names": list(matrix.feature_names),
        "user_ids": list(matrix.user_ids),
        "contexts": list(matrix.contexts),
    }


def _matrix_from_payload(payload: Mapping[str, Any]) -> FeatureMatrix:
    return FeatureMatrix(
        values=np.asarray(payload["values"], dtype=float),
        feature_names=list(payload["feature_names"]),
        user_ids=list(payload["user_ids"]),
        contexts=list(payload["contexts"]),
    )


def _result_to_payload(result: BatchScoreResult) -> dict[str, Any]:
    return {
        "scores": result.scores,
        "accepted": result.accepted,
        "model_contexts": [context.value for context in result.model_contexts],
        "model_version": int(result.model_version),
    }


def _result_from_payload(payload: Mapping[str, Any]) -> BatchScoreResult:
    return BatchScoreResult(
        scores=np.asarray(payload["scores"], dtype=float),
        accepted=np.asarray(payload["accepted"], dtype=bool),
        model_contexts=tuple(
            CoarseContext(value) for value in payload["model_contexts"]
        ),
        model_version=int(payload["model_version"]),
    )


def request_to_payload(request: Request) -> dict[str, Any]:
    """Serialise a protocol request into a plain tagged structure."""
    kind = request_kind(request)
    payload: dict[str, Any] = {"kind": kind}
    if isinstance(request, EnrollRequest):
        payload["user_id"] = request.user_id
        payload["matrix"] = _matrix_to_payload(request.matrix)
        payload["train"] = request.train
    elif isinstance(request, AuthenticateRequest):
        payload["user_id"] = request.user_id
        payload["features"] = request.features
        payload["contexts"] = (
            None
            if request.contexts is None
            else [context.value for context in request.contexts]
        )
        payload["version"] = request.version
    elif isinstance(request, DriftReport):
        payload["user_id"] = request.user_id
        payload["matrix"] = _matrix_to_payload(request.matrix)
    elif isinstance(request, RollbackRequest):
        payload["user_id"] = request.user_id
    elif isinstance(request, EvictRequest):
        payload["policy"] = request.policy
        payload["max_versions"] = int(request.max_versions)
        payload["user_id"] = request.user_id
    elif isinstance(request, DetectorTrainRequest):
        payload["matrix"] = _matrix_to_payload(request.matrix)
        payload["exclude_user"] = request.exclude_user
    elif isinstance(request, DrainShardRequest):
        payload["shard"] = int(request.shard)
        payload["undrain"] = bool(request.undrain)
    return payload


def request_from_payload(payload: Mapping[str, Any]) -> Request:
    """Rebuild a protocol request from :func:`request_to_payload` output.

    Unknown payload keys are ignored (a tolerant reader lets newer clients
    talk to older servers); unknown or missing ``kind`` values, and missing
    required fields, are not.

    Raises
    ------
    ValueError
        If *payload* is not a mapping, its ``kind`` names no request type,
        a required field for the tagged kind is missing, or a field fails
        the request's own validation.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"payload must be a mapping, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    try:
        if kind == "enroll":
            return EnrollRequest(
                user_id=payload["user_id"],
                matrix=_matrix_from_payload(payload["matrix"]),
                train=payload.get("train"),
            )
        if kind == "authenticate":
            contexts = payload.get("contexts")
            return AuthenticateRequest(
                user_id=payload["user_id"],
                features=np.asarray(payload["features"], dtype=float),
                contexts=(
                    None
                    if contexts is None
                    else tuple(CoarseContext(value) for value in contexts)
                ),
                version=payload.get("version"),
            )
        if kind == "drift-report":
            return DriftReport(
                user_id=payload["user_id"],
                matrix=_matrix_from_payload(payload["matrix"]),
            )
        if kind == "rollback":
            return RollbackRequest(user_id=payload["user_id"])
        if kind == "snapshot":
            return SnapshotRequest()
        if kind == "evict":
            return EvictRequest(
                policy=payload.get("policy", "max_versions"),
                max_versions=int(payload.get("max_versions", 4)),
                user_id=payload.get("user_id"),
            )
        if kind == "train-detector":
            return DetectorTrainRequest(
                matrix=_matrix_from_payload(payload["matrix"]),
                exclude_user=payload.get("exclude_user"),
            )
        if kind == "drain-shard":
            return DrainShardRequest(
                shard=int(payload["shard"]),
                undrain=bool(payload.get("undrain", False)),
            )
    except KeyError as error:
        # A missing field is a malformed payload (the sender's fault), not
        # a missing resource: surface it as the parser's ValueError.
        raise ValueError(
            f"{kind!r} payload is missing required field {error.args[0]!r}"
        ) from None
    raise ValueError(f"payload does not describe a protocol request: kind={kind!r}")


def response_to_payload(response: Response) -> dict[str, Any]:
    """Serialise a protocol response into a plain tagged structure."""
    kind = _RESPONSE_KINDS.get(type(response))
    if kind is None:
        raise TypeError(f"not a protocol response: {type(response).__name__}")
    payload: dict[str, Any] = {"kind": kind}
    if isinstance(response, EnrollResponse):
        payload.update(
            user_id=response.user_id,
            status=response.status,
            windows_stored=int(response.windows_stored),
            model_version=response.model_version,
        )
    elif isinstance(response, AuthenticationResponse):
        payload.update(
            user_id=response.user_id, result=_result_to_payload(response.result)
        )
    elif isinstance(response, DriftResponse):
        payload.update(
            user_id=response.user_id,
            previous_version=int(response.previous_version),
            new_version=int(response.new_version),
        )
    elif isinstance(response, RollbackResponse):
        payload.update(
            user_id=response.user_id, serving_version=int(response.serving_version)
        )
    elif isinstance(response, SnapshotResponse):
        payload.update(snapshot=response.snapshot)
    elif isinstance(response, EvictResponse):
        payload.update(
            policy=response.policy,
            evicted={
                user_id: [int(version) for version in versions]
                for user_id, versions in response.evicted.items()
            },
        )
    elif isinstance(response, DetectorTrainResponse):
        payload.update(version=int(response.version))
    elif isinstance(response, DrainShardResponse):
        payload.update(
            shard=int(response.shard),
            draining=bool(response.draining),
            active_shards=[int(shard) for shard in response.active_shards],
        )
    elif isinstance(response, ThrottledResponse):
        payload.update(
            request_kind=response.request_kind,
            reason=response.reason,
            queue_depth=int(response.queue_depth),
            max_depth=int(response.max_depth),
            retry_after_s=float(response.retry_after_s),
            user_id=response.user_id,
        )
    elif isinstance(response, ErrorResponse):
        payload.update(
            request_kind=response.request_kind,
            error=response.error,
            message=response.message,
            user_id=response.user_id,
        )
    return payload


def response_from_payload(payload: Mapping[str, Any]) -> Response:
    """Rebuild a protocol response from :func:`response_to_payload` output.

    Raises
    ------
    ValueError
        If *payload* is not a mapping, its ``kind`` names no response type,
        or a required field for the tagged kind is missing.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"payload must be a mapping, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    try:
        return _response_from_tagged_payload(kind, payload)
    except KeyError as error:
        raise ValueError(
            f"{kind!r} payload is missing required field {error.args[0]!r}"
        ) from None


def _response_from_tagged_payload(kind: Any, payload: Mapping[str, Any]) -> Response:
    if kind == "enroll-response":
        model_version = payload.get("model_version")
        return EnrollResponse(
            user_id=payload["user_id"],
            status=payload["status"],
            windows_stored=int(payload["windows_stored"]),
            model_version=None if model_version is None else int(model_version),
        )
    if kind == "authenticate-response":
        return AuthenticationResponse(
            user_id=payload["user_id"],
            result=_result_from_payload(payload["result"]),
        )
    if kind == "drift-response":
        return DriftResponse(
            user_id=payload["user_id"],
            previous_version=int(payload["previous_version"]),
            new_version=int(payload["new_version"]),
        )
    if kind == "rollback-response":
        return RollbackResponse(
            user_id=payload["user_id"],
            serving_version=int(payload["serving_version"]),
        )
    if kind == "snapshot-response":
        return SnapshotResponse(snapshot=dict(payload.get("snapshot", {})))
    if kind == "evict-response":
        return EvictResponse(
            policy=payload["policy"],
            evicted={
                user_id: [int(version) for version in versions]
                for user_id, versions in dict(payload.get("evicted", {})).items()
            },
        )
    if kind == "train-detector-response":
        return DetectorTrainResponse(version=int(payload["version"]))
    if kind == "drain-shard-response":
        return DrainShardResponse(
            shard=int(payload["shard"]),
            draining=bool(payload["draining"]),
            active_shards=tuple(
                int(shard) for shard in payload.get("active_shards", ())
            ),
        )
    if kind == "throttled-response":
        return ThrottledResponse(
            request_kind=payload["request_kind"],
            reason=payload["reason"],
            queue_depth=int(payload["queue_depth"]),
            max_depth=int(payload["max_depth"]),
            retry_after_s=float(payload.get("retry_after_s", 0.0)),
            user_id=payload.get("user_id"),
        )
    if kind == "error-response":
        return ErrorResponse(
            request_kind=payload["request_kind"],
            error=payload["error"],
            message=payload["message"],
            user_id=payload.get("user_id"),
        )
    raise ValueError(f"payload does not describe a protocol response: kind={kind!r}")


def dumps_request(request: Request) -> str:
    """Serialise a request to its JSON wire form.

    Raises
    ------
    TypeError
        If *request* is not a protocol request.
    """
    return serialization.dumps(request_to_payload(request))


def loads_request(text: str) -> Request:
    """Parse a request from its JSON wire form.

    Raises
    ------
    ValueError
        If *text* is not JSON (``json.JSONDecodeError`` is a subclass) or
        does not describe a protocol request.
    """
    return request_from_payload(serialization.loads(text))


def dumps_response(response: Response) -> str:
    """Serialise a response to its JSON wire form.

    Raises
    ------
    TypeError
        If *response* is not a protocol response.
    """
    return serialization.dumps(response_to_payload(response))


def loads_response(text: str) -> Response:
    """Parse a response from its JSON wire form.

    Raises
    ------
    ValueError
        If *text* is not JSON (``json.JSONDecodeError`` is a subclass) or
        does not describe a protocol response.
    """
    return response_from_payload(serialization.loads(text))
