"""Micro-batching service frontend: the typed front door of the fleet API.

The :class:`ServiceFrontend` accepts :mod:`repro.service.protocol` requests
and wraps every dispatch in middleware:

* **validation** — only protocol request types are routed;
* **telemetry** — per-kind latency timers and request/error counters;
* **error mapping** — exceptions become typed
  :class:`~repro.service.protocol.ErrorResponse`\\ s instead of propagating,
  so one bad request in a batch never poisons its neighbours;
* **per-user serialization** — requests touching the same user are applied
  under that user's lock, keeping read-modify-write operations (enroll,
  drift retrain) safe under concurrent submission.

Its distinguishing feature is **micro-batching**: consecutive
:class:`~repro.service.protocol.AuthenticateRequest`\\ s in one
:meth:`ServiceFrontend.submit_many` call are *coalesced* into a single
vectorized :func:`~repro.core.scoring.score_requests` pass — one fused
projection over the whole fleet batch for affine models (the paper's
kernel-ridge configuration), instead of one scoring call per request — and
the responses are fanned back out in request order.  Windows whose requests
carry no device-reported contexts are labelled inside the same batched pass
by the registry-published context detector.

The coalesced pass reuses the stacked model parameters across flushes
through a :class:`~repro.core.scoring.FusedStackCache` keyed by the serving
model set, invalidated whenever the model registry's generation moves
(publish / rollback / detector publish).

:class:`MicroBatchQueue` adds the asynchronous variant: concurrent callers
enqueue single requests and receive futures, while a background worker
drains the queue into coalesced ``submit_many`` batches.  Its admission
control bounds the pending-request depth, rejecting (with a typed
:class:`~repro.service.protocol.ThrottledResponse`) or blocking — the
``overflow`` policy — once the bound is hit, and records every request's
time-in-queue.
"""

from __future__ import annotations

import queue
import threading
import weakref
from concurrent.futures import Future
from itertools import count
from time import monotonic, perf_counter
from typing import Sequence

import numpy as np

from repro.core.scoring import (
    CONTEXT_CODES,
    FusedStackCache,
    offsets_from_lengths,
    score_requests,
    score_stacked,
)
from repro.service.gateway import AuthenticationGateway, PlaneMismatchError
from repro.service.protocol import (
    AuthenticateColumns,
    AuthenticateRequest,
    AuthenticationResponse,
    ColumnarAuthResult,
    ErrorResponse,
    Request,
    Response,
    ThrottledResponse,
    is_control_plane,
    is_data_plane,
    request_kind,
)
from repro.service.telemetry import TelemetryHub
from repro.service.tracing import SPAN_FUSED_PASS, SPAN_QUEUE_WAIT


class ServiceFrontend:
    """Validates, routes and micro-batches protocol requests to a gateway.

    Parameters
    ----------
    gateway:
        Optional pre-configured backend gateway (a fresh one is created
        when omitted).
    telemetry:
        Optional telemetry hub for frontend metrics; defaults to the
        gateway's hub so frontend and backend metrics land in one snapshot.
    stack_cache:
        Optional :class:`~repro.core.scoring.FusedStackCache` reused across
        coalesced flushes (a fresh one is created when omitted).  The cache
        is cleared automatically whenever the gateway registry's
        :attr:`~repro.service.registry.ModelRegistry.generation` moves
        (publish, rollback, detector publish), so stale stacks never
        accumulate after a retrain.
    """

    def __init__(
        self,
        gateway: AuthenticationGateway | None = None,
        telemetry: TelemetryHub | None = None,
        stack_cache: FusedStackCache | None = None,
    ) -> None:
        self.gateway = gateway if gateway is not None else AuthenticationGateway()
        self.telemetry = telemetry if telemetry is not None else self.gateway.telemetry
        self.stack_cache = stack_cache if stack_cache is not None else FusedStackCache()
        self._stack_generation = self.gateway.registry.generation
        # Set by the transport / fleet when request tracing is enabled;
        # ``None`` keeps the scoring hot path byte-identical to untraced.
        self.tracer = None
        # Monotonic flush ids tag which coalesced pass served each traced
        # request (batch-membership attribution across concurrent flushes).
        self._flush_ids = count(1)
        # Weak-valued, so the table stays bounded by *in-flight* users
        # rather than growing one entry per user id ever seen (including
        # attacker-controlled ids that only ever produce ErrorResponses):
        # callers hold a strong reference to their lock for the duration of
        # a dispatch, so concurrent requests for one user still share one
        # lock, and entries vanish once no request is using them.
        self._locks: "weakref.WeakValueDictionary[str, threading.Lock]" = (
            weakref.WeakValueDictionary()
        )
        self._locks_guard = threading.Lock()

    # ------------------------------------------------------------------ #
    # middleware plumbing
    # ------------------------------------------------------------------ #

    def _lock_for(self, user_id: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(user_id)
            if lock is None:
                lock = threading.Lock()
                self._locks[user_id] = lock
            return lock

    def _refresh_stack_cache(self) -> None:
        """Drop cached fused stacks once the registry's generation moved.

        A registry change (publish / rollback / detector publish) may have
        retired some served models; clearing keeps the cache holding only
        model sets that can still be served.
        """
        generation = self.gateway.registry.generation
        if generation != self._stack_generation:
            self.stack_cache.clear()
            self._stack_generation = generation

    def _error(self, kind: str, error: Exception, user_id: str | None) -> ErrorResponse:
        self.telemetry.increment("frontend.errors")
        return ErrorResponse(
            request_kind=kind,
            error=type(error).__name__,
            message=str(error),
            user_id=user_id,
        )

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> Response:
        """Dispatch one protocol request through the full middleware stack.

        Returns
        -------
        Response
            The request's typed response; backend failures come back as
            :class:`~repro.service.protocol.ErrorResponse`, they do not
            raise.

        Raises
        ------
        TypeError
            If *request* is not a protocol request.
        """
        return self.submit_many([request])[0]

    def submit_control(self, request: Request) -> Response:
        """Dispatch one control-plane request through the middleware stack.

        The admin door: same telemetry / error-mapping / per-user-lock
        middleware as :meth:`submit`, but restricted to the control plane's
        typed request set — the v2 admin endpoint dispatches through here,
        so a data-plane operation can never ride in on it.

        Raises
        ------
        PlaneMismatchError
            If *request* is a data-plane operation.
        TypeError
            If *request* is not a protocol request.
        """
        if not is_control_plane(request):
            request_kind(request)  # raises TypeError on non-protocol input
            raise PlaneMismatchError(request, plane="control", expected="data")
        return self._submit_one(request)

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        """Dispatch a batch of requests, coalescing authenticate runs.

        Requests are applied in order; every maximal run of consecutive
        :class:`AuthenticateRequest`\\ s is scored in one coalesced
        vectorized pass.  Each request independently maps to its response
        (or :class:`ErrorResponse`), in the same order as submitted.

        Raises
        ------
        TypeError
            If any entry is not a protocol request (checked up front, so a
            bad entry never fails its neighbours mid-batch).
        """
        for request in requests:
            request_kind(request)  # raises TypeError on non-protocol input
        responses: list[Response | None] = [None] * len(requests)
        index = 0
        while index < len(requests):
            if isinstance(requests[index], AuthenticateRequest):
                end = index
                while end < len(requests) and isinstance(
                    requests[end], AuthenticateRequest
                ):
                    end += 1
                responses[index:end] = self._authenticate_coalesced(
                    requests[index:end]  # type: ignore[arg-type]
                )
                index = end
            else:
                responses[index] = self._submit_one(requests[index])
                index += 1
        return responses  # type: ignore[return-value]

    def _submit_one(self, request: Request) -> Response:
        kind = request_kind(request)
        user_id = getattr(request, "user_id", None)
        self.telemetry.increment("frontend.requests")
        with self.telemetry.timer(f"frontend.{kind}"):
            try:
                if user_id is not None:
                    with self._lock_for(user_id):
                        return self.gateway.handle(request)
                return self.gateway.handle(request)
            except Exception as error:
                return self._error(kind, error, user_id)

    # ------------------------------------------------------------------ #
    # the columnar (zero-copy) authenticate pass
    # ------------------------------------------------------------------ #

    def submit_columns(self, columns: AuthenticateColumns) -> ColumnarAuthResult:
        """Dispatch a columnar authenticate batch through the middleware stack.

        The zero-copy twin of submitting a run of
        :class:`~repro.service.protocol.AuthenticateRequest`\\ s through
        :meth:`submit_many`: same telemetry, same per-user locks, same
        error isolation (a request that cannot be served answers a typed
        :class:`~repro.service.protocol.ErrorResponse` in the result's
        sparse error map without costing its neighbours) — but the feature
        block travels straight from the wire decode into the fused scoring
        pass (:func:`~repro.core.scoring.score_stacked`) with no
        per-request protocol objects anywhere.  Decisions are bit-for-bit
        identical to the per-request path.

        Raises
        ------
        TypeError
            If *columns* is not an
            :class:`~repro.service.protocol.AuthenticateColumns`.
        """
        if not isinstance(columns, AuthenticateColumns):
            raise TypeError(
                f"submit_columns expects AuthenticateColumns, got "
                f"{type(columns).__name__}"
            )
        self.telemetry.increment("frontend.requests", columns.n_requests)
        with self.telemetry.timer("frontend.authenticate"):
            locks = [self._lock_for(user) for user in sorted(set(columns.user_ids))]
            for lock in locks:
                lock.acquire()
            try:
                return self._score_columns(columns)
            finally:
                for lock in reversed(locks):
                    lock.release()

    def _score_columns(self, columns: AuthenticateColumns) -> ColumnarAuthResult:
        # The columnar batch was rebuilt from wire bytes, so its trace (if
        # any) travels as an id field rather than an object binding.
        tracer = self.tracer
        trace = tracer.lookup(columns.trace_id) if tracer is not None else None
        n_requests = columns.n_requests
        user_ids = columns.user_ids
        lengths = columns.lengths
        offsets = offsets_from_lengths(lengths)
        errors: dict[int, ErrorResponse] = {}

        # 1. Context detection over the WHOLE block in one vectorized pass
        #    when the frame carries no device-reported contexts; if the
        #    shared pass fails, fall back per request (on block slices) so
        #    only the offending requests are rejected — mirroring the
        #    object path.
        codes = columns.context_codes
        if codes is None:
            try:
                codes = self.gateway.detect_context_codes(columns.features)
            except Exception:
                codes = np.zeros(columns.n_windows, dtype=np.int8)
                for index in range(n_requests):
                    start, stop = int(offsets[index]), int(offsets[index + 1])
                    try:
                        codes[start:stop] = self.gateway.detect_context_codes(
                            columns.features[start:stop]
                        )
                    except Exception as error:
                        errors[index] = self._error(
                            "authenticate", error, user_ids[index]
                        )

        # 2. Resolve each surviving request's served scorer; a missing
        #    model rejects that request alone.
        live: list[int] = []
        scorers = []
        for index in range(n_requests):
            if index in errors:
                continue
            try:
                scorer = self.gateway.scorer_for(
                    user_ids[index], columns.version_for(index)
                )
            except Exception as error:
                errors[index] = self._error("authenticate", error, user_ids[index])
                continue
            live.append(index)
            scorers.append(scorer)

        scored_lengths = np.zeros(n_requests, dtype=np.intp)
        model_versions = np.zeros(n_requests, dtype=np.int64)
        if not live:
            return ColumnarAuthResult(
                user_ids=user_ids,
                scores=np.empty(0),
                accepted=np.empty(0, dtype=bool),
                model_context_codes=np.empty(0, dtype=np.int8),
                lengths=scored_lengths,
                model_versions=model_versions,
                errors=errors,
            )

        if len(live) == n_requests:
            # The hot common case: every request survives, so the wire
            # block feeds the fused pass as-is — zero copies.
            stacked, live_lengths, live_codes = columns.features, lengths, codes
        else:
            keep = np.zeros(columns.n_windows, dtype=bool)
            for index in live:
                keep[offsets[index] : offsets[index + 1]] = True
            stacked = columns.features[keep]
            live_lengths = lengths[live]
            live_codes = codes[keep]

        # 3. One coalesced scoring pass over every surviving request; if
        #    the shared pass fails (e.g. one request's rows do not match
        #    its model's width), score each request individually so one
        #    bad request cannot poison its neighbours.
        self._refresh_stack_cache()
        hits, misses = self.stack_cache.hits, self.stack_cache.misses
        fused_started = perf_counter() if trace is not None else 0.0
        fused = True
        try:
            with self.telemetry.timer("authenticate"):
                stacked_result = score_stacked(
                    scorers, stacked, live_lengths, live_codes, self.stack_cache
                )
        except Exception:
            fused = False
            scores, accepted, model_codes = self._score_columns_fallback(
                live,
                scorers,
                stacked,
                live_lengths,
                live_codes,
                user_ids,
                errors,
                scored_lengths,
                model_versions,
            )
        else:
            scores = stacked_result.scores
            accepted = stacked_result.accepted
            model_codes = stacked_result.model_context_codes
            scored_lengths[live] = live_lengths
            model_versions[live] = stacked_result.model_versions
            self.telemetry.increment("frontend.coalesced_batches")
            self.telemetry.increment("frontend.coalesced_windows", len(scores))
        cache_hits = self.stack_cache.hits - hits
        cache_misses = self.stack_cache.misses - misses
        self.telemetry.increment("frontend.stack_cache.hits", cache_hits)
        self.telemetry.increment("frontend.stack_cache.misses", cache_misses)
        if trace is not None:
            trace.add_span(
                SPAN_FUSED_PASS,
                perf_counter() - fused_started,
                flush_id=next(self._flush_ids),
                batch_size=len(live),
                windows=int(len(scores)),
                coalesced=fused,
                cache_hits=cache_hits,
                cache_misses=cache_misses,
            )
        self.gateway.record_decision_counts(
            len(scores), int(np.count_nonzero(accepted))
        )
        return ColumnarAuthResult(
            user_ids=user_ids,
            scores=scores,
            accepted=accepted,
            model_context_codes=model_codes,
            lengths=scored_lengths,
            model_versions=model_versions,
            errors=errors,
        )

    def _score_columns_fallback(
        self,
        live: list[int],
        scorers: list,
        stacked: np.ndarray,
        live_lengths: np.ndarray,
        live_codes: np.ndarray,
        user_ids: Sequence[str],
        errors: dict[int, ErrorResponse],
        scored_lengths: np.ndarray,
        model_versions: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-request isolation path once the fused columnar pass failed."""
        live_offsets = offsets_from_lengths(live_lengths)
        kept_scores: list[np.ndarray] = []
        kept_accepted: list[np.ndarray] = []
        kept_codes: list[np.ndarray] = []
        for position, index in enumerate(live):
            start, stop = int(live_offsets[position]), int(live_offsets[position + 1])
            try:
                with self.telemetry.timer("authenticate"):
                    result = scorers[position].score(
                        stacked[start:stop], live_codes[start:stop]
                    )
            except Exception as error:
                errors[index] = self._error("authenticate", error, user_ids[index])
                continue
            kept_scores.append(result.scores)
            kept_accepted.append(result.accepted)
            kept_codes.append(
                np.fromiter(
                    (CONTEXT_CODES[context] for context in result.model_contexts),
                    dtype=np.int8,
                    count=len(result),
                )
            )
            scored_lengths[index] = len(result)
            model_versions[index] = result.model_version
        if not kept_scores:
            return np.empty(0), np.empty(0, dtype=bool), np.empty(0, dtype=np.int8)
        return (
            np.concatenate(kept_scores),
            np.concatenate(kept_accepted),
            np.concatenate(kept_codes),
        )

    # ------------------------------------------------------------------ #
    # the coalesced authenticate pass
    # ------------------------------------------------------------------ #

    def _authenticate_coalesced(
        self, batch: Sequence[AuthenticateRequest]
    ) -> list[Response]:
        self.telemetry.increment("frontend.requests", len(batch))
        with self.telemetry.timer("frontend.authenticate"):
            locks = [self._lock_for(user) for user in sorted({r.user_id for r in batch})]
            for lock in locks:
                lock.acquire()
            try:
                return self._score_batch(batch)
            finally:
                for lock in reversed(locks):
                    lock.release()

    def _score_batch(self, batch: Sequence[AuthenticateRequest]) -> list[Response]:
        # Object requests carry traces by identity binding (they cross the
        # micro-batch queue as the same frozen object).
        tracer = self.tracer
        traces = None
        if tracer is not None:
            traces = [tracer.trace_for(request) for request in batch]
            if not any(trace is not None for trace in traces):
                traces = None
        responses: list[Response | None] = [None] * len(batch)

        # 1. Context detection for every request that did not report
        #    contexts, in ONE vectorized detector pass over all their rows
        #    (emitting int context codes — the hot path never builds enum
        #    tuples).  If the shared pass fails (e.g. one request's
        #    malformed feature width breaks the stack), fall back to
        #    per-request detection so only the offending requests are
        #    rejected.
        detected: dict[int, np.ndarray] = {}
        needing = [index for index, request in enumerate(batch) if request.contexts is None]
        if needing:
            rows = [batch[index].features for index in needing]
            try:
                codes = self.gateway.detect_context_codes(np.vstack(rows))
            except Exception:
                for index in needing:
                    try:
                        detected[index] = self.gateway.detect_context_codes(
                            batch[index].features
                        )
                    except Exception as error:
                        responses[index] = self._error(
                            "authenticate", error, batch[index].user_id
                        )
            else:
                offset = 0
                for index, request_rows in zip(needing, rows):
                    detected[index] = codes[offset : offset + len(request_rows)]
                    offset += len(request_rows)

        # 2. Resolve each remaining request's served scorer; a missing
        #    model rejects that request alone.
        live: list[int] = []
        scorers, features_list, contexts_list = [], [], []
        for index, request in enumerate(batch):
            if responses[index] is not None:
                continue
            try:
                scorer = self.gateway.scorer_for(request.user_id, request.version)
            except Exception as error:
                responses[index] = self._error("authenticate", error, request.user_id)
                continue
            live.append(index)
            scorers.append(scorer)
            features_list.append(request.features)
            contexts_list.append(
                detected[index] if request.contexts is None else request.context_codes
            )

        # 3. One coalesced scoring pass over every surviving request; the
        #    "authenticate" latency recorder keeps measuring backend scoring
        #    time exactly as the per-request gateway path does.  If the
        #    shared pass fails (e.g. one request's rows do not match its
        #    model's width), score each request individually so one bad
        #    request cannot poison its neighbours.
        if live:
            # Mirrors score_requests' own fusibility condition: mixed
            # feature widths make it score per request with no fusion, so
            # the coalesced.* counters must not claim those windows.
            coalesced = (
                len({features.shape[1] for features in features_list if len(features)})
                <= 1
            )
            self._refresh_stack_cache()
            hits, misses = self.stack_cache.hits, self.stack_cache.misses
            fused_started = perf_counter() if traces is not None else 0.0
            try:
                with self.telemetry.timer("authenticate"):
                    results = score_requests(
                        scorers, features_list, contexts_list, self.stack_cache
                    )
            except Exception:
                coalesced = False
                results = []
                for position, index in enumerate(live):
                    try:
                        with self.telemetry.timer("authenticate"):
                            results.append(
                                scorers[position].score(
                                    features_list[position], contexts_list[position]
                                )
                            )
                    except Exception as error:
                        results.append(None)
                        responses[index] = self._error(
                            "authenticate", error, batch[index].user_id
                        )
            if coalesced:
                self.telemetry.increment("frontend.coalesced_batches")
            cache_hits = self.stack_cache.hits - hits
            cache_misses = self.stack_cache.misses - misses
            self.telemetry.increment("frontend.stack_cache.hits", cache_hits)
            self.telemetry.increment("frontend.stack_cache.misses", cache_misses)
            if traces is not None:
                fused_s = perf_counter() - fused_started
                flush_id = next(self._flush_ids)
                for index in live:
                    request_trace = traces[index]
                    if request_trace is not None:
                        request_trace.add_span(
                            SPAN_FUSED_PASS,
                            fused_s,
                            flush_id=flush_id,
                            batch_size=len(live),
                            coalesced=coalesced,
                            cache_hits=cache_hits,
                            cache_misses=cache_misses,
                        )
            for index, result in zip(live, results):
                if result is None:
                    continue
                self.gateway.record_authentication(result)
                if coalesced:
                    # The coalesced.* counters measure fusion specifically;
                    # windows scored by the per-request fallback still count
                    # in auth.* but not here.
                    self.telemetry.increment("frontend.coalesced_windows", len(result))
                responses[index] = AuthenticationResponse(
                    user_id=batch[index].user_id, result=result
                )
        return responses  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# asynchronous micro-batching queue
# --------------------------------------------------------------------- #

_SENTINEL = object()


class MicroBatchQueue:
    """Coalesces concurrently submitted requests into frontend batches.

    Callers :meth:`submit` individual protocol requests and receive
    :class:`~concurrent.futures.Future`\\ s; a background worker drains the
    queue — waiting at most ``max_delay_s`` after the first pending request
    and taking at most ``max_batch`` requests — and dispatches each slice
    through :meth:`ServiceFrontend.submit_many`, where consecutive
    authenticate requests coalesce into single vectorized passes.

    **Admission control.**  ``max_depth`` bounds how many accepted requests
    may be pending at once; without it a slow backend lets callers enqueue
    unbounded work (and memory).  When the bound is hit, the ``overflow``
    policy decides what a new submission does:

    * ``"reject"`` (default) — the returned future resolves immediately to
      a typed :class:`~repro.service.protocol.ThrottledResponse` carrying
      the queue state and a retry hint; nothing is enqueued.
    * ``"block"`` — the submitting thread waits until the worker drains a
      slot (or the queue stops, which raises ``RuntimeError``), applying
      backpressure to the caller instead of the queue.

    Every dispatched request's time-in-queue lands in the frontend
    telemetry's ``frontend.queue_wait`` latency recorder; rejections count
    in the ``frontend.throttled`` counter.

    Use as a context manager, or call :meth:`start`/:meth:`stop`.

    Parameters
    ----------
    frontend:
        The frontend whose :meth:`~ServiceFrontend.submit_many` dispatches
        each drained slice (and whose telemetry hub records queue metrics).
    max_batch:
        Most requests dispatched in one slice (>= 1).
    max_delay_s:
        Longest the worker waits after the first pending request before
        dispatching a partial slice (>= 0).
    max_depth:
        Bound on pending (accepted but not yet dispatched) requests;
        ``None`` (default) keeps the queue unbounded.
    overflow:
        ``"reject"`` or ``"block"`` — what :meth:`submit` does when
        ``max_depth`` pending requests already wait.

    Raises
    ------
    ValueError
        If any knob is out of range or ``overflow`` names no policy.
    """

    #: Valid ``overflow`` policies.
    OVERFLOW_POLICIES = ("reject", "block")

    def __init__(
        self,
        frontend: ServiceFrontend,
        max_batch: int = 256,
        max_delay_s: float = 0.005,
        max_depth: int | None = None,
        overflow: str = "reject",
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0.0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 (or None), got {max_depth}")
        if overflow not in self.OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {self.OVERFLOW_POLICIES}, got {overflow!r}"
            )
        self.frontend = frontend
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.max_depth = max_depth
        self.overflow = overflow
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._worker: threading.Thread | None = None
        # submit() enqueues under this lock and stop() flips _closed under
        # it before posting the sentinel, so every accepted request is
        # ordered ahead of the sentinel and gets processed — a concurrent
        # submit/stop race can never strand a future unresolved.
        self._submit_guard = threading.Lock()
        # Pending-request count, guarded by its own condition: the worker
        # decrements (and wakes blocked submitters) without ever touching
        # the submit guard, which stop() holds while joining the worker.
        self._depth_cond = threading.Condition()
        self._depth = 0
        self._closed = True

    @property
    def depth(self) -> int:
        """Accepted requests still waiting to be dispatched."""
        with self._depth_cond:
            return self._depth

    # ------------------------------------------------------------------ #

    def start(self) -> "MicroBatchQueue":
        """Start the background batching worker (idempotent).

        Runs entirely under the submit guard, so concurrent start/stop
        calls serialize: a start can neither observe a worker that a
        racing stop is about to join (and wrongly report a dead queue as
        running) nor double-spawn workers.
        """
        with self._submit_guard:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._run, name="micro-batch-queue", daemon=True
                )
                self._closed = False
                self._worker.start()
        return self

    def stop(self) -> None:
        """Drain pending requests and stop the worker.

        Also serialized under the submit guard; the worker never takes the
        guard, so joining it while holding the guard cannot deadlock.
        """
        with self._submit_guard:
            worker = self._worker
            if worker is not None and worker.is_alive():
                if not self._closed:
                    self._closed = True
                    self._queue.put(_SENTINEL)
                # Submitters blocked on a full queue must observe the close
                # and bail out instead of waiting for capacity forever.
                with self._depth_cond:
                    self._depth_cond.notify_all()
                worker.join()
            self._closed = True
            self._worker = None

    def __enter__(self) -> "MicroBatchQueue":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> "Future[Response]":
        """Enqueue one request; the future resolves to its response.

        Non-protocol objects are rejected here, synchronously, so an
        invalid submission can never reach a batch slice and fail its
        neighbours' futures.  When ``max_depth`` pending requests already
        wait, the configured ``overflow`` policy applies: ``"reject"``
        resolves the returned future immediately to a
        :class:`~repro.service.protocol.ThrottledResponse`, ``"block"``
        waits for a free slot.

        Returns
        -------
        concurrent.futures.Future
            Resolves to the request's protocol response (which may be a
            :class:`~repro.service.protocol.ThrottledResponse` under the
            reject policy).

        Raises
        ------
        TypeError
            If *request* is not a protocol request, or is a control-plane
            operation — the queue admits only the hot data path (enroll /
            authenticate / drift-report); admin operations dispatch through
            :meth:`ServiceFrontend.submit_control`.
        RuntimeError
            If the queue is not running, or stops while this submission is
            blocked waiting for capacity.
        """
        kind = request_kind(request)  # raises TypeError on non-protocol input
        if not is_data_plane(request):
            raise TypeError(
                f"the micro-batch queue admits only data-plane requests "
                f"(enroll / authenticate / drift-report); {kind!r} is a "
                "control-plane operation — dispatch it through "
                "ServiceFrontend.submit_control()"
            )
        while True:
            with self._submit_guard:
                if self._closed or self._worker is None or not self._worker.is_alive():
                    raise RuntimeError(
                        "MicroBatchQueue is not running; call start() first"
                    )
                with self._depth_cond:
                    if self.max_depth is None or self._depth < self.max_depth:
                        self._depth += 1
                        future: "Future[Response]" = Future()
                        self._queue.put((request, future, monotonic()))
                        return future
                    if self.overflow == "reject":
                        self.frontend.telemetry.increment("frontend.throttled")
                        throttled: "Future[Response]" = Future()
                        throttled.set_result(
                            ThrottledResponse(
                                request_kind=kind,
                                reason="queue-full",
                                queue_depth=self._depth,
                                max_depth=self.max_depth,
                                retry_after_s=self.max_delay_s,
                                user_id=getattr(request, "user_id", None),
                            )
                        )
                        return throttled
            # Block policy: wait for capacity OUTSIDE the submit guard so a
            # concurrent stop() (which holds the guard while joining the
            # worker) can still proceed and wake us up to fail cleanly.
            with self._depth_cond:
                self._depth_cond.wait_for(
                    lambda: self._closed
                    or self.max_depth is None
                    or self._depth < self.max_depth
                )

    def _release_slot(self) -> None:
        """Free one depth slot and wake a submitter blocked on capacity."""
        with self._depth_cond:
            self._depth -= 1
            self._depth_cond.notify()

    def _run(self) -> None:
        stopping = False
        while not stopping:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            self._release_slot()
            pending = [item]
            deadline = monotonic() + self.max_delay_s
            while len(pending) < self.max_batch:
                remaining = deadline - monotonic()
                if remaining <= 0.0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SENTINEL:
                    stopping = True
                    break
                self._release_slot()
                pending.append(item)
            # Claim every future before dispatching: one that was cancelled
            # while pending is dropped here, and can no longer be cancelled
            # mid-dispatch — so the set_result below cannot raise and kill
            # the worker, stranding the other futures in the slice.
            claimed = [
                (request, future, enqueued_at)
                for request, future, enqueued_at in pending
                if future.set_running_or_notify_cancel()
            ]
            if not claimed:
                continue
            drained_at = monotonic()
            tracer = self.frontend.tracer
            for request, _, enqueued_at in claimed:
                wait_s = drained_at - enqueued_at
                self.frontend.telemetry.record("frontend.queue_wait", wait_s)
                if tracer is not None:
                    trace = tracer.trace_for(request)
                    if trace is not None:
                        trace.add_span(
                            SPAN_QUEUE_WAIT, wait_s, batch_size=len(claimed)
                        )
            try:
                responses = self.frontend.submit_many(
                    [request for request, _, _ in claimed]
                )
            except Exception as error:  # defensive: submit_many maps errors
                for _, future, _ in claimed:
                    future.set_exception(error)
            else:
                for (_, future, _), response in zip(claimed, responses):
                    future.set_result(response)
