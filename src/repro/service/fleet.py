"""Fleet-scale lifecycle simulation against the service frontend.

Drives hundreds of simulated users through the full SmarterYou lifecycle —
enroll → continuous authentication → masquerade attack → behavioural drift →
retrain — entirely by issuing typed :mod:`repro.service.protocol` requests
over the v2 enveloped API (an authenticated ``fleet-operator`` caller
whose envelopes dispatch through the micro-batching
:class:`~repro.service.frontend.ServiceFrontend`), and reports counters,
accept/reject rates and latency statistics from the service telemetry.  Each authentication phase submits the whole fleet's
requests in one batch, so they coalesce into a single fused scoring pass;
by default the fleet also trains and publishes the user-agnostic context
detector, and authentication requests carry *no* device-reported contexts —
the service labels every window itself inside the same batched pass.

Users are synthesised directly in feature space: each user is a Gaussian
cluster with a per-context mean offset, which preserves the structure the
authentication models exploit (users are separable, contexts shift the
distribution, drift moves the cluster) while keeping a 500-user simulation
fast enough for the test suite.  The sensor-accurate single-user pipeline
(:class:`~repro.core.system.SmarterYou`) remains the reference path for the
paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.devices.cloud import AuthenticationServer
from repro.devices.store import FeatureStore
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext
from repro.service.envelope import (
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    CallerRegistry,
    EnvelopeChannel,
    EnvelopeProcessor,
)
from repro.service.frontend import ServiceFrontend
from repro.service.gateway import AuthenticationGateway
from repro.service.protocol import (
    AuthenticateRequest,
    DriftReport,
    EnrollRequest,
    ErrorResponse,
    Request,
    Response,
)
from repro.service.registry import ModelRegistry
from repro.utils.rng import RandomState, derive_rng


@runtime_checkable
class RequestChannel(Protocol):
    """Anything protocol requests can be submitted through.

    Satisfied by the in-process
    :class:`~repro.service.frontend.ServiceFrontend` and by the HTTP
    :class:`~repro.service.transport.ServiceClient`, so the fleet lifecycle
    runs identically in process and over real sockets.
    """

    def submit(self, request: Request) -> Response:
        """Dispatch one protocol request."""
        ...

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        """Dispatch a batch of protocol requests, responses in order."""
        ...


@dataclass(frozen=True)
class FleetConfig:
    """Scale and behaviour knobs of the simulated fleet.

    Attributes
    ----------
    n_users:
        Fleet size (the acceptance target is 500).
    n_features:
        Dimensionality of the synthetic authentication vectors.
    enroll_windows_per_context:
        Windows each user uploads per context during enrollment (the
        server needs at least 10 per trained context).
    auth_windows:
        Windows per user in the continuous-authentication phase.
    attack_windows:
        Windows each masquerading attacker replays against a victim.
    drift_fraction:
        Fraction of users whose behaviour drifts after deployment.
    drift_windows_per_context:
        Fresh windows a drifted user uploads when reporting drift.
    drift_shift:
        How far (in feature units) drift moves a user's cluster mean.
    user_spread:
        Standard deviation of per-user cluster means (between users).
    window_noise:
        Standard deviation of windows around their user's mean (within
        user); the ratio spread/noise controls task difficulty.
    max_negative_windows:
        Per-training-round cap on sampled other-user windows.  Kept near
        the paper's ~2.5:1 negative:positive ratio; the seed default of
        2000 would swamp a 12-window enrollment and reject everyone.
    store_capacity_per_context:
        Ring-buffer capacity per (user, context); small enough that drift
        uploads displace most pre-drift windows, so retraining tracks the
        new behaviour.
    store_shards:
        Shards in the gateway's feature store.
    server_side_contexts:
        When true (default), the fleet trains and publishes the
        user-agnostic context detector during enrollment, and every
        authentication request omits device-reported contexts — the
        service detects them inside the coalesced scoring pass.  When
        false, requests carry ground-truth contexts (the seed behaviour).
    detector_training_windows:
        Cap on labelled enrollment windows used to train the context
        detector (keeps detector training sub-linear in fleet size).
    seed:
        Master seed; every phase derives its own stream from it.
    """

    n_users: int = 500
    n_features: int = 12
    enroll_windows_per_context: int = 12
    auth_windows: int = 10
    attack_windows: int = 8
    drift_fraction: float = 0.08
    drift_windows_per_context: int = 16
    drift_shift: float = 3.0
    user_spread: float = 2.0
    window_noise: float = 0.5
    max_negative_windows: int = 60
    store_capacity_per_context: int = 20
    store_shards: int = 16
    server_side_contexts: bool = True
    detector_training_windows: int = 4000
    seed: RandomState = 7

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ValueError("a fleet needs at least two users (negatives!)")
        if self.enroll_windows_per_context < 10:
            raise ValueError(
                "enroll_windows_per_context must be >= 10 (server minimum)"
            )
        if not 0.0 <= self.drift_fraction <= 1.0:
            raise ValueError("drift_fraction must be in [0, 1]")
        if self.detector_training_windows < 2:
            raise ValueError("detector_training_windows must be >= 2")


@dataclass
class SimulatedUser:
    """One synthetic fleet member: a Gaussian cluster per context."""

    user_id: str
    context_means: dict[CoarseContext, np.ndarray]
    drifted: bool = False

    def sample_windows(
        self,
        n_per_context: int,
        noise: float,
        rng: np.random.Generator,
        feature_names: list[str],
        contexts: tuple[CoarseContext, ...] = tuple(CoarseContext),
    ) -> FeatureMatrix:
        """Draw a labelled feature matrix of ``n_per_context`` windows each."""
        blocks, labels = [], []
        for context in contexts:
            mean = self.context_means[context]
            blocks.append(rng.normal(mean, noise, size=(n_per_context, len(mean))))
            labels.extend([context.value] * n_per_context)
        return FeatureMatrix(
            values=np.vstack(blocks),
            feature_names=list(feature_names),
            user_ids=[self.user_id] * len(labels),
            contexts=labels,
        )

    def apply_drift(self, shift: np.ndarray) -> None:
        """Translate every context cluster by *shift* (behavioural drift)."""
        for context in self.context_means:
            self.context_means[context] = self.context_means[context] + shift
        self.drifted = True


@dataclass
class FleetReport:
    """Aggregate outcome of one fleet lifecycle run."""

    n_users: int
    enrolled_users: int
    trained_versions: int
    legitimate_accept_rate: float
    attack_reject_rate: float
    drifted_users: int
    drifted_accept_rate_before_retrain: float
    drifted_accept_rate_after_retrain: float
    retrained_users: int
    total_windows_scored: int
    scoring_windows_per_second: float
    wall_clock_seconds: float
    telemetry: dict = field(default_factory=dict)

    def to_text(self) -> str:
        """Human-readable summary of the run."""
        lines = [
            f"fleet size                     : {self.n_users}",
            f"users enrolled + trained       : {self.enrolled_users}",
            f"model versions published       : {self.trained_versions}",
            f"legitimate accept rate         : {self.legitimate_accept_rate:6.1%}",
            f"masquerade reject rate         : {self.attack_reject_rate:6.1%}",
            f"drifted users                  : {self.drifted_users}",
            f"  accept rate before retrain   : {self.drifted_accept_rate_before_retrain:6.1%}",
            f"  accept rate after retrain    : {self.drifted_accept_rate_after_retrain:6.1%}",
            f"users retrained                : {self.retrained_users}",
            f"windows scored                 : {self.total_windows_scored}",
            f"scoring throughput             : {self.scoring_windows_per_second:,.0f} windows/s",
            f"wall clock                     : {self.wall_clock_seconds:.2f} s",
        ]
        return "\n".join(lines)


def _expect(response: Response) -> Response:
    """Unwrap a frontend response, surfacing ErrorResponses loudly."""
    if isinstance(response, ErrorResponse):
        raise RuntimeError(
            f"fleet request failed: {response.request_kind} for "
            f"{response.user_id!r} -> {response.error}: {response.message}"
        )
    return response


class FleetSimulator:
    """Runs the full multi-user lifecycle through the service front door.

    Parameters
    ----------
    config:
        Scale and behaviour knobs (a default 500-user config when omitted).
    gateway:
        Optional pre-configured backend gateway; created when omitted.
    frontend:
        Optional pre-configured frontend; must wrap *gateway* when both are
        given.
    channel:
        Optional :class:`RequestChannel` every protocol request is
        submitted through instead of the default — e.g. an HTTP
        :class:`~repro.service.transport.ServiceClient` pointed at a
        :class:`~repro.service.transport.ServiceHTTPServer` wrapping this
        simulator's frontend, which runs the whole lifecycle over real
        sockets (with ``codec="binary"`` every lifecycle phase ships as
        binary columnar frames — the fleet's batches are homogeneous, so
        nothing falls back to JSON).  When omitted, the fleet speaks the **v2 enveloped API**
        in process: a ``fleet-operator`` caller is provisioned in
        :attr:`callers` (its key in :attr:`api_key` — hand it to a
        :class:`~repro.service.transport.ServiceClient` to run the same
        lifecycle over the v2 endpoints) and every request travels through
        an :class:`~repro.service.envelope.EnvelopeChannel`.  Training
        rounds and registry queries still go through the local *gateway*
        (the simulator is the operator, not a device), so the gateway must
        be the same one a remote channel serves.
    tracer:
        Optional :class:`~repro.service.tracing.Tracer` wired through the
        in-process serving path (processor, frontend, gateway) so lifecycle
        requests export per-request trace events.
    registry_root:
        Optional directory for the simulator's own
        :class:`~repro.service.registry.ModelRegistry`: every trained
        bundle persists there as it is published, ready to be served by
        separate worker processes (``repro.service.cluster``).  Only valid
        when neither *gateway* nor *frontend* is supplied.

    Raises
    ------
    ValueError
        If *gateway* and *frontend* disagree.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        gateway: AuthenticationGateway | None = None,
        frontend: ServiceFrontend | None = None,
        channel: RequestChannel | None = None,
        tracer: Any | None = None,
        registry_root: str | Any | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        if registry_root is not None and (gateway is not None or frontend is not None):
            raise ValueError(
                "registry_root configures the simulator's own gateway; pass "
                "it only when neither gateway nor frontend is supplied"
            )
        if frontend is not None:
            if gateway is not None and gateway is not frontend.gateway:
                raise ValueError(
                    "conflicting gateway and frontend: the supplied frontend "
                    "wraps a different gateway; pass one or the other (or a "
                    "matching pair)"
                )
            gateway = frontend.gateway
        elif gateway is None:
            store = FeatureStore(
                n_shards=self.config.store_shards,
                capacity_per_context=self.config.store_capacity_per_context,
            )
            server = AuthenticationServer(
                store=store,
                seed=derive_rng(self.config.seed, "server"),
                max_other_users_windows=self.config.max_negative_windows,
                # The fleet's contexts differ by a shared mean offset, so a
                # linear detector matches the paper's forest on this data
                # while training in milliseconds even at 500 users (the
                # pure-NumPy forest would dominate the whole lifecycle).
                context_detector_factory=lambda: KernelRidgeClassifier(
                    ridge=1.0, kernel="linear", solver="auto"
                ),
            )
            # A persistence root makes every trained bundle (and detector)
            # land on disk as it is published, so N cluster worker
            # processes can each serve the exact same model snapshot the
            # simulator trained (ModelRegistry(root=...).load()) — the
            # basis of the cluster's bit-for-bit equivalence guarantee.
            gateway = AuthenticationGateway(
                server=server,
                registry=ModelRegistry(root=registry_root),
                min_windows_to_train=2 * self.config.enroll_windows_per_context,
            )
        self.gateway = gateway
        self.frontend = frontend if frontend is not None else ServiceFrontend(gateway)
        # The fleet is a v2 API caller: its requests travel in envelopes
        # under the fleet-operator credential (both scopes: the lifecycle
        # enrolls AND retrains).  The same registry/key serve a
        # ServiceHTTPServer + ServiceClient pair for the socket variant.
        self.callers = CallerRegistry(telemetry=self.frontend.telemetry)
        self.api_key = self.callers.register(
            "fleet-operator", (SCOPE_DATA_WRITE, SCOPE_ADMIN)
        )
        self.processor = EnvelopeProcessor(self.frontend, callers=self.callers)
        # One tracer spans the in-process serving path end to end: the
        # processor starts envelope traces, the frontend/gateway add their
        # stage spans to the same contexts.
        self.tracer = tracer
        if tracer is not None:
            self.processor.tracer = tracer
            self.frontend.tracer = tracer
            self.frontend.gateway.tracer = tracer
        self.channel: RequestChannel = (
            channel
            if channel is not None
            else EnvelopeChannel(self.processor, self.api_key)
        )
        self.feature_names = [f"f{i:02d}" for i in range(self.config.n_features)]
        self.users: list[SimulatedUser] = []

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #

    def build_users(self) -> list[SimulatedUser]:
        """Synthesise the fleet's per-user feature-space clusters."""
        config = self.config
        rng = derive_rng(config.seed, "fleet-population")
        # The moving context shifts every user by a shared offset, the way
        # real motion features move between stationary and moving usage.
        moving_offset = rng.normal(0.0, 1.0, size=config.n_features)
        users = []
        for index in range(config.n_users):
            base = rng.normal(0.0, config.user_spread, size=config.n_features)
            users.append(
                SimulatedUser(
                    user_id=f"fleet-user-{index:04d}",
                    context_means={
                        CoarseContext.STATIONARY: base,
                        CoarseContext.MOVING: base + moving_offset,
                    },
                )
            )
        self.users = users
        return users

    # ------------------------------------------------------------------ #
    # lifecycle phases
    # ------------------------------------------------------------------ #

    def enroll_fleet(self) -> int:
        """Phase 1: every user uploads enrollment windows, then trains.

        Uploads happen for the whole fleet before any training so that the
        negative pool (all *other* users) is fully populated, mirroring a
        deployed service where enrollment is rolling.  With
        ``server_side_contexts`` enabled the labelled enrollment windows
        also train the user-agnostic context detector, published through
        the model registry.
        """
        config = self.config
        rng = derive_rng(config.seed, "fleet-enroll")
        matrices = [
            user.sample_windows(
                config.enroll_windows_per_context,
                config.window_noise,
                rng,
                self.feature_names,
            )
            for user in self.users
        ]
        for response in self.channel.submit_many(
            [
                EnrollRequest(user_id=user.user_id, matrix=matrix, train=False)
                for user, matrix in zip(self.users, matrices)
            ]
        ):
            _expect(response)
        if config.server_side_contexts:
            self._train_context_detector(matrices)
        trained = 0
        for user in self.users:
            self.gateway.train(user.user_id)
            trained += 1
        return trained

    def _train_context_detector(self, matrices: list[FeatureMatrix]) -> int:
        """Train + publish the context detector from labelled enrollment data."""
        config = self.config
        pool = matrices[0]
        for matrix in matrices[1:]:
            if len(pool) >= config.detector_training_windows:
                break
            pool = pool.concatenate(matrix)
        if len(pool) > config.detector_training_windows:
            keep = config.detector_training_windows
            pool = FeatureMatrix(
                values=pool.values[:keep],
                feature_names=list(pool.feature_names),
                user_ids=list(pool.user_ids[:keep]),
                contexts=list(pool.contexts[:keep]),
            )
        return self.gateway.train_context_detector(pool)

    def _authenticate_requests(
        self, users: list[SimulatedUser], matrices: list[FeatureMatrix]
    ) -> list[AuthenticateRequest]:
        """Authentication requests for *users*, as the configured protocol.

        With server-side contexts the requests omit context labels (the
        service detects them); otherwise they carry the ground truth.
        """
        omit = self.config.server_side_contexts
        return [
            AuthenticateRequest(
                user_id=user.user_id,
                features=matrix.values,
                contexts=(
                    None
                    if omit
                    else tuple(CoarseContext(label) for label in matrix.contexts)
                ),
            )
            for user, matrix in zip(users, matrices)
        ]

    def authenticate_fleet(self, users: list[SimulatedUser] | None = None) -> float:
        """Phase 2: each user authenticates fresh windows of their own.

        The whole fleet's requests are submitted in one batch and coalesce
        into a single vectorized scoring pass.  Returns the fleet-wide
        legitimate accept rate.
        """
        config = self.config
        rng = derive_rng(config.seed, "fleet-auth")
        users = users if users is not None else self.users
        matrices = [
            user.sample_windows(
                max(1, config.auth_windows // 2),
                config.window_noise,
                rng,
                self.feature_names,
            )
            for user in users
        ]
        accepted = total = 0
        for response in self.channel.submit_many(
            self._authenticate_requests(users, matrices)
        ):
            result = _expect(response).result  # type: ignore[union-attr]
            accepted += result.n_accepted
            total += len(result)
        return accepted / total if total else 0.0

    def attack_fleet(self) -> float:
        """Phase 3: each user masquerades as the next one in the roster.

        Returns the fleet-wide attack reject rate (detection rate).
        """
        config = self.config
        rng = derive_rng(config.seed, "fleet-attack")
        victims = list(self.users)
        matrices = [
            self.users[(index + 1) % len(self.users)].sample_windows(
                max(1, config.attack_windows // 2),
                config.window_noise,
                rng,
                self.feature_names,
            )
            for index in range(len(self.users))
        ]
        rejected = total = 0
        for response in self.channel.submit_many(
            self._authenticate_requests(victims, matrices)
        ):
            result = _expect(response).result  # type: ignore[union-attr]
            rejected += len(result) - result.n_accepted
            total += len(result)
        return rejected / total if total else 0.0

    def drift_and_retrain(self) -> tuple[list[SimulatedUser], float, float]:
        """Phase 4: a fraction of users drift, re-auth, report, retrain.

        Returns the drifted users and their accept rates before and after
        retraining.
        """
        config = self.config
        rng = derive_rng(config.seed, "fleet-drift")
        n_drift = int(round(config.drift_fraction * len(self.users)))
        drifted = list(self.users[:n_drift])
        # Snapshot pre-drift means: a drift target must be another user's
        # *original* behaviour even when that user drifts too (e.g. with
        # drift_fraction close to 1).
        originals = [
            user.context_means[CoarseContext.STATIONARY].copy()
            for user in self.users
        ]
        for index, user in enumerate(drifted):
            # Drift moves the user towards the next user's behaviour (a
            # random direction would mostly stay inside the accepted
            # half-space of a linear model and never degrade acceptance).
            # index + 1 is never the user itself (the fleet has >= 2 users).
            direction = originals[(index + 1) % len(self.users)] - originals[index]
            norm = max(float(np.linalg.norm(direction)), 1e-12)
            user.apply_drift(direction * (config.drift_shift / norm))
        before = self.authenticate_fleet(drifted) if drifted else 0.0
        reports = [
            DriftReport(
                user_id=user.user_id,
                matrix=user.sample_windows(
                    config.drift_windows_per_context,
                    config.window_noise,
                    rng,
                    self.feature_names,
                ),
            )
            for user in drifted
        ]
        for response in self.channel.submit_many(reports):
            _expect(response)
        after = self.authenticate_fleet(drifted) if drifted else 0.0
        return drifted, before, after

    # ------------------------------------------------------------------ #

    def run(self) -> FleetReport:
        """Run the full lifecycle and assemble the fleet report."""
        start = perf_counter()
        self.build_users()
        enrolled = self.enroll_fleet()
        legitimate_rate = self.authenticate_fleet()
        attack_reject_rate = self.attack_fleet()
        drifted, before, after = self.drift_and_retrain()
        wall_clock = perf_counter() - start
        telemetry = self.gateway.snapshot()
        windows_scored = telemetry["counters"].get("auth.windows", 0)
        scoring_seconds = telemetry["latencies"].get("authenticate", {}).get(
            "total_s", 0.0
        )
        versions = sum(
            len(self.gateway.registry.versions(user.user_id)) for user in self.users
        )
        return FleetReport(
            n_users=len(self.users),
            enrolled_users=enrolled,
            trained_versions=versions,
            legitimate_accept_rate=legitimate_rate,
            attack_reject_rate=attack_reject_rate,
            drifted_users=len(drifted),
            drifted_accept_rate_before_retrain=before,
            drifted_accept_rate_after_retrain=after,
            retrained_users=len(drifted),
            total_windows_scored=windows_scored,
            scoring_windows_per_second=(
                windows_scored / scoring_seconds if scoring_seconds > 0 else 0.0
            ),
            wall_clock_seconds=wall_clock,
            telemetry=telemetry,
        )
