"""Fleet-scale authentication service layer (the paper's cloud server at scale).

The seed reproduction can enroll and score one user at a time; this package
is the serving subsystem implied by the SmarterYou architecture (Figure 1)
but absent from the paper's prototype:

* :mod:`repro.service.protocol` — typed request/response dataclasses with a
  lossless JSON wire codec (the transport-agnostic service contract), split
  into a hot **data plane** (enroll / authenticate / drift-report) and an
  admin **control plane** (rollback / snapshot / eviction / detector
  training);
* :mod:`repro.service.envelope` — the versioned (v2) API surface: frozen
  request :class:`~repro.service.envelope.Envelope`\\ s carrying
  ``api_version`` / ``request_id`` / idempotency key / caller credentials,
  a :class:`~repro.service.envelope.CallerRegistry` of hashed API keys and
  per-caller scopes, and the :class:`~repro.service.envelope.EnvelopeProcessor`
  that authorizes every envelope *before* it can reach the gateway;
* :mod:`repro.service.wirebin` — the binary columnar batch codec: whole
  data-plane batches framed as contiguous little-endian columns (one
  float64 block for every feature vector, int8 context codes) the server
  decodes with zero-copy ``np.frombuffer`` views straight into the fused
  scoring pass;
* :mod:`repro.service.transport` — the HTTP transport actually speaking
  those codecs over sockets: a stdlib threaded server exposing
  ``POST /v1/requests`` (legacy), ``POST /v2/requests`` (enveloped data
  plane, JSON or content-negotiated binary frames, chunked streaming
  uploads) and ``POST /v2/admin`` (enveloped control plane), plus
  ``/healthz`` and ``/metrics``, and a connection-pooling client speaking
  either codec;
* :mod:`repro.service.frontend` — the micro-batching front door: validates,
  routes and coalesces concurrent authenticate requests into single
  vectorized scoring passes (reusing fused parameter stacks across flushes
  via :class:`~repro.core.scoring.FusedStackCache`), with telemetry /
  error-mapping / per-user serialization middleware and admission-controlled
  queuing (:class:`~repro.service.frontend.MicroBatchQueue`, data plane
  only);
* :mod:`repro.service.gateway` — the backend dispatcher executing protocol
  requests against storage, training, registry and scoring, through its
  :class:`~repro.service.gateway.DataPlane` and
  :class:`~repro.service.gateway.ControlPlane`;
* :mod:`repro.service.registry` — a versioned model registry that persists
  and serves :class:`~repro.devices.cloud.TrainedModelBundle`\\ s (and the
  user-agnostic context detector) with rollback and eviction;
* :mod:`repro.service.fleet` — a fleet simulator driving hundreds of users
  through the full enroll → auth → attack → drift → retrain lifecycle over
  the v2 API;
* :mod:`repro.service.telemetry` — counters and latency statistics for all
  of the above;
* :mod:`repro.service.cluster` — the multi-process sharded serving
  cluster: a :class:`~repro.service.cluster.ShardRouter` consistent-hashing
  ``user_id`` to one of N :class:`~repro.service.cluster.WorkerPool` worker
  processes (each a full transport stack over its own registry slice),
  splitting/merging binary frames across shards in request order, sharing
  per-caller quotas fleet-wide via a file-backed
  :class:`~repro.service.envelope.SharedTokenBucket`, and merging every
  worker's telemetry into one Prometheus view;
* :mod:`repro.service.chaos` — fault injection for all of the above
  (credential churn, quota-file corruption, worker-crash storms) plus the
  typed-outcome grader the chaos suite uses to pin that every injected
  fault surfaces as a 401/403/429/503 or typed error — never a 500.

The storage and scoring engines live in the layers below —
:class:`~repro.devices.store.FeatureStore` in :mod:`repro.devices.store` and
:class:`~repro.core.scoring.BatchScorer` in :mod:`repro.core.scoring` — and
are re-exported here under their historical names.  The dependency graph is
strictly acyclic — store and scoring sit below the cloud server, which sits
below the core facade, with ``service`` on top — so this package imports
eagerly: no lazy-import workarounds remain.
"""

from repro.core.scoring import (
    BatchScorer,
    BatchScoreResult,
    FusedStackCache,
    score_fleet,
    score_requests,
    score_stacked,
)
from repro.service import wirebin
from repro.devices.store import ANY_CONTEXT, FeatureStore, RingBuffer, StoreStats
from repro.service.cluster import (
    HashRing,
    HedgePolicy,
    RetryPolicy,
    ShardRouter,
    ShardUnavailable,
    StaticEndpoints,
    WorkerPool,
)
from repro.service.envelope import (
    API_VERSION,
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    CallerRegistry,
    DeniedResponse,
    Envelope,
    EnvelopeChannel,
    EnvelopeProcessor,
    SealedResponse,
    SharedTokenBucket,
)
from repro.service.fleet import FleetConfig, FleetReport, FleetSimulator, RequestChannel
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.gateway import (
    AuthenticationGateway,
    ControlPlane,
    DataPlane,
    PlaneMismatchError,
)
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
    DetectorTrainRequest,
    DetectorTrainResponse,
    DrainShardRequest,
    DrainShardResponse,
    DriftReport,
    DriftResponse,
    EnrollRequest,
    EnrollResponse,
    ErrorResponse,
    EvictRequest,
    EvictResponse,
    RollbackRequest,
    RollbackResponse,
    SnapshotRequest,
    SnapshotResponse,
    ThrottledResponse,
)
from repro.service.registry import ModelRecord, ModelRegistry
from repro.service.telemetry import Counter, LatencyRecorder, TelemetryHub
from repro.service.transport import (
    DeadlineExceeded,
    ServiceClient,
    ServiceHTTPServer,
)

__all__ = [
    "ANY_CONTEXT",
    "API_VERSION",
    "AuthenticateRequest",
    "AuthenticationGateway",
    "AuthenticationResponse",
    "BatchScoreResult",
    "BatchScorer",
    "CallerRegistry",
    "ControlPlane",
    "Counter",
    "DataPlane",
    "DeadlineExceeded",
    "DeniedResponse",
    "DetectorTrainRequest",
    "DetectorTrainResponse",
    "DrainShardRequest",
    "DrainShardResponse",
    "DriftReport",
    "DriftResponse",
    "EnrollRequest",
    "EnrollResponse",
    "Envelope",
    "EnvelopeChannel",
    "EnvelopeProcessor",
    "ErrorResponse",
    "EvictRequest",
    "EvictResponse",
    "FeatureStore",
    "FleetConfig",
    "FleetReport",
    "FleetSimulator",
    "FusedStackCache",
    "HashRing",
    "HedgePolicy",
    "LatencyRecorder",
    "MicroBatchQueue",
    "ModelRecord",
    "ModelRegistry",
    "PlaneMismatchError",
    "RequestChannel",
    "RetryPolicy",
    "RingBuffer",
    "RollbackRequest",
    "RollbackResponse",
    "SCOPE_ADMIN",
    "SCOPE_DATA_WRITE",
    "SealedResponse",
    "ServiceClient",
    "ServiceFrontend",
    "ServiceHTTPServer",
    "ShardRouter",
    "ShardUnavailable",
    "SharedTokenBucket",
    "SnapshotRequest",
    "SnapshotResponse",
    "StaticEndpoints",
    "StoreStats",
    "TelemetryHub",
    "ThrottledResponse",
    "WorkerPool",
    "score_fleet",
    "score_requests",
    "score_stacked",
    "wirebin",
]
