"""Fleet-scale authentication service layer (the paper's cloud server at scale).

The seed reproduction can enroll and score one user at a time; this package
is the serving subsystem implied by the SmarterYou architecture (Figure 1)
but absent from the paper's prototype:

* :mod:`repro.service.store` — a sharded, capacity-bounded feature store
  holding per-(user, context) windows in preallocated NumPy ring buffers;
* :mod:`repro.service.registry` — a versioned model registry that persists
  and serves :class:`~repro.devices.cloud.TrainedModelBundle`\\ s with
  rollback;
* :mod:`repro.service.batch` — a vectorized batch scorer that authenticates
  many windows (and many users) in whole-matrix operations;
* :mod:`repro.service.gateway` — the request-level API
  (enroll / authenticate / report_drift) tying the pieces together;
* :mod:`repro.service.fleet` — a fleet simulator driving hundreds of users
  through the full enroll → auth → attack → drift → retrain lifecycle;
* :mod:`repro.service.telemetry` — counters and latency statistics for all
  of the above.

Submodules are imported lazily (PEP 562) so that low-level modules such as
:mod:`repro.devices.cloud` can depend on :mod:`repro.service.store` without
creating import cycles through this package ``__init__``.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "FeatureStore": "repro.service.store",
    "RingBuffer": "repro.service.store",
    "StoreStats": "repro.service.store",
    "ModelRegistry": "repro.service.registry",
    "ModelRecord": "repro.service.registry",
    "BatchScorer": "repro.service.batch",
    "BatchScoreResult": "repro.service.batch",
    "AuthenticationGateway": "repro.service.gateway",
    "EnrollResponse": "repro.service.gateway",
    "AuthenticationResponse": "repro.service.gateway",
    "DriftResponse": "repro.service.gateway",
    "FleetSimulator": "repro.service.fleet",
    "FleetConfig": "repro.service.fleet",
    "FleetReport": "repro.service.fleet",
    "TelemetryHub": "repro.service.telemetry",
    "Counter": "repro.service.telemetry",
    "LatencyRecorder": "repro.service.telemetry",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
