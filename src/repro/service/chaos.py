"""Fault injection for the serving path, and the vocabulary to grade it.

The chaos harness's contract (ROADMAP: "adversarial fleet + chaos
harness") is that **every injected fault surfaces as a typed outcome** —
a 401/403 denial, a 429 throttle, a 503 shard outage, or a typed error
response — and never as an unhandled exception inside the server
(``transport.server_errors`` stays 0).  This module supplies the
injectors and a shared outcome taxonomy:

* :func:`classify_call` — run one call and name its outcome;
* :class:`ChaosLoad` — hammer a call from worker threads while a fault
  injector runs, tallying outcomes;
* :class:`CallerKeyChaos` — rotate/revoke/re-register a caller's
  credential mid-load;
* :class:`QuotaFileCorruptor` — truncate, zero out, garbage-fill, or
  delete a :class:`~repro.service.envelope.SharedTokenBucket` state file
  while writers hold it;
* :class:`WorkerCrashStorm` — SIGKILL random cluster workers behind a
  :class:`~repro.service.cluster.ShardRouter`;
* :class:`DrainCycler` — drain and restore router shards mid-load (live
  resharding: users rebalance onto the remaining shards and back with no
  dropped in-flight requests).

``tests/chaos/`` pins one scenario per injector; ``docs/attacks.md``
holds the runbook.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import Counter
from typing import Any, Callable, Sequence

from repro.service.envelope import (
    CODE_MISSING_KEY,
    CODE_UNKNOWN_KEY,
    CallerRegistry,
)
from repro.service.protocol import ErrorResponse, Response, ThrottledResponse
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_UNAUTHORIZED",
    "OUTCOME_FORBIDDEN",
    "OUTCOME_THROTTLED",
    "OUTCOME_UNAVAILABLE",
    "OUTCOME_CONNECTION",
    "classify_response",
    "classify_call",
    "ChaosLoad",
    "CallerKeyChaos",
    "DrainCycler",
    "QuotaFileCorruptor",
    "WorkerCrashStorm",
]


#: Typed outcome names (the HTTP status each corresponds to on the wire).
OUTCOME_OK = "ok"
OUTCOME_UNAUTHORIZED = "unauthorized-401"
OUTCOME_FORBIDDEN = "forbidden-403"
OUTCOME_THROTTLED = "throttled-429"
OUTCOME_UNAVAILABLE = "unavailable-503"
OUTCOME_CONNECTION = "connection-error"

_401_MARKERS = (CODE_MISSING_KEY, CODE_UNKNOWN_KEY)


def classify_response(response: Response) -> str:
    """Name the typed outcome a protocol response represents."""
    if isinstance(response, ThrottledResponse):
        return OUTCOME_THROTTLED
    if isinstance(response, ErrorResponse):
        if response.error == "ShardUnavailable":
            return OUTCOME_UNAVAILABLE
        return f"error-{response.error}"
    return OUTCOME_OK


def classify_call(call: Callable[[], Response | Sequence[Response]]) -> str:
    """Run *call* and name its outcome — typed, or the raw exception.

    The grading primitive of the chaos suite: a call under fault
    injection must land in the typed vocabulary above.  Anything else
    (``exception-TypeError``, …) is the harness catching an untyped
    failure mode — chaos tests assert those never appear.

    * A channel/client raising ``PermissionError`` is the in-band twin of
      HTTP 401/403; the message's denial code picks which.
    * ``ConnectionError`` means the server vanished mid-call (expected
      while a worker pool restarts); the transport's catch-all never saw
      it, so it does not contradict ``transport.server_errors == 0``.
    * A sequence result (``submit_many``) takes the worst member's
      outcome, so a half-throttled batch grades as throttled.
    """
    try:
        result = call()
    except PermissionError as exc:
        text = str(exc)
        if any(marker in text for marker in _401_MARKERS):
            return OUTCOME_UNAUTHORIZED
        return OUTCOME_FORBIDDEN
    except ConnectionError:
        return OUTCOME_CONNECTION
    except Exception as exc:  # noqa: BLE001 - the whole point: name it
        return f"exception-{type(exc).__name__}"
    if isinstance(result, (list, tuple)):
        outcomes = [classify_response(item) for item in result]
        for outcome in outcomes:
            if outcome != OUTCOME_OK:
                return outcome
        return OUTCOME_OK
    return classify_response(result)


class ChaosLoad:
    """Concurrent load generator grading every call's outcome.

    Runs *make_call* results from *n_threads* workers for *duration_s*
    (or until :meth:`stop`), classifying each completed call with
    :func:`classify_call`.  *make_call* receives the worker index and
    returns the zero-argument callable to grade — build per-thread
    clients inside it if the underlying channel is not thread-safe.

    Usage::

        load = ChaosLoad(lambda i: (lambda: client.submit(request)))
        outcomes = load.run(lambda: chaos.disrupt_once())
        assert set(outcomes) <= {OUTCOME_OK, OUTCOME_UNAUTHORIZED}
    """

    def __init__(
        self,
        make_call: Callable[[int], Callable[[], Any]],
        n_threads: int = 4,
        duration_s: float = 1.0,
    ) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.make_call = make_call
        self.n_threads = n_threads
        self.duration_s = duration_s
        self.outcomes: Counter[str] = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the workers to finish their current call and exit."""
        self._stop.set()

    def _worker(self, index: int) -> None:
        deadline = time.monotonic() + self.duration_s
        call = self.make_call(index)
        while not self._stop.is_set() and time.monotonic() < deadline:
            outcome = classify_call(call)
            with self._lock:
                self.outcomes[outcome] += 1

    def run(
        self, disrupt: Callable[[], None] | None = None
    ) -> Counter[str]:
        """Drive the load (and *disrupt*, concurrently); returns outcomes.

        *disrupt* runs on the caller's thread while the workers hammer
        the service; when it returns (or immediately, if omitted) the
        workers run out their duration.
        """
        self._stop.clear()
        threads = [
            threading.Thread(target=self._worker, args=(index,), daemon=True)
            for index in range(self.n_threads)
        ]
        for thread in threads:
            thread.start()
        try:
            if disrupt is not None:
                disrupt()
        finally:
            for thread in threads:
                thread.join()
        return Counter(self.outcomes)


class CallerKeyChaos:
    """Rotates, revokes, and re-registers one caller's credential.

    Models an operator churning credentials while traffic is in flight:
    each :meth:`disrupt_once` step either rotates the key (old key turns
    into a typed 401), revokes the caller outright, or re-registers it
    after a revocation.  In-flight calls holding a stale key must degrade
    to typed 401s — never a 500.

    Attributes
    ----------
    current_key:
        The credential that is valid *right now* (``None`` while
        revoked).
    log:
        The (action, caller_id) steps taken, for test diagnostics.
    """

    ACTIONS = ("rotate", "revoke")

    def __init__(
        self,
        registry: CallerRegistry,
        caller_id: str,
        scopes: Sequence[str],
        seed: RandomState = None,
    ) -> None:
        self.registry = registry
        self.caller_id = caller_id
        self.scopes = tuple(scopes)
        self._rng = ensure_rng(seed)
        self.current_key: str | None = None
        self.log: list[tuple[str, str]] = []

    def disrupt_once(self) -> str:
        """Take one chaos step; returns the action taken."""
        if self.current_key is None:
            action = "register"
            self.current_key = self.registry.register(
                self.caller_id, self.scopes
            )
        else:
            action = self.ACTIONS[int(self._rng.integers(len(self.ACTIONS)))]
            if action == "rotate":
                self.current_key = self.registry.rotate_key(self.caller_id)
            else:
                self.registry.revoke(self.caller_id)
                self.current_key = None
        self.log.append((action, self.caller_id))
        return action

    def storm(self, steps: int, interval_s: float = 0.05) -> None:
        """Run *steps* chaos steps spaced *interval_s* apart, then make
        sure the caller ends the storm registered and servable."""
        for _ in range(steps):
            self.disrupt_once()
            time.sleep(interval_s)
        if self.current_key is None:
            self.disrupt_once()


class QuotaFileCorruptor:
    """Corrupts a :class:`~repro.service.envelope.SharedTokenBucket` file.

    The bucket's contract is to *fail open* on unreadable state — a torn,
    truncated, zeroed, garbage, or missing file refills the bucket rather
    than crashing a writer — so sustained corruption must never surface
    beyond typed 429s (while the file is healthy and drained) and
    successes.  Cycles through every corruption mode deterministically.
    """

    MODES = ("garbage", "truncate", "zero-byte", "delete")

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self.corruptions = 0

    def corrupt_once(self) -> str:
        """Apply the next corruption mode; returns the mode applied."""
        mode = self.MODES[self.corruptions % len(self.MODES)]
        self.corruptions += 1
        try:
            if mode == "garbage":
                with open(self.path, "w", encoding="utf-8") as handle:
                    handle.write('{"tokens": not-json !!!')
            elif mode == "truncate":
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.truncate(3)
            elif mode == "zero-byte":
                with open(self.path, "w", encoding="utf-8"):
                    pass
            else:
                os.unlink(self.path)
        except FileNotFoundError:
            pass
        return mode

    def storm(self, cycles: int = 2, interval_s: float = 0.02) -> None:
        """Apply every mode *cycles* times, spaced *interval_s* apart."""
        for _ in range(cycles * len(self.MODES)):
            self.corrupt_once()
            time.sleep(interval_s)


class WorkerCrashStorm:
    """SIGKILLs random live workers of a cluster worker pool.

    Models machine loss behind the shard router: with ``restart=True``
    the pool's health loop resurrects the shard, and until it does the
    router answers the shard's keys with a typed 503
    (``ShardUnavailable``).  Requests through the router must only ever
    land on ``ok`` / 503 / a transient connection error — the router's
    own catch-all (``transport.server_errors``) stays silent.
    """

    def __init__(self, pool: Any, seed: RandomState = None) -> None:
        self.pool = pool
        self._rng = ensure_rng(seed)
        self.kills: list[tuple[int, int]] = []

    def crash_once(self) -> tuple[int, int] | None:
        """SIGKILL one live worker; returns ``(shard, pid)`` or ``None``."""
        alive = [
            (shard, pid)
            for shard, pid in self.pool.pids().items()
            if pid is not None
        ]
        if not alive:
            return None
        shard, pid = alive[int(self._rng.integers(len(alive)))]
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            return None
        self.kills.append((shard, pid))
        return shard, pid

    def storm(self, crashes: int, interval_s: float = 0.3) -> None:
        """Crash *crashes* workers, spaced so restarts interleave."""
        for _ in range(crashes):
            self.crash_once()
            time.sleep(interval_s)


class DrainCycler:
    """Drains and restores random router shards while load is in flight.

    Models live resharding under an operator's runbook: each cycle marks
    one active shard draining (the router's ring rebalances its users
    onto the remaining shards), dwells while in-flight traffic completes,
    then restores it — so the mapping returns bit-for-bit to the
    original.  The router refuses to drain the last active shard, and
    this injector never tries to.  Load through a cycling router must
    stay entirely ``ok`` — a drain is a routing decision, not a fault.

    Attributes
    ----------
    cycles:
        The (action, shard) steps taken, for test diagnostics.
    """

    def __init__(self, router: Any, seed: RandomState = None) -> None:
        self.router = router
        self._rng = ensure_rng(seed)
        self.cycles: list[tuple[str, int]] = []

    def drain_once(self) -> int | None:
        """Drain one currently-active shard; returns it (or ``None`` when
        only one shard remains active)."""
        draining = self.router.draining()
        active = [
            shard
            for shard in range(self.router.pool.n_shards)
            if shard not in draining
        ]
        if len(active) <= 1:
            return None
        shard = active[int(self._rng.integers(len(active)))]
        self.router.set_draining(shard)
        self.cycles.append(("drain", shard))
        return shard

    def restore(self, shard: int) -> None:
        """Undrain *shard*, returning its users to the original mapping."""
        self.router.set_draining(shard, undrain=True)
        self.cycles.append(("undrain", shard))

    def storm(self, cycles: int, dwell_s: float = 0.2) -> None:
        """Drain a shard, dwell while traffic reroutes, restore; repeat.

        Ends with every shard active, so the post-storm mapping is the
        pre-storm one.
        """
        for _ in range(cycles):
            shard = self.drain_once()
            time.sleep(dwell_s)
            if shard is not None:
                self.restore(shard)
        for shard in sorted(self.router.draining()):
            self.restore(shard)
