"""Versioned persistence and serving of trained model bundles.

The paper's cloud server ships a freshly trained model bundle to the phone
after every (re)training round but keeps no history: a bad retrain (e.g. on
attacker-polluted data) cannot be undone.  The :class:`ModelRegistry` keeps
every published :class:`~repro.devices.cloud.TrainedModelBundle` version,
serves the newest *active* one, and supports rollback to the previous
version.

Bundles round-trip losslessly through :mod:`repro.utils.serialization`:
fitted estimators are captured attribute-by-attribute (NumPy arrays, nested
estimators and dataclass nodes included), so a reloaded bundle produces
bit-for-bit identical decision scores.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.devices.cloud import ContextModel, TrainedModelBundle
from repro.ml.base import BaseClassifier, BaseEstimator
from repro.ml.preprocessing import StandardScaler
from repro.sensors.types import CoarseContext
from repro.service.protocol import EVICTION_POLICIES as _EVICTION_POLICIES
from repro.utils import serialization

#: Tag keys used in the serialised estimator payloads.
_ESTIMATOR_TAG = "__estimator__"
_DATACLASS_TAG = "__dataclass__"
_TUPLE_TAG = "__tuple__"
_GENERATOR_TAG = "__generator__"


def _qualified_name(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(qualified: str) -> type:
    module_name, _, qualname = qualified.partition(":")
    # Payloads are data from disk: never import modules outside this
    # library (a tampered file must not trigger arbitrary imports).
    if module_name != "repro" and not module_name.startswith("repro."):
        raise ValueError(
            f"refusing to resolve {qualified!r}: registry payloads may only "
            "reference classes from the repro package"
        )
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    # The getattr chain can traverse into a module's imported attributes
    # (e.g. 'repro.x:np.random.RandomState'), so validate the destination,
    # not just the starting module.
    defined_in = getattr(target, "__module__", "")
    if not isinstance(target, type) or not (
        defined_in == "repro" or defined_in.startswith("repro.")
    ):
        raise ValueError(
            f"refusing to resolve {qualified!r}: it does not name a class "
            "defined in the repro package"
        )
    return target


def encode_state(value: Any) -> Any:
    """Recursively capture *value* into a serialisable structure.

    Handles scalars, strings, ``None``, NumPy arrays/scalars, dicts,
    lists/tuples, :class:`~repro.ml.base.BaseEstimator` instances (fitted
    state included) and dataclasses (e.g. decision-tree nodes).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value  # serialization._to_jsonable tags ndarrays natively
    if isinstance(value, np.random.Generator):
        # Fitted forests keep a Generator per tree; its bit-generator state
        # is plain ints/strings and round-trips faithfully.
        return {_GENERATOR_TAG: value.bit_generator.state}
    if isinstance(value, BaseEstimator):
        return {
            _ESTIMATOR_TAG: _qualified_name(value),
            "state": {key: encode_state(item) for key, item in vars(value).items()},
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            _DATACLASS_TAG: _qualified_name(value),
            "state": {
                field.name: encode_state(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): encode_state(item) for key, item in value.items()}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_state(item) for item in value]}
    if isinstance(value, list):
        return [encode_state(item) for item in value]
    raise TypeError(
        f"cannot serialise {type(value).__name__!r} values; registry payloads "
        "support scalars, arrays, dicts, lists, estimators and dataclasses"
    )


def decode_state(value: Any) -> Any:
    """Inverse of :func:`encode_state` (after ndarray tags are restored)."""
    if isinstance(value, dict):
        if _ESTIMATOR_TAG in value:
            cls = _resolve_class(value[_ESTIMATOR_TAG])
            instance = cls.__new__(cls)
            instance.__dict__.update(
                {key: decode_state(item) for key, item in value["state"].items()}
            )
            return instance
        if _DATACLASS_TAG in value:
            cls = _resolve_class(value[_DATACLASS_TAG])
            instance = cls.__new__(cls)
            for key, item in value["state"].items():
                # object.__setattr__ also works for frozen dataclasses.
                object.__setattr__(instance, key, decode_state(item))
            return instance
        if _TUPLE_TAG in value:
            return tuple(decode_state(item) for item in value[_TUPLE_TAG])
        if _GENERATOR_TAG in value:
            state = decode_state(value[_GENERATOR_TAG])
            bit_generator_cls = getattr(np.random, state["bit_generator"], None)
            if bit_generator_cls is None or not (
                isinstance(bit_generator_cls, type)
                and issubclass(bit_generator_cls, np.random.BitGenerator)
            ):
                raise ValueError(
                    f"payload names an unknown bit generator {state.get('bit_generator')!r}"
                )
            generator = np.random.Generator(bit_generator_cls())
            generator.bit_generator.state = state
            return generator
        return {key: decode_state(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_state(item) for item in value]
    return value


def bundle_to_payload(bundle: TrainedModelBundle) -> dict[str, Any]:
    """Serialise a trained bundle into a plain structure."""
    return {
        "kind": "trained-model-bundle",
        "user_id": bundle.user_id,
        "feature_names": list(bundle.feature_names),
        "version": int(bundle.version),
        "models": {
            context.value: {
                "context": context.value,
                "scaler": encode_state(model.scaler),
                "classifier": encode_state(model.classifier),
                "n_training_windows": int(model.n_training_windows),
            }
            for context, model in bundle.models.items()
        },
    }


def bundle_from_payload(payload: dict[str, Any]) -> TrainedModelBundle:
    """Rebuild a trained bundle from :func:`bundle_to_payload` output."""
    if payload.get("kind") != "trained-model-bundle":
        raise ValueError("payload does not describe a trained model bundle")
    models: dict[CoarseContext, ContextModel] = {}
    for context_value, entry in payload["models"].items():
        scaler = decode_state(entry["scaler"])
        classifier = decode_state(entry["classifier"])
        if not isinstance(scaler, StandardScaler):
            raise ValueError(f"model {context_value!r} carries an invalid scaler")
        if not isinstance(classifier, BaseClassifier):
            raise ValueError(
                f"model {context_value!r} carries an invalid classifier "
                f"({type(classifier).__name__}); expected a BaseClassifier"
            )
        models[CoarseContext(context_value)] = ContextModel(
            context=CoarseContext(context_value),
            scaler=scaler,
            classifier=classifier,
            n_training_windows=int(entry["n_training_windows"]),
        )
    return TrainedModelBundle(
        user_id=payload["user_id"],
        feature_names=list(payload["feature_names"]),
        models=models,
        version=int(payload["version"]),
    )


@dataclass
class ModelRecord:
    """One published bundle version and its serving status.

    ``last_served`` is a registry-local monotonic tick stamped every time
    :meth:`ModelRegistry.record_for` hands this record out (the gateway
    fetches a bundle once per scorer-cache rebuild, so the tick tracks
    *serving* recency, not per-request traffic); the LRU eviction policy
    orders versions by it.
    """

    user_id: str
    version: int
    bundle: TrainedModelBundle
    active: bool = True
    path: Path | None = None
    last_served: int = 0


#: Directory under the registry root holding context-detector versions.
#: User directories always end in an 8-hex-digit digest, so this name can
#: never collide with one.
_DETECTOR_DIR = "_context-detector"


def detector_to_payload(
    scaler: StandardScaler, classifier: BaseClassifier, version: int
) -> dict[str, Any]:
    """Serialise a user-agnostic context detector into a plain structure."""
    return {
        "kind": "context-detector",
        "version": int(version),
        "scaler": encode_state(scaler),
        "classifier": encode_state(classifier),
    }


def detector_from_payload(
    payload: dict[str, Any],
) -> tuple[StandardScaler, BaseClassifier, int]:
    """Rebuild a context detector from :func:`detector_to_payload` output."""
    if payload.get("kind") != "context-detector":
        raise ValueError("payload does not describe a context detector")
    scaler = decode_state(payload["scaler"])
    classifier = decode_state(payload["classifier"])
    if not isinstance(scaler, StandardScaler):
        raise ValueError("context-detector payload carries an invalid scaler")
    if not isinstance(classifier, BaseClassifier):
        raise ValueError(
            "context-detector payload carries an invalid classifier "
            f"({type(classifier).__name__}); expected a BaseClassifier"
        )
    return scaler, classifier, int(payload["version"])


class ModelRegistry:
    """Stores every published bundle version and serves the newest active one.

    Parameters
    ----------
    root:
        Optional directory; when given, every published bundle is also
        persisted as JSON under ``root/<user-dir>/v<version>.json`` and
        :meth:`load` can rehydrate the registry from disk.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._records: dict[str, dict[int, ModelRecord]] = {}
        # The user-agnostic context detector is published and versioned just
        # like authentication bundles, so the serving path can score context
        # detection from the registry instead of trusting device reports.
        self._detectors: dict[int, tuple[StandardScaler, BaseClassifier]] = {}
        self._generation = 0
        self._serve_tick = 0
        # Serializes record mutation and lookup: the threaded transport can
        # run a fleet-wide eviction (a periodic admin call) concurrently
        # with serving lookups and retrain publishes; without the lock an
        # eviction pass iterating a user's version dict would race a
        # publish inserting into it.  Reentrant, because serving helpers
        # (latest_version → record_for) nest.
        self._lock = threading.RLock()

    @property
    def generation(self) -> int:
        """Monotonic counter of serving-state changes.

        Bumped by every :meth:`publish`, :meth:`publish_context_detector`,
        :meth:`rollback` and :meth:`load` that changed what the registry
        serves.  Caches keyed on the served model set (the frontend's
        fused-stack cache, the gateway's scorer cache) compare generations
        to decide when to invalidate without subscribing to every mutation.
        """
        with self._lock:
            return self._generation

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #

    def _user_dir(self, user_id: str) -> Path:
        assert self.root is not None
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in user_id)
        digest = hashlib.sha256(user_id.encode("utf-8")).hexdigest()[:8]
        return self.root / f"{safe or 'user'}-{digest}"

    def _persist_serving_state(self, user_id: str) -> None:
        """Persist retired versions and serving recency across restarts.

        Written on every rollback/eviction: ``retired_versions`` keeps a
        rollback effective after a reload, ``last_served`` keeps the LRU
        eviction ordering meaningful (serves since the last state write are
        lost on a crash — the ticks are not flushed per request — so a
        freshly restarted registry degrades gracefully toward version
        order until versions are served again).
        """
        if self.root is None:
            return
        records = self._records.get(user_id, {})
        retired = sorted(
            version for version, record in records.items() if not record.active
        )
        last_served = {
            str(version): record.last_served
            for version, record in records.items()
            if record.last_served
        }
        serialization.to_json_file(
            {
                "kind": "registry-state",
                "user_id": user_id,
                "retired_versions": retired,
                "last_served": last_served,
            },
            self._user_dir(user_id) / "state.json",
        )

    def publish(self, bundle: TrainedModelBundle) -> ModelRecord:
        """Register (and optionally persist) a new bundle version.

        Raises
        ------
        ValueError
            If this user already has a bundle with the same version number.
        """
        with self._lock:
            versions = self._records.setdefault(bundle.user_id, {})
            if bundle.version in versions:
                raise ValueError(
                    f"user {bundle.user_id!r} already has a published version "
                    f"{bundle.version}; versions are immutable"
                )
            record = ModelRecord(
                user_id=bundle.user_id, version=bundle.version, bundle=bundle
            )
            if self.root is not None:
                path = self._user_dir(bundle.user_id) / f"v{bundle.version}.json"
                serialization.to_json_file(bundle_to_payload(bundle), path)
                record.path = path
            versions[bundle.version] = record
            self._generation += 1
            return record

    # ------------------------------------------------------------------ #
    # context detector
    # ------------------------------------------------------------------ #

    def publish_context_detector(
        self, scaler: StandardScaler, classifier: BaseClassifier
    ) -> int:
        """Register (and optionally persist) a new context-detector version.

        Returns the version number assigned to this detector.
        """
        if not isinstance(scaler, StandardScaler):
            raise ValueError("scaler must be a fitted StandardScaler")
        if not isinstance(classifier, BaseClassifier):
            raise ValueError("classifier must be a fitted BaseClassifier")
        with self._lock:
            version = max(self._detectors, default=0) + 1
            self._detectors[version] = (scaler, classifier)
            self._generation += 1
            if self.root is not None:
                serialization.to_json_file(
                    detector_to_payload(scaler, classifier, version),
                    self.root / _DETECTOR_DIR / f"v{version}.json",
                )
            return version

    def context_detector_versions(self) -> list[int]:
        """All published context-detector versions (ascending)."""
        with self._lock:
            return sorted(self._detectors)

    def context_detector(
        self, version: int | None = None
    ) -> tuple[StandardScaler, BaseClassifier]:
        """The served context detector (a specific version, or the newest).

        Raises
        ------
        KeyError
            If no context detector has been published.
        """
        with self._lock:
            if version is None:
                if not self._detectors:
                    raise KeyError(
                        "no context detector published; train one and publish "
                        "it via publish_context_detector()"
                    )
                version = max(self._detectors)
            try:
                return self._detectors[version]
            except KeyError:
                raise KeyError(
                    f"no published context-detector version {version}"
                ) from None

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #

    def users(self) -> list[str]:
        """Every user with at least one published bundle."""
        with self._lock:
            return sorted(self._records)

    def versions(self, user_id: str) -> list[int]:
        """All published version numbers for *user_id* (ascending)."""
        with self._lock:
            return sorted(self._records.get(user_id, {}))

    def active_versions(self, user_id: str) -> list[int]:
        """Versions currently eligible for serving (ascending)."""
        with self._lock:
            return sorted(
                version
                for version, record in self._records.get(user_id, {}).items()
                if record.active
            )

    def latest_version(self, user_id: str) -> int:
        """The version :meth:`bundle_for` would serve right now.

        Raises
        ------
        KeyError
            If the user has no active published versions.
        """
        with self._lock:
            active = self.active_versions(user_id)
            if not active:
                raise KeyError(
                    f"no active model versions published for {user_id!r}"
                )
            return active[-1]

    def record_for(self, user_id: str, version: int | None = None) -> ModelRecord:
        """The record serving *user_id* (a specific version, or the newest).

        Raises
        ------
        KeyError
            If the user (or the requested version) has never been published.
        """
        with self._lock:
            if version is None:
                version = self.latest_version(user_id)
            try:
                record = self._records[user_id][version]
            except KeyError:
                raise KeyError(
                    f"no published version {version} for user {user_id!r}"
                ) from None
            self._serve_tick += 1
            record.last_served = self._serve_tick
            return record

    def bundle_for(self, user_id: str, version: int | None = None) -> TrainedModelBundle:
        """The bundle serving *user_id* (a specific version, or the newest).

        Raises
        ------
        KeyError
            If the user (or the requested version) has never been published.
        """
        return self.record_for(user_id, version).bundle

    def rollback(self, user_id: str) -> ModelRecord:
        """Retire the newest active version and serve the previous one.

        The retired version stays stored (and addressable by explicit
        version number) but is no longer eligible as the serving default.

        Returns
        -------
        ModelRecord
            The record now serving (the previous active version).

        Raises
        ------
        ValueError
            If fewer than two active versions exist — the registry never
            rolls back to nothing.
        """
        with self._lock:
            active = self.active_versions(user_id)
            if len(active) < 2:
                raise ValueError(
                    f"cannot roll back {user_id!r}: need at least two active "
                    f"versions, have {len(active)}"
                )
            self._records[user_id][active[-1]].active = False
            self._generation += 1
            self._persist_serving_state(user_id)
            return self._records[user_id][active[-2]]

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #

    #: Eviction policies :meth:`evict` accepts — the same tuple the wire
    #: protocol's :class:`~repro.service.protocol.EvictRequest` validates
    #: against, so the API and the implementation can never drift apart.
    EVICTION_POLICIES = _EVICTION_POLICIES

    def _keep_set(self, user_id: str, policy: str, max_versions: int) -> set[int]:
        """The versions eviction must keep for *user_id* under *policy*."""
        records = self._records[user_id]
        if policy == "max_versions":
            ranked = sorted(records)  # keep the newest version numbers
        else:  # "lru": keep the most recently served (ties -> newer wins)
            ranked = [
                record.version
                for record in sorted(
                    records.values(), key=lambda r: (r.last_served, r.version)
                )
            ]
        keep = set(ranked[-max_versions:])
        # The serving bundle is never evicted, even beyond the budget; a
        # user whose versions are somehow all retired keeps the newest.
        active = self.active_versions(user_id)
        keep.add(active[-1] if active else max(records))
        return keep

    def evict(
        self,
        policy: str = "max_versions",
        max_versions: int = 4,
        user_id: str | None = None,
    ) -> dict[str, list[int]]:
        """Drop old bundle versions, keeping the serving bundle safe.

        Long-lived fleets retrain indefinitely; every round publishes a new
        immutable version, so without eviction registry memory (and disk,
        for persistent registries) grows without bound.  Eviction removes
        records — and deletes their persisted payload files — by policy:

        * ``"max_versions"`` keeps each user's *newest* ``max_versions``
          version numbers;
        * ``"lru"`` keeps each user's ``max_versions`` most recently
          *served* versions (see :attr:`ModelRecord.last_served`), which
          preserves an old version an operator still pins explicitly.

        The currently serving version (newest active) is always kept, even
        when it falls outside the policy's budget, so eviction can never
        break the serving path.  Evicting bumps :attr:`generation` exactly
        like publish/rollback, invalidating serving caches.

        Parameters
        ----------
        policy:
            ``"max_versions"`` (default) or ``"lru"``.
        max_versions:
            Versions each policy keeps per user (>= 1).
        user_id:
            Restrict the pass to one user (default: every user).

        Returns
        -------
        dict[str, list[int]]
            Evicted version numbers per user; users with nothing to evict
            are omitted.

        Raises
        ------
        ValueError
            If *policy* is unknown or ``max_versions < 1``.
        KeyError
            If *user_id* names a user with no published versions.
        """
        if policy not in self.EVICTION_POLICIES:
            raise ValueError(
                f"policy must be one of {self.EVICTION_POLICIES}, got {policy!r}"
            )
        if max_versions < 1:
            raise ValueError(f"max_versions must be >= 1, got {max_versions}")
        with self._lock:
            if user_id is not None and user_id not in self._records:
                raise KeyError(f"no published versions for user {user_id!r}")
            evicted: dict[str, list[int]] = {}
            for uid in [user_id] if user_id is not None else list(self._records):
                records = self._records[uid]
                keep = self._keep_set(uid, policy, max_versions)
                dropped = sorted(
                    version for version in records if version not in keep
                )
                if not dropped:
                    continue
                for version in dropped:
                    record = records.pop(version)
                    if record.path is not None:
                        record.path.unlink(missing_ok=True)
                self._persist_serving_state(uid)
                evicted[uid] = dropped
            if evicted:
                self._generation += 1
            return evicted

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def load(self) -> int:
        """Rehydrate the registry from ``root``; returns items loaded.

        Already-registered (user, version) pairs are left untouched, so
        ``load`` is safe to call on a warm registry.

        Raises
        ------
        RuntimeError
            If this registry was built without a persistence root.
        ValueError
            If a payload on disk is malformed or names a class outside the
            :mod:`repro` package.
        """
        if self.root is None:
            raise RuntimeError("this registry has no persistence root configured")
        loaded = 0
        if not self.root.exists():
            return loaded
        for path in sorted((self.root / _DETECTOR_DIR).glob("v*.json")):
            scaler, classifier, version = detector_from_payload(
                serialization.from_json_file(path)
            )
            if version not in self._detectors:
                self._detectors[version] = (scaler, classifier)
                loaded += 1
        for path in sorted(self.root.glob("*/v*.json")):
            if path.parent.name == _DETECTOR_DIR:
                continue
            payload = serialization.from_json_file(path)
            bundle = bundle_from_payload(payload)
            versions = self._records.setdefault(bundle.user_id, {})
            if bundle.version in versions:
                continue
            versions[bundle.version] = ModelRecord(
                user_id=bundle.user_id,
                version=bundle.version,
                bundle=bundle,
                path=path,
            )
            loaded += 1
        # Re-apply persisted serving state (rollbacks, LRU recency) after
        # the bundles.
        for user_id, versions in self._records.items():
            state_path = self._user_dir(user_id) / "state.json"
            if not state_path.exists():
                continue
            state = serialization.from_json_file(state_path)
            for version in state.get("retired_versions", []):
                record = versions.get(int(version))
                if record is not None:
                    record.active = False
            for version, tick in state.get("last_served", {}).items():
                record = versions.get(int(version))
                if record is not None and record.last_served == 0:
                    record.last_served = int(tick)
                    self._serve_tick = max(self._serve_tick, int(tick))
        if loaded:
            self._generation += 1
        return loaded

    def roundtrip(self, bundle: TrainedModelBundle) -> TrainedModelBundle:
        """Serialise and rebuild *bundle* through the JSON wire format.

        Used by tests to prove the wire format is lossless, and useful for
        shipping a bundle to a device without touching the filesystem.
        """
        return bundle_from_payload(serialization.loads(serialization.dumps(bundle_to_payload(bundle))))
