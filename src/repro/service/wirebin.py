"""Binary columnar wire codec for batched service requests (stdlib + NumPy).

The JSON wire codec is lossless and human-readable, but at fleet scale it
is the transport bottleneck: every float64 becomes decimal text, every
window becomes a nested list, and every request becomes a dict the server
must walk back into arrays.  This module frames a whole batch of
data-plane requests as **one binary frame** in struct-of-arrays form:

* a 16-byte prelude — magic ``RBC1``, header length, payload length;
* a small JSON header carrying the per-batch metadata (op, caller
  credential, user ids, versions…) under exactly the JSON wire codec's
  conversion rules;
* a binary payload of contiguous little-endian columns — all window
  feature vectors travel as a single ``float64`` block, contexts as the
  already-int-encoded ``int8`` code array.

The server decodes a 500-user batch with a handful of
:func:`np.frombuffer` views (zero copies — the arrays alias the received
bytes, which also makes them naturally read-only) and hands the columns
straight to the fused scoring pass via
:meth:`~repro.service.frontend.ServiceFrontend.submit_columns`; per-request
Python objects never exist on the hot path.  Because floats travel as raw
IEEE-754 bytes, every value — ``NaN`` payloads, ``±Infinity``, ``-0.0``,
subnormals — round-trips bit-for-bit by construction.

**Frame layout** (all integers little-endian; every section zero-padded to
a multiple of 8 bytes, so frames concatenate 8-aligned in a stream)::

    offset  size          field
    0       4             magic  b"RBC1"
    4       4             u32 header length H (bytes of UTF-8 JSON)
    8       8             u64 payload length P
    16      H             header JSON (sorted keys, compact separators)
    16+H    pad to 8      zero padding
    ...     P             payload: the op's sections, in fixed order

Request payload sections by ``op``:

* ``authenticate`` — ``lengths`` ``int32[n_requests]``, ``features``
  ``float64[n_windows × n_features]`` (row-major), and — iff the header's
  ``has_contexts`` — ``context_codes`` ``int8[n_windows]``;
* ``enroll`` / ``drift-report`` — ``lengths``, ``values`` (as above) and
  ``context_codes`` (always present: feature matrices carry labels).

Response payload sections (``op == "authenticate"``): ``lengths``
``int32[n_requests]`` (scored windows per request; 0 for errored ones),
``scores`` ``float64``, ``accepted`` ``uint8`` and ``model_context_codes``
``int8`` — one entry per scored window.  Other ops answer with their
responses in the header (they are small plain structures).  A frame-level
rejection (denied caller, rate limit, oversized batch) travels as a
sectionless frame whose header carries the typed payload.

A batch is *frame-encodable* when it is a homogeneous run of one
data-plane op with a uniform feature schema (see :func:`batch_op`);
anything else falls back to the JSON codec, which remains bit-for-bit
untouched.  Streams are just concatenated frames: the encoder emits one
frame per chunk and the reader yields frames as their bytes arrive, so a
100k-window upload never holds the whole body in memory on either side.
"""

from __future__ import annotations

import io
import json
import struct
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.scoring import (
    CONTEXT_BY_CODE,
    decode_contexts,
    encode_contexts,
    offsets_from_lengths,
)
from repro.features.vector import FeatureMatrix
from repro.service.envelope import API_VERSION, DENIED_KIND, DeniedResponse
from repro.service.protocol import (
    AuthenticateColumns,
    AuthenticateRequest,
    ColumnarAuthResult,
    DriftReport,
    EnrollRequest,
    ErrorResponse,
    Request,
    Response,
    ThrottledResponse,
    response_from_payload,
    response_to_payload,
)
from repro.utils import serialization

#: Content type negotiating the binary codec on ``POST /v2/requests``.
CONTENT_TYPE = "application/x-repro-batch"

#: Frame magic (``Repro Binary Columnar``, layout revision 1).
MAGIC = b"RBC1"

#: Header tags of the two frame directions.
REQUEST_FRAME_KIND = "repro-batch"
RESPONSE_FRAME_KIND = "repro-batch-response"

#: The ops a request frame can carry (the data plane's batchable set).
FRAME_OPS = ("authenticate", "enroll", "drift-report")

#: Upper bound on a frame's header, a plain-metadata section (64 MiB).
MAX_HEADER_BYTES = 64 * 1024 * 1024

#: Upper bound on one frame's binary payload (1 GiB); streams chunk far
#: below this, so anything larger is a corrupt or hostile length field.
MAX_PAYLOAD_BYTES = 1 << 30

_PRELUDE = struct.Struct("<4sIQ")

#: Context label per code, for rebuilding FeatureMatrix context lists.
_CONTEXT_LABELS = tuple(context.value for context in CONTEXT_BY_CODE)

_DTYPE_LENGTHS = np.dtype("<i4")
_DTYPE_FEATURES = np.dtype("<f8")
_DTYPE_CODES = np.dtype("int8")
_DTYPE_ACCEPTED = np.dtype("uint8")


def _pad8(n: int) -> int:
    return (-n) % 8


def new_frame_id() -> str:
    """A fresh frame correlation id (32 hex chars)."""
    return uuid.uuid4().hex


# --------------------------------------------------------------------- #
# encodability
# --------------------------------------------------------------------- #


def request_windows(request: Request) -> int:
    """How many feature windows *request* carries (stream chunking unit)."""
    if isinstance(request, AuthenticateRequest):
        return len(request.features)
    if isinstance(request, (EnrollRequest, DriftReport)):
        return len(request.matrix)
    return 0


def batch_op(requests: Sequence[Request]) -> str | None:
    """The homogeneous frame op of *requests* — or ``None`` when the batch
    is not frame-encodable and must ride the JSON codec instead.

    A batch is frame-encodable when every request is the same data-plane
    operation, every feature block is non-empty with one shared width, and
    (authenticate) contexts are uniformly device-reported or uniformly
    server-detected, or (enroll / drift) every matrix shares one
    feature-name schema, labels every row with a coarse context, and its
    per-row user ids all match the request's user.
    """
    if not requests:
        return None
    first = type(requests[0])
    op = {
        AuthenticateRequest: "authenticate",
        EnrollRequest: "enroll",
        DriftReport: "drift-report",
    }.get(first)
    if op is None:
        return None
    widths: set[int] = set()
    if op == "authenticate":
        detect_flags: set[bool] = set()
        for request in requests:
            if type(request) is not first:
                return None
            if not len(request.features):
                return None
            widths.add(request.features.shape[1])
            detect_flags.add(request.contexts is None)
        if len(widths) != 1 or len(detect_flags) != 1:
            return None
        return op
    schemas: set[tuple[str, ...]] = set()
    for request in requests:
        if type(request) is not first:
            return None
        matrix = request.matrix
        if not len(matrix):
            return None
        widths.add(matrix.n_features)
        schemas.add(tuple(matrix.feature_names))
        if list(matrix.user_ids) != [request.user_id] * len(matrix):
            return None
        if len(matrix.contexts) != len(matrix):
            return None
        if any(label not in _CONTEXT_LABELS for label in matrix.contexts):
            return None
    if len(widths) != 1 or len(schemas) != 1:
        return None
    return op


# --------------------------------------------------------------------- #
# frame assembly
# --------------------------------------------------------------------- #


def _assemble(header: dict[str, Any], sections: Sequence[bytes]) -> bytes:
    header_bytes = json.dumps(
        serialization.to_jsonable(header), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    frame = bytearray()
    payload_length = sum(len(section) + _pad8(len(section)) for section in sections)
    frame += _PRELUDE.pack(MAGIC, len(header_bytes), payload_length)
    frame += header_bytes
    frame += b"\x00" * _pad8(_PRELUDE.size + len(header_bytes))
    for section in sections:
        frame += section
        frame += b"\x00" * _pad8(len(section))
    return bytes(frame)


def encode_request_frame(
    requests: Sequence[Request],
    api_key: str | None = None,
    frame_id: str | None = None,
    op: str | None = None,
) -> bytes:
    """Encode a frame-encodable batch as one binary columnar frame.

    Parameters
    ----------
    requests:
        A homogeneous data-plane batch (see :func:`batch_op`).
    api_key:
        The caller credential authorizing the whole frame (one
        authorization covers every request in it).
    frame_id:
        Correlation id echoed by the response frame (generated if omitted).
    op:
        The batch's already-computed :func:`batch_op` outcome; callers that
        just ran the gate pass it in so the O(windows) encodability scan is
        not repeated here.

    Raises
    ------
    ValueError
        If *requests* is not frame-encodable.
    """
    if op is None:
        op = batch_op(requests)
    if op is None:
        raise ValueError(
            "requests are not frame-encodable (mixed or empty operations, "
            "non-uniform schema, or non-coarse context labels); submit them "
            "through the JSON codec instead"
        )
    header: dict[str, Any] = {
        "kind": REQUEST_FRAME_KIND,
        "op": op,
        "api_version": API_VERSION,
        "api_key": api_key,
        "frame_id": frame_id if frame_id is not None else new_frame_id(),
        "n_requests": len(requests),
        "user_ids": [request.user_id for request in requests],
    }
    lengths_section = bytearray()
    features_section = bytearray()
    codes_section = bytearray()
    n_windows = 0
    if op == "authenticate":
        has_contexts = requests[0].contexts is not None
        header["has_contexts"] = has_contexts
        versions = [request.version for request in requests]
        header["versions"] = (
            versions if any(version is not None for version in versions) else None
        )
        header["n_features"] = int(requests[0].features.shape[1])
        for request in requests:
            n_windows += len(request.features)
            features_section += np.ascontiguousarray(
                request.features, dtype=_DTYPE_FEATURES
            ).tobytes()
            if has_contexts:
                codes_section += np.ascontiguousarray(
                    request.context_codes, dtype=_DTYPE_CODES
                ).tobytes()
        lengths = np.fromiter(
            (len(request.features) for request in requests),
            dtype=_DTYPE_LENGTHS,
            count=len(requests),
        )
    else:
        header["has_contexts"] = has_contexts = True
        header["feature_names"] = list(requests[0].matrix.feature_names)
        header["n_features"] = int(requests[0].matrix.n_features)
        if op == "enroll":
            header["train"] = [request.train for request in requests]
        for request in requests:
            matrix = request.matrix
            n_windows += len(matrix)
            features_section += np.ascontiguousarray(
                matrix.values, dtype=_DTYPE_FEATURES
            ).tobytes()
            codes_section += encode_contexts(
                np.asarray(matrix.contexts)
            ).tobytes()
        lengths = np.fromiter(
            (len(request.matrix) for request in requests),
            dtype=_DTYPE_LENGTHS,
            count=len(requests),
        )
    header["n_windows"] = n_windows
    sections = [lengths.tobytes(), bytes(features_section)]
    if has_contexts:
        sections.append(bytes(codes_section))
    return _assemble(header, sections)


# --------------------------------------------------------------------- #
# decoded request frames
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class RequestFrame:
    """One decoded binary request frame, still in columnar form.

    The feature block and context codes are zero-copy
    :func:`np.frombuffer` views into the received bytes (read-only).
    ``eq=False`` for the usual array-field reason.
    """

    op: str
    api_version: int
    api_key: str | None
    frame_id: str
    user_ids: tuple[str, ...]
    lengths: np.ndarray
    features: np.ndarray
    context_codes: np.ndarray | None
    versions: tuple[int | None, ...] | None = None
    train: tuple[bool | None, ...] | None = None
    feature_names: tuple[str, ...] | None = None
    #: Replay-safety marker: the shard router stamps ``prepaid`` on the
    #: sub-frames it carves so a worker spawned with ``--trust-prepaid``
    #: skips its own quota charge — the router already charged the shared
    #: bucket once for the whole frame, so a retried or hedged sub-frame
    #: can never charge twice.  Untrusted servers ignore the flag.
    prepaid: bool = False

    @property
    def n_requests(self) -> int:
        return len(self.user_ids)

    @property
    def n_windows(self) -> int:
        return len(self.features)

    def to_columns(self, trace_id: str | None = None) -> AuthenticateColumns:
        """The columnar batch of an ``authenticate`` frame (zero-copy).

        *trace_id* threads the transport-door trace into the batch so the
        frontend can attach fused-pass spans after the frame crossed the
        micro-batch queue's thread boundary.

        Raises
        ------
        ValueError
            If this frame carries a different op.
        """
        if self.op != "authenticate":
            raise ValueError(
                f"frame op {self.op!r} has no columnar authenticate form"
            )
        return AuthenticateColumns(
            user_ids=self.user_ids,
            features=self.features,
            lengths=self.lengths,
            context_codes=self.context_codes,
            versions=self.versions,
            trace_id=trace_id,
        )

    def to_requests(self) -> list[Request]:
        """Materialize per-request protocol objects (enroll / drift path).

        Enrollment and drift must build one
        :class:`~repro.features.vector.FeatureMatrix` per request anyway
        (storage appends per user), so this is the natural server-side form
        for those ops; the authenticate hot path uses :meth:`to_columns`
        instead and never comes through here.
        """
        offsets = offsets_from_lengths(self.lengths)
        requests: list[Request] = []
        for index, user_id in enumerate(self.user_ids):
            start, stop = int(offsets[index]), int(offsets[index + 1])
            rows = self.features[start:stop]
            if self.op == "authenticate":
                requests.append(
                    AuthenticateRequest(
                        user_id=user_id,
                        features=rows,
                        contexts=(
                            None
                            if self.context_codes is None
                            else decode_contexts(self.context_codes[start:stop])
                        ),
                        version=(
                            None if self.versions is None else self.versions[index]
                        ),
                    )
                )
                continue
            matrix = FeatureMatrix(
                values=rows,
                feature_names=list(self.feature_names or ()),
                user_ids=[user_id] * len(rows),
                contexts=[
                    _CONTEXT_LABELS[code]
                    for code in self.context_codes[start:stop]
                ],
            )
            if self.op == "enroll":
                train = None if self.train is None else self.train[index]
                requests.append(
                    EnrollRequest(user_id=user_id, matrix=matrix, train=train)
                )
            else:
                requests.append(DriftReport(user_id=user_id, matrix=matrix))
        return requests


def encode_frame_slice(
    frame: RequestFrame,
    indices: Sequence[int],
    frame_id: str | None = None,
    prepaid: bool | None = None,
) -> bytes:
    """Re-encode a parsed request frame restricted to *indices*.

    The shard router's split primitive: a decoded frame is carved into one
    sub-frame per shard, each a fully valid request frame carrying the same
    op, credential and (by default) a fresh ``frame_id``.  Request order
    within *indices* is preserved, so the router can merge shard responses
    back positionally.

    Raises
    ------
    ValueError
        If *indices* is empty or holds an out-of-range request index.

    *prepaid* stamps (or clears) the sub-frame's replay-safety marker;
    ``None`` inherits the parent frame's flag.
    """
    order = [int(index) for index in indices]
    if not order:
        raise ValueError("cannot slice a frame to zero requests")
    for index in order:
        if not 0 <= index < frame.n_requests:
            raise ValueError(
                f"request index {index} out of range for a frame of "
                f"{frame.n_requests} request(s)"
            )
    offsets = offsets_from_lengths(frame.lengths)
    spans = [(int(offsets[index]), int(offsets[index + 1])) for index in order]
    lengths = np.asarray(
        [stop - start for start, stop in spans], dtype=_DTYPE_LENGTHS
    )
    n_features = int(frame.features.shape[1]) if frame.features.ndim == 2 else 0
    features = np.concatenate(
        [frame.features[start:stop] for start, stop in spans]
    ) if spans else frame.features[:0]
    header: dict[str, Any] = {
        "kind": REQUEST_FRAME_KIND,
        "op": frame.op,
        "api_version": frame.api_version,
        "api_key": frame.api_key,
        "frame_id": frame_id if frame_id is not None else new_frame_id(),
        "n_requests": len(order),
        "user_ids": [frame.user_ids[index] for index in order],
        "n_windows": int(lengths.sum()),
        "n_features": n_features,
    }
    if frame.prepaid if prepaid is None else prepaid:
        header["prepaid"] = True
    if frame.op == "authenticate":
        header["has_contexts"] = frame.context_codes is not None
        versions = (
            None
            if frame.versions is None
            else [frame.versions[index] for index in order]
        )
        header["versions"] = (
            versions
            if versions is not None and any(v is not None for v in versions)
            else None
        )
    else:
        header["has_contexts"] = True
        header["feature_names"] = list(frame.feature_names or ())
        if frame.op == "enroll":
            train = None if frame.train is None else frame.train
            header["train"] = [
                None if train is None else train[index] for index in order
            ]
    sections = [
        lengths.tobytes(),
        np.ascontiguousarray(features, dtype=_DTYPE_FEATURES).tobytes(),
    ]
    if frame.context_codes is not None:
        codes = np.concatenate(
            [frame.context_codes[start:stop] for start, stop in spans]
        ) if spans else frame.context_codes[:0]
        sections.append(np.ascontiguousarray(codes, dtype=_DTYPE_CODES).tobytes())
    return _assemble(header, sections)


# --------------------------------------------------------------------- #
# frame parsing (shared by request and response directions)
# --------------------------------------------------------------------- #


class FrameReader:
    """Incremental frame reader over any ``read(n) -> bytes`` callable.

    Reads exactly one frame's bytes at a time, so a streamed upload is
    decoded frame by frame with memory bounded by the largest single chunk
    — never the whole body.  A clean end-of-stream between frames yields
    ``None``; anything torn mid-frame raises ``ValueError``.
    """

    def __init__(self, read: Callable[[int], bytes]) -> None:
        self._read = read

    def _read_exact(self, n: int, what: str) -> bytes:
        parts: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = self._read(remaining)
            if not chunk:
                raise ValueError(
                    f"truncated binary frame: stream ended {remaining} bytes "
                    f"short of its {what}"
                )
            parts.append(chunk)
            remaining -= len(chunk)
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def next_frame(self) -> tuple[dict[str, Any], memoryview] | None:
        """The next ``(header, payload)`` pair, or ``None`` at clean EOF.

        Raises
        ------
        ValueError
            On a bad magic, oversized or inconsistent length fields,
            malformed header JSON, or a stream torn mid-frame.
        """
        first = self._read(_PRELUDE.size)
        if not first:
            return None
        if len(first) < _PRELUDE.size:
            first += self._read_exact(_PRELUDE.size - len(first), "prelude")
        magic, header_length, payload_length = _PRELUDE.unpack(first)
        if magic != MAGIC:
            raise ValueError(
                f"not a binary batch frame: bad magic {magic!r} "
                f"(expected {MAGIC!r})"
            )
        if header_length > MAX_HEADER_BYTES:
            raise ValueError(
                f"binary frame header of {header_length} bytes exceeds the "
                f"{MAX_HEADER_BYTES}-byte bound"
            )
        if payload_length > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"binary frame payload of {payload_length} bytes exceeds the "
                f"{MAX_PAYLOAD_BYTES}-byte bound"
            )
        header_bytes = self._read_exact(header_length, "header")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"malformed binary frame header: {error}") from None
        if not isinstance(header, dict):
            raise ValueError(
                f"binary frame header must be a JSON object, got "
                f"{type(header).__name__}"
            )
        header = serialization.from_jsonable(header)
        pad = _pad8(_PRELUDE.size + header_length)
        if pad:
            self._read_exact(pad, "header padding")
        payload = self._read_exact(payload_length, "payload") if payload_length else b""
        return header, memoryview(payload)


def _int_field(header: Mapping[str, Any], name: str, minimum: int = 0) -> int:
    value = header.get(name)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ValueError(
            f"binary frame header field {name!r} must be an int >= "
            f"{minimum}, got {value!r}"
        )
    return value


def _str_list_field(header: Mapping[str, Any], name: str, count: int) -> list:
    value = header.get(name)
    if not isinstance(value, list) or len(value) != count:
        raise ValueError(
            f"binary frame header field {name!r} must be a list of length "
            f"{count}"
        )
    return value


def _sections(
    payload: memoryview, specs: Sequence[tuple[str, np.dtype, int]]
) -> dict[str, np.ndarray]:
    """Slice *payload* into its fixed-order sections as zero-copy views."""
    cursor = 0
    views: dict[str, np.ndarray] = {}
    for name, dtype, count in specs:
        nbytes = dtype.itemsize * count
        if cursor + nbytes > len(payload):
            raise ValueError(
                f"corrupt binary frame: payload ends inside the {name!r} "
                f"section ({len(payload)} bytes for >= {cursor + nbytes})"
            )
        views[name] = np.frombuffer(payload[cursor : cursor + nbytes], dtype=dtype)
        cursor += nbytes + _pad8(nbytes)
    if cursor != len(payload):
        raise ValueError(
            f"corrupt binary frame: payload holds {len(payload)} bytes but "
            f"its sections describe {cursor}"
        )
    return views


def _decode_lengths(views: dict[str, np.ndarray], n_windows: int) -> np.ndarray:
    lengths = views["lengths"]
    if len(lengths) and int(lengths.min()) < 0:
        raise ValueError("corrupt binary frame: negative request length")
    if int(lengths.sum()) != n_windows:
        raise ValueError(
            f"corrupt binary frame: request lengths sum to "
            f"{int(lengths.sum())} but the frame declares {n_windows} windows"
        )
    return lengths


def parse_request_frame(header: Mapping[str, Any], payload: memoryview) -> RequestFrame:
    """Validate one request frame's header + payload into a :class:`RequestFrame`.

    Raises
    ------
    ValueError
        If the header is not a request frame, any count disagrees with the
        payload, or a section is malformed.
    """
    if header.get("kind") != REQUEST_FRAME_KIND:
        raise ValueError(
            f"payload does not describe a binary request frame: "
            f"kind={header.get('kind')!r}"
        )
    op = header.get("op")
    if op not in FRAME_OPS:
        raise ValueError(f"binary frame op must be one of {FRAME_OPS}, got {op!r}")
    api_version = _int_field(header, "api_version", minimum=1)
    n_requests = _int_field(header, "n_requests", minimum=1)
    n_windows = _int_field(header, "n_windows")
    n_features = _int_field(header, "n_features")
    user_ids = _str_list_field(header, "user_ids", n_requests)
    has_contexts = bool(header.get("has_contexts"))
    specs: list[tuple[str, np.dtype, int]] = [
        ("lengths", _DTYPE_LENGTHS, n_requests),
        ("features", _DTYPE_FEATURES, n_windows * n_features),
    ]
    if has_contexts:
        specs.append(("context_codes", _DTYPE_CODES, n_windows))
    views = _sections(payload, specs)
    lengths = _decode_lengths(views, n_windows)
    features = views["features"].reshape(n_windows, n_features)
    versions = header.get("versions")
    if versions is not None:
        versions = tuple(_str_list_field(header, "versions", n_requests))
    train = header.get("train")
    if train is not None:
        train = tuple(_str_list_field(header, "train", n_requests))
    feature_names = header.get("feature_names")
    if op != "authenticate":
        if not has_contexts:
            raise ValueError(f"binary {op!r} frames must carry context codes")
        feature_names = tuple(_str_list_field(header, "feature_names", n_features))
        codes = views["context_codes"]
        if len(codes) and (
            int(codes.min()) < 0 or int(codes.max()) >= len(CONTEXT_BY_CODE)
        ):
            raise ValueError("corrupt binary frame: context code out of range")
    frame_id = header.get("frame_id")
    return RequestFrame(
        op=op,
        api_version=api_version,
        api_key=header.get("api_key"),
        frame_id=str(frame_id) if frame_id is not None else "",
        user_ids=tuple(user_ids),
        lengths=lengths,
        features=features,
        context_codes=views.get("context_codes"),
        versions=versions,
        train=train,
        feature_names=feature_names,
        prepaid=bool(header.get("prepaid")),
    )


def iter_request_frames(read: Callable[[int], bytes]) -> Iterator[RequestFrame]:
    """Decode request frames incrementally from a ``read(n)`` stream."""
    reader = FrameReader(read)
    while True:
        item = reader.next_frame()
        if item is None:
            return
        yield parse_request_frame(*item)


def decode_request_frame(data: bytes) -> RequestFrame:
    """Decode exactly one request frame from *data* (no trailing bytes).

    Raises
    ------
    ValueError
        If *data* is not exactly one well-formed request frame.
    """
    frames = list(iter_request_frames(_buffer_reader(data)))
    if len(frames) != 1:
        raise ValueError(f"expected exactly one binary frame, got {len(frames)}")
    return frames[0]


def _buffer_reader(data: bytes) -> Callable[[int], bytes]:
    return io.BytesIO(data).read


# --------------------------------------------------------------------- #
# response frames
# --------------------------------------------------------------------- #


def encode_columnar_response(
    result: ColumnarAuthResult,
    frame_id: str = "",
    caller_id: str | None = None,
) -> bytes:
    """Encode an authenticate outcome as one columnar response frame."""
    header: dict[str, Any] = {
        "kind": RESPONSE_FRAME_KIND,
        "op": "authenticate",
        "api_version": API_VERSION,
        "caller_id": caller_id,
        "frame_id": frame_id,
        "n_requests": result.n_requests,
        "n_windows": int(result.lengths.sum()),
        "user_ids": list(result.user_ids),
        "model_versions": [int(version) for version in result.model_versions],
        "errors": {
            str(index): response_to_payload(error)
            for index, error in sorted(result.errors.items())
        },
    }
    sections = [
        np.ascontiguousarray(result.lengths, dtype=_DTYPE_LENGTHS).tobytes(),
        np.ascontiguousarray(result.scores, dtype=_DTYPE_FEATURES).tobytes(),
        np.ascontiguousarray(
            result.accepted, dtype=_DTYPE_ACCEPTED
        ).tobytes(),
        np.ascontiguousarray(
            result.model_context_codes, dtype=_DTYPE_CODES
        ).tobytes(),
    ]
    return _assemble(header, sections)


def encode_response_frame(
    op: str,
    responses: Sequence[Response],
    frame_id: str = "",
    caller_id: str | None = None,
) -> bytes:
    """Encode a non-columnar op's responses (enroll / drift) as one frame.

    These responses are small plain structures, so they travel in the
    header under the JSON wire conversion rules; the frame has no binary
    payload.
    """
    header = {
        "kind": RESPONSE_FRAME_KIND,
        "op": op,
        "api_version": API_VERSION,
        "caller_id": caller_id,
        "frame_id": frame_id,
        "n_requests": len(responses),
        "responses": [response_to_payload(response) for response in responses],
    }
    return _assemble(header, [])


def encode_rejection_frame(
    op: str,
    rejection: "DeniedResponse | ThrottledResponse",
    frame_id: str = "",
    n_requests: int = 0,
) -> bytes:
    """Encode a frame-level rejection (denial / throttle) as one frame.

    The whole frame was refused before dispatch — by authorization, rate
    limiting or the batch-size bound — so there is one typed outcome for
    all of its requests.
    """
    header: dict[str, Any] = {
        "kind": RESPONSE_FRAME_KIND,
        "op": op,
        "api_version": API_VERSION,
        "caller_id": None,
        "frame_id": frame_id,
        "n_requests": n_requests,
    }
    if isinstance(rejection, DeniedResponse):
        header["denied"] = {
            "kind": DENIED_KIND,
            "request_kind": rejection.request_kind,
            "code": rejection.code,
            "message": rejection.message,
            "required_scope": rejection.required_scope,
        }
    else:
        header["throttled"] = response_to_payload(rejection)
    return _assemble(header, [])


def encode_error_frame(error: ErrorResponse) -> bytes:
    """Encode a stream-abort marker: the transport tore mid-stream.

    Appended after the completed response frames when a streamed upload
    dies part-way, so the caller learns exactly how many of its frames
    executed (their responses precede this frame) instead of losing them
    to a bare 400.
    """
    header = {
        "kind": RESPONSE_FRAME_KIND,
        "op": "transport",
        "api_version": API_VERSION,
        "caller_id": None,
        "frame_id": "",
        "n_requests": 0,
        "error": response_to_payload(error),
    }
    return _assemble(header, [])


@dataclass(frozen=True, eq=False)
class ResponseFrame:
    """One decoded binary response frame.

    Exactly one of four shapes: a columnar authenticate outcome
    (:attr:`columns` set), a header-borne response list (:attr:`payloads`
    set), a frame-level rejection (:attr:`denied` / :attr:`throttled`),
    or a stream-abort marker (:attr:`error` set — the transport tore after
    the preceding frames executed).
    """

    op: str
    api_version: int
    caller_id: str | None
    frame_id: str
    n_requests: int
    columns: ColumnarAuthResult | None = None
    payloads: tuple[Mapping[str, Any], ...] | None = None
    denied: DeniedResponse | None = None
    throttled: ThrottledResponse | None = None
    error: ErrorResponse | None = None

    def to_responses(self) -> list[Response]:
        """Materialize one typed response per request, in request order.

        A frame-level throttle fans out to one
        :class:`~repro.service.protocol.ThrottledResponse` per request
        (mirroring what per-envelope JSON dispatch would have answered).

        Raises
        ------
        PermissionError
            If the frame is a caller denial — the same contract as
            :func:`repro.service.envelope.unseal`.
        ValueError
            If the frame is a stream-abort marker (it answers no request).
        """
        if self.error is not None:
            raise ValueError(
                f"the stream was aborted by the transport: {self.error.message}"
            )
        if self.denied is not None:
            raise PermissionError(f"{self.denied.code}: {self.denied.message}")
        if self.throttled is not None:
            return [self.throttled] * self.n_requests
        if self.columns is not None:
            return self.columns.responses()
        return [response_from_payload(payload) for payload in self.payloads or ()]


def parse_response_frame(
    header: Mapping[str, Any], payload: memoryview
) -> ResponseFrame:
    """Validate one response frame's header + payload.

    Raises
    ------
    ValueError
        If the header is not a response frame or disagrees with the
        payload.
    """
    if header.get("kind") != RESPONSE_FRAME_KIND:
        raise ValueError(
            f"payload does not describe a binary response frame: "
            f"kind={header.get('kind')!r}"
        )
    op = str(header.get("op", ""))
    api_version = _int_field(header, "api_version", minimum=1)
    n_requests = _int_field(header, "n_requests")
    frame_id = str(header.get("frame_id") or "")
    caller_id = header.get("caller_id")
    error_payload = header.get("error")
    if error_payload is not None:
        error = response_from_payload(error_payload)
        if not isinstance(error, ErrorResponse):
            raise ValueError(
                "binary response frame 'error' field must be an "
                "error-response payload"
            )
        return ResponseFrame(
            op=op,
            api_version=api_version,
            caller_id=caller_id,
            frame_id=frame_id,
            n_requests=n_requests,
            error=error,
        )
    denied_payload = header.get("denied")
    if denied_payload is not None:
        return ResponseFrame(
            op=op,
            api_version=api_version,
            caller_id=caller_id,
            frame_id=frame_id,
            n_requests=n_requests,
            denied=DeniedResponse(
                request_kind=denied_payload.get("request_kind", op),
                code=denied_payload["code"],
                message=denied_payload.get("message", ""),
                required_scope=denied_payload.get("required_scope"),
            ),
        )
    throttled_payload = header.get("throttled")
    if throttled_payload is not None:
        throttled = response_from_payload(throttled_payload)
        if not isinstance(throttled, ThrottledResponse):
            raise ValueError(
                "binary response frame 'throttled' field must be a "
                "throttled-response payload"
            )
        return ResponseFrame(
            op=op,
            api_version=api_version,
            caller_id=caller_id,
            frame_id=frame_id,
            n_requests=n_requests,
            throttled=throttled,
        )
    if "responses" in header:
        payloads = header.get("responses")
        if not isinstance(payloads, list) or len(payloads) != n_requests:
            raise ValueError(
                f"binary response frame declares {n_requests} requests but "
                "its 'responses' list disagrees"
            )
        return ResponseFrame(
            op=op,
            api_version=api_version,
            caller_id=caller_id,
            frame_id=frame_id,
            n_requests=n_requests,
            payloads=tuple(payloads),
        )
    n_windows = _int_field(header, "n_windows")
    user_ids = _str_list_field(header, "user_ids", n_requests)
    model_versions = _str_list_field(header, "model_versions", n_requests)
    views = _sections(
        payload,
        [
            ("lengths", _DTYPE_LENGTHS, n_requests),
            ("scores", _DTYPE_FEATURES, n_windows),
            ("accepted", _DTYPE_ACCEPTED, n_windows),
            ("model_context_codes", _DTYPE_CODES, n_windows),
        ],
    )
    lengths = _decode_lengths(views, n_windows)
    errors_payload = header.get("errors") or {}
    errors: dict[int, ErrorResponse] = {}
    for key, item in errors_payload.items():
        response = response_from_payload(item)
        if not isinstance(response, ErrorResponse):
            raise ValueError(
                "binary response frame 'errors' entries must be "
                "error-response payloads"
            )
        errors[int(key)] = response
    codes = views["model_context_codes"]
    if len(codes) and (
        int(codes.min()) < 0 or int(codes.max()) >= len(CONTEXT_BY_CODE)
    ):
        raise ValueError("corrupt binary frame: model context code out of range")
    return ResponseFrame(
        op=op,
        api_version=api_version,
        caller_id=caller_id,
        frame_id=frame_id,
        n_requests=n_requests,
        columns=ColumnarAuthResult(
            user_ids=tuple(user_ids),
            scores=views["scores"],
            accepted=views["accepted"].view(bool),
            model_context_codes=codes,
            lengths=lengths,
            model_versions=np.asarray(model_versions, dtype=np.int64),
            errors=errors,
        ),
    )


def iter_response_frames(read: Callable[[int], bytes]) -> Iterator[ResponseFrame]:
    """Decode response frames incrementally from a ``read(n)`` stream."""
    reader = FrameReader(read)
    while True:
        item = reader.next_frame()
        if item is None:
            return
        yield parse_response_frame(*item)


def decode_response_frames(data: bytes) -> list[ResponseFrame]:
    """Decode every response frame in *data* (ValueError on anything torn)."""
    return list(iter_response_frames(_buffer_reader(data)))
